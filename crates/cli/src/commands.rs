//! Command implementations.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use reprocmp_core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp_hacc::{HaccConfig, OrderPolicy, Simulation, SlabDecomposition};
use reprocmp_store::{ChunkStore, DeltaPolicy, ObjectLayout, StoreError, HEADER_SEGMENT};
use reprocmp_veloc::{decode_checkpoint, Client, VelocConfig};

use crate::args::ArgMap;
use crate::CliError;

fn fail(e: impl std::fmt::Display) -> CliError {
    CliError::Failed(e.to_string())
}

/// Reads a checkpoint file from disk and locates its `f32` payload:
/// VELOC-format files by header, anything else as raw f32.
fn locate_payload(path: &Path) -> Result<(Vec<u8>, u64, u64), CliError> {
    let bytes = std::fs::read(path).map_err(fail)?;
    if bytes.len() >= 8 && &bytes[..8] == reprocmp_veloc::format::MAGIC {
        let file = decode_checkpoint(&bytes).map_err(fail)?;
        let (off, len) = (file.payload_offset, file.payload_len);
        Ok((bytes, off, len))
    } else {
        if bytes.len() % 4 != 0 {
            return Err(CliError::Failed(format!(
                "{} is neither a reprocmp checkpoint nor a multiple-of-4-byte raw f32 file",
                path.display()
            )));
        }
        let len = bytes.len() as u64;
        Ok((bytes, 0, len))
    }
}

fn payload_values(bytes: &[u8], offset: u64, len: u64) -> Vec<f32> {
    bytes[offset as usize..(offset + len) as usize]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

fn engine_from(map: &ArgMap) -> Result<CompareEngine, CliError> {
    let chunk_bytes = map.parsed_or("chunk-bytes", 4096usize)?;
    let error_bound = map.parsed_or("error-bound", 1e-5f64)?;
    let failure_policy = match map.optional("failure-policy") {
        None | Some("abort") => reprocmp_core::FailurePolicy::Abort,
        Some("quarantine") => reprocmp_core::FailurePolicy::Quarantine,
        Some(other) => {
            return Err(fail(format!(
                "--failure-policy must be 'abort' or 'quarantine', got '{other}'"
            )))
        }
    };
    let io = reprocmp_io::PipelineConfig {
        retry: reprocmp_io::RetryPolicy::try_with_attempts(map.parsed_or("retry-attempts", 1u32)?)
            .map_err(|e| CliError::Usage(format!("--retry-attempts: {e}")))?,
        ..reprocmp_io::PipelineConfig::default()
    };
    // --lanes caps the BFS start level: fewer lanes start the pruning
    // walk higher in the tree, which is what lets the batch scheduler's
    // subtree cache pay off on small files.
    let lane_hint = match map.optional("lanes") {
        None => None,
        Some(_) => Some(map.parsed_or("lanes", 0usize)?),
    };
    CompareEngine::try_new(EngineConfig {
        chunk_bytes,
        error_bound,
        failure_policy,
        io,
        lane_hint,
        ..EngineConfig::default()
    })
    .map_err(fail)
}

/// `create-tree`: write Merkle metadata for a checkpoint file.
pub fn create_tree(map: &ArgMap) -> Result<String, CliError> {
    let input = PathBuf::from(map.required("input")?);
    let output = PathBuf::from(map.required("output")?);
    let engine = engine_from(map)?;

    let (bytes, off, len) = locate_payload(&input)?;
    let values = payload_values(&bytes, off, len);
    if values.is_empty() {
        return Err(CliError::Failed(format!(
            "{} holds no f32 payload",
            input.display()
        )));
    }
    let encoded = engine.encode_metadata(&values);
    std::fs::write(&output, &encoded).map_err(fail)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "wrote {} ({} bytes of metadata)",
        output.display(),
        encoded.len()
    );
    let _ = writeln!(
        out,
        "payload: {} values, chunk {} B, bound {:e}, metadata/data ratio {:.4}",
        values.len(),
        engine.config().chunk_bytes,
        engine.config().error_bound,
        encoded.len() as f64 / (values.len() * 4) as f64,
    );
    Ok(out)
}

/// Resolves a `name@version` run spec against the store; a bare name
/// resolves to its newest stored version.
fn resolve_run_spec(store: &ChunkStore, spec: &str) -> Result<(String, u64), CliError> {
    match spec.rsplit_once('@') {
        Some((name, raw)) => {
            let version = raw.parse().map_err(|_| {
                CliError::Usage(format!("run spec `{spec}`: cannot parse version `{raw}`"))
            })?;
            Ok((name.to_owned(), version))
        }
        None => {
            let latest =
                store.versions(spec).last().copied().ok_or_else(|| {
                    CliError::Failed(format!("store holds no versions of `{spec}`"))
                })?;
            Ok((spec.to_owned(), latest))
        }
    }
}

/// Region attribution from a store manifest: every non-header segment
/// is a named f32 region of `len / 4` values.
fn region_map_from_layout(layout: &ObjectLayout) -> reprocmp_core::RegionMap {
    // Byte-accurate construction under the store's payload rule
    // (headers skipped only while leading): interior header segments
    // and unaligned lengths must not shift later spans.
    reprocmp_core::RegionMap::from_segment_bytes(
        layout
            .segments
            .iter()
            .map(|(name, len)| (name.as_str(), *len)),
        HEADER_SEGMENT,
    )
}

/// Renders an already-lowered [`serde::Value`] verbatim (the vendored
/// serialize-only serde's `Value` does not implement `Serialize`).
struct RawValue(serde::Value);

impl serde::Serialize for RawValue {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// The `--json` report object: the serialized [`CompareReport`] plus
/// additive `"histograms"` (quantiles, sums, and log2 bucket arrays)
/// and `"gauges"` keys from the registry.
fn report_with_histograms(
    report: &reprocmp_core::CompareReport,
    obs: &reprocmp_obs::Observer,
) -> RawValue {
    use serde::Serialize as _;
    let baseline =
        reprocmp_obs::ProfileBaseline::from_registry(report.stages, &obs.registry.snapshot());
    let mut value = report.to_value();
    if let serde::Value::Object(fields) = &mut value {
        fields.push(("histograms".to_owned(), baseline.histograms.to_value()));
        fields.push(("gauges".to_owned(), baseline.gauges.to_value()));
    }
    RawValue(value)
}

/// `compare`: compare two checkpoint files, or — with `--store D` —
/// two `name@version` objects served straight out of the capture store.
pub fn compare(map: &ArgMap) -> Result<String, CliError> {
    let run1 = map.required("run1")?.to_owned();
    let run2 = map.required("run2")?.to_owned();
    let max_diffs = map.parsed_or("max-diffs", 20usize)?;
    let engine = engine_from(map)?;

    let (a, b, region_map) = match map.optional("store") {
        Some(root) => {
            if map.optional("tree1").is_some() || map.optional("tree2").is_some() {
                return Err(CliError::Usage(
                    "--tree1/--tree2 do not apply with --store: metadata comes from \
                     the store's manifests"
                        .to_owned(),
                ));
            }
            let store = ChunkStore::open(Path::new(root)).map_err(fail)?;
            let (n1, v1) = resolve_run_spec(&store, &run1)?;
            let (n2, v2) = resolve_run_spec(&store, &run2)?;
            let a = CheckpointSource::from_store(&store, &n1, v1, &engine).map_err(fail)?;
            let b = CheckpointSource::from_store(&store, &n2, v2, &engine).map_err(fail)?;
            let rm = store
                .layout(&n1, v1)
                .ok()
                .map(|l| region_map_from_layout(&l));
            (a, b, rm)
        }
        None => {
            // For canonical checkpoints, differences can be attributed
            // to named regions (the paper's "which variables were
            // affected").
            let region_map = std::fs::read(Path::new(&run1))
                .ok()
                .and_then(|bytes| decode_checkpoint(&bytes).ok())
                .map(|file| {
                    reprocmp_core::RegionMap::from_lengths(
                        file.regions.iter().map(|r| (r.name.as_str(), r.count)),
                    )
                });

            let load =
                |path: &str, tree_flag: Option<&str>| -> Result<CheckpointSource, CliError> {
                    let path = Path::new(path);
                    let (bytes, off, len) = locate_payload(path)?;
                    match tree_flag {
                        Some(tree_path) => {
                            let src =
                                CheckpointSource::from_files(path, off, len, Path::new(tree_path))
                                    .map_err(fail)?;
                            Ok(src)
                        }
                        None => {
                            // Hash on the fly, then serve both from memory.
                            let values = payload_values(&bytes, off, len);
                            CheckpointSource::in_memory(&values, &engine).map_err(fail)
                        }
                    }
                };

            let a = load(&run1, map.optional("tree1"))?;
            let b = load(&run2, map.optional("tree2"))?;
            (a, b, region_map)
        }
    };
    // Flight recorder: `--trace`/`--flamegraph` turn on the event
    // journal for this comparison; otherwise the observer carries
    // spans/metrics only (journal disabled, one-branch cost).
    let timeline = reprocmp_io::Timeline::wall();
    let trace_out = map.optional("trace").map(PathBuf::from);
    let flame_out = map.optional("flamegraph").map(PathBuf::from);
    let obs = if trace_out.is_some() || flame_out.is_some() {
        reprocmp_obs::Observer::with_journal(timeline.obs_clock())
    } else {
        timeline.observer()
    };
    let report = engine
        .compare_observed(&a, &b, &timeline, &obs)
        .map_err(fail)?;

    let mut exports = String::new();
    if let Some(path) = &trace_out {
        let trace = reprocmp_obs::chrome_trace(
            &obs.tracer.records(),
            &obs.journal().events(),
            &obs.journal().ledger(),
        );
        std::fs::write(path, &trace).map_err(fail)?;
        let ledger = obs.journal().ledger();
        let _ = writeln!(
            exports,
            "wrote {} ({} events emitted, {} written, {} dropped)",
            path.display(),
            ledger.events_emitted,
            ledger.events_written,
            ledger.events_dropped
        );
    }
    if let Some(path) = &flame_out {
        std::fs::write(path, reprocmp_obs::folded_stacks(&obs.tracer.records())).map_err(fail)?;
        let _ = writeln!(exports, "wrote {}", path.display());
    }

    // --strict: degraded results are failures. A comparison that
    // completed but could not verify every chunk (quarantined packs,
    // unreadable ranges) exits non-zero so CI never mistakes a
    // partial verdict for a full one.
    let strict_violation = map.flag("strict") && !report.fully_verified();

    // --json: the full machine-readable report (including the stage
    // profile, I/O counters, and registry histogram quantiles) instead
    // of the human rendering.
    if map.flag("json") {
        let mut s =
            serde_json::to_string_pretty(&report_with_histograms(&report, &obs)).map_err(fail)?;
        s.push('\n');
        if strict_violation {
            return Err(CliError::Failed(s));
        }
        return Ok(s);
    }

    let mut out = String::new();
    out.push_str(&exports);
    let _ = writeln!(
        out,
        "compared {run1} vs {run2} ({} values, bound {:e}, chunk {} B)",
        report.stats.total_values,
        engine.config().error_bound,
        engine.config().chunk_bytes,
    );
    let _ = writeln!(
        out,
        "chunks: {} total, {} flagged, {} false positives; {} bytes re-read",
        report.stats.chunks_total,
        report.stats.chunks_flagged,
        report.stats.false_positive_chunks,
        report.stats.bytes_reread,
    );
    let _ = writeln!(
        out,
        "io: {} ops submitted, {} completed, {} retried, {} gave up",
        report.io.submitted, report.io.completed, report.io.retried, report.io.gave_up,
    );
    if !report.store.is_zero() {
        let _ = writeln!(
            out,
            "store: {} chunk reads, {} bytes served, {} bytes from shared chunks",
            report.store.chunk_reads, report.store.bytes_read, report.store.bytes_deduped,
        );
    }
    if map.flag("profile") {
        let _ = writeln!(out, "stage profile:");
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>14} {:>12}",
            "phase", "time", "bytes", "ops"
        );
        for (name, c) in report.stages.phases() {
            let _ = writeln!(
                out,
                "  {:<14} {:>12} {:>14} {:>12}",
                name,
                format!("{:.3?}", c.time),
                c.bytes,
                c.ops
            );
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>14}",
            "total",
            format!("{:.3?}", report.stages.total_time()),
            report.stages.total_bytes()
        );
        let quantiles =
            reprocmp_obs::ProfileBaseline::from_registry(report.stages, &obs.registry.snapshot())
                .histograms;
        if !quantiles.is_empty() {
            let _ = writeln!(out, "latency quantiles:");
            let _ = writeln!(
                out,
                "  {:<26} {:>8} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p95", "p99"
            );
            for q in &quantiles {
                let _ = writeln!(
                    out,
                    "  {:<26} {:>8} {:>10} {:>10} {:>10}",
                    q.name, q.count, q.p50, q.p95, q.p99
                );
            }
        }
    }
    if !report.fully_verified() {
        let _ = writeln!(
            out,
            "WARNING: {} chunk(s) in {} range(s) could not be read and were quarantined; \
             the verdict below covers only the verified data",
            report.unverified_chunks(),
            report.unverified.len(),
        );
        for r in &report.unverified {
            let _ = writeln!(
                out,
                "  unverified chunks {}..{}",
                r.first,
                r.first + r.count
            );
        }
    }
    if report.identical() {
        let _ = writeln!(out, "RESULT: runs agree within the bound");
    } else {
        let _ = writeln!(
            out,
            "RESULT: {} values differ beyond the bound",
            report.stats.diff_count
        );
        match &region_map {
            Some(rm) => {
                for loc in rm.annotate(&report.differences).iter().take(max_diffs) {
                    let _ = writeln!(out, "  {loc}");
                }
                let _ = writeln!(out, "  per field:");
                for (name, count) in rm.diffs_per_region(&report.differences) {
                    if count > 0 {
                        let _ = writeln!(out, "    {name:<6} {count}");
                    }
                }
            }
            None => {
                for d in report.differences.iter().take(max_diffs) {
                    let _ = writeln!(
                        out,
                        "  [{}] {} vs {} (|Δ| = {:e})",
                        d.index,
                        d.a,
                        d.b,
                        (f64::from(d.a) - f64::from(d.b)).abs()
                    );
                }
            }
        }
        if report.stats.diff_count as usize > max_diffs {
            let _ = writeln!(
                out,
                "  … and {} more",
                report.stats.diff_count as usize - max_diffs
            );
        }
    }
    if strict_violation {
        let _ = writeln!(
            out,
            "STRICT: failing — {} chunk(s) were not verified",
            report.unverified_chunks()
        );
        return Err(CliError::Failed(out));
    }
    Ok(out)
}

/// `compare-many`: batch-compare N runs against a baseline (or all
/// pairs with `--all-pairs`) through the multi-run scheduler and its
/// content-addressed metadata cache.
pub fn compare_many(map: &ArgMap) -> Result<String, CliError> {
    use reprocmp_core::BatchConfig;

    let engine = engine_from(map)?;
    let runs_raw = map.required("runs")?;
    let run_specs: Vec<String> = runs_raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if run_specs.is_empty() {
        return Err(CliError::Usage(
            "--runs needs a comma-separated list of checkpoint files".to_owned(),
        ));
    }
    let all_pairs = map.flag("all-pairs");
    let baseline_spec = match (map.optional("baseline"), all_pairs) {
        (Some(p), false) => Some(p.to_owned()),
        (None, true) => None,
        (Some(_), true) => {
            return Err(CliError::Usage(
                "--baseline and --all-pairs are mutually exclusive".to_owned(),
            ))
        }
        (None, false) => {
            return Err(CliError::Usage(
                "compare-many needs --baseline F or --all-pairs".to_owned(),
            ))
        }
    };
    let cfg = BatchConfig {
        use_cache: !map.flag("no-cache"),
        shards: match map.optional("shards") {
            None => None,
            Some(_) => Some(map.parsed_or("shards", 0usize)?),
        },
    };

    // With --store, run specs are `name@version` objects resolved out
    // of the capture store; stage-2 reads stream through the pack
    // index. Otherwise payloads are loaded into memory so raw-content
    // digests exist and the stage-2 verdict cache can engage
    // (file-backed sources expose only their ε-quantized metadata,
    // which is unsound to verdict on). Store-backed sources carry
    // manifest digests, so the cache engages there too.
    let store = match map.optional("store") {
        Some(root) => Some(ChunkStore::open(Path::new(root)).map_err(fail)?),
        None => None,
    };
    let load = |spec: &str| -> Result<CheckpointSource, CliError> {
        match &store {
            Some(store) => {
                let (name, version) = resolve_run_spec(store, spec)?;
                CheckpointSource::from_store(store, &name, version, &engine).map_err(fail)
            }
            None => {
                let path = Path::new(spec);
                let (bytes, off, len) = locate_payload(path)?;
                let values = payload_values(&bytes, off, len);
                if values.is_empty() {
                    return Err(CliError::Failed(format!(
                        "{} holds no f32 payload",
                        path.display()
                    )));
                }
                CheckpointSource::in_memory(&values, &engine).map_err(fail)
            }
        }
    };
    let runs: Vec<CheckpointSource> = run_specs
        .iter()
        .map(|p| load(p))
        .collect::<Result<_, _>>()?;

    // Source-index -> display name, matching the report's indices.
    let mut names: Vec<String> = Vec::new();
    let batch = match &baseline_spec {
        Some(bp) => {
            let baseline = load(bp)?;
            names.push(bp.clone());
            names.extend(run_specs.iter().cloned());
            engine.compare_many(&baseline, &runs, &cfg).map_err(fail)?
        }
        None => {
            names.extend(run_specs.iter().cloned());
            engine.compare_all_pairs(&runs, &cfg).map_err(fail)?
        }
    };

    let batch_unverified: u64 = batch
        .jobs
        .iter()
        .map(|j| j.report.unverified_chunks())
        .sum();
    let strict_violation = map.flag("strict") && batch_unverified > 0;

    if map.flag("json") {
        let mut s = serde_json::to_string_pretty(&batch).map_err(fail)?;
        s.push('\n');
        if strict_violation {
            return Err(CliError::Failed(s));
        }
        return Ok(s);
    }

    let mut out = String::new();
    match &baseline_spec {
        Some(bp) => {
            let _ = writeln!(
                out,
                "batch-compared {} run(s) against baseline {bp} (bound {:e}, chunk {} B)",
                runs.len(),
                engine.config().error_bound,
                engine.config().chunk_bytes,
            );
        }
        None => {
            let _ = writeln!(
                out,
                "batch-compared all {} pairs of {} runs (bound {:e}, chunk {} B)",
                batch.jobs.len(),
                runs.len(),
                engine.config().error_bound,
                engine.config().chunk_bytes,
            );
        }
    }
    let _ = writeln!(
        out,
        "decoded {} tree(s) once each; {} node pairs visited, {} bytes re-read",
        batch.trees_decoded,
        batch.total_nodes_visited(),
        batch.total_bytes_reread(),
    );
    let c = &batch.cache;
    let _ = writeln!(
        out,
        "cache: {} subtree hits / {} misses, {} verdict hits / {} misses, \
         {} short-circuits; saved {} node visits and {} re-read bytes",
        c.node_hits,
        c.node_misses,
        c.verdict_hits,
        c.verdict_misses,
        c.short_circuits,
        c.nodes_saved,
        c.bytes_saved,
    );
    if !batch.store.is_zero() {
        let _ = writeln!(
            out,
            "store: {} chunk reads, {} bytes served, {} bytes from shared chunks",
            batch.store.chunk_reads, batch.store.bytes_read, batch.store.bytes_deduped,
        );
    }
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>10}  pair",
        "job", "flagged", "diffs", "re-read"
    );
    for (i, job) in batch.jobs.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4} {:>10} {:>10} {:>10}  {} vs {}",
            i,
            job.report.stats.chunks_flagged,
            job.report.stats.diff_count,
            job.report.stats.bytes_reread,
            names[job.left],
            names[job.right],
        );
    }
    if batch_unverified > 0 {
        let _ = writeln!(
            out,
            "WARNING: {batch_unverified} chunk(s) across the batch could not be read and were \
             quarantined; verdicts cover only the verified data"
        );
    }
    if batch.identical() {
        let _ = writeln!(out, "RESULT: every pair agrees within the bound");
    } else {
        let divergent = batch.jobs.iter().filter(|j| !j.report.identical()).count();
        let total: u64 = batch.jobs.iter().map(|j| j.report.stats.diff_count).sum();
        let _ = writeln!(
            out,
            "RESULT: {divergent} of {} pair(s) differ beyond the bound ({total} values total)",
            batch.jobs.len()
        );
    }
    if strict_violation {
        let _ = writeln!(
            out,
            "STRICT: failing — {batch_unverified} chunk(s) were not verified"
        );
        return Err(CliError::Failed(out));
    }
    Ok(out)
}

/// `info`: describe a checkpoint or metadata file.
pub fn info(map: &ArgMap) -> Result<String, CliError> {
    let input = PathBuf::from(map.required("input")?);
    let bytes = std::fs::read(&input).map_err(fail)?;
    let mut out = String::new();

    if bytes.len() >= 8 && &bytes[..8] == reprocmp_merkle::serial::MAGIC {
        let tree = reprocmp_merkle::decode_tree(&bytes).map_err(fail)?;
        let _ = writeln!(out, "{}: Merkle tree metadata", input.display());
        let _ = writeln!(
            out,
            "  leaves {} | levels {} | nodes {} | chunk {} B | bound {:e} | describes {} payload bytes",
            tree.leaf_count(),
            tree.levels(),
            tree.node_count(),
            tree.chunk_bytes(),
            tree.error_bound(),
            tree.data_len(),
        );
        let _ = writeln!(out, "  root: {}", tree.root());
    } else if bytes.len() >= 8 && &bytes[..8] == reprocmp_veloc::format::MAGIC {
        let file = decode_checkpoint(&bytes).map_err(fail)?;
        let _ = writeln!(
            out,
            "{}: checkpoint (version {})",
            input.display(),
            file.checkpoint_version
        );
        for r in &file.regions {
            let _ = writeln!(out, "  region {:<6} {} values", r.name, r.count);
        }
        let _ = writeln!(
            out,
            "  payload: {} bytes at offset {}",
            file.payload_len, file.payload_offset
        );
    } else {
        let _ = writeln!(
            out,
            "{}: unrecognized ({} bytes); treating as raw f32 would give {} values",
            input.display(),
            bytes.len(),
            bytes.len() / 4
        );
    }
    Ok(out)
}

/// `simulate`: run mini-HACC and capture a VELOC checkpoint history.
pub fn simulate(map: &ArgMap) -> Result<String, CliError> {
    let out_dir = PathBuf::from(map.required("out-dir")?);
    let particles = map.parsed_or("particles", 2_048usize)?;
    let steps = map.parsed_or("steps", 50u64)?;
    let ranks = map.parsed_or("ranks", 2usize)?;
    let ic_seed = map.parsed_or("ic-seed", 0xC05_0C0DEu64)?;
    let run_name = map.optional("run-name").unwrap_or("run").to_owned();

    let order = match map.optional("order-seed") {
        None => OrderPolicy::Sequential,
        Some(raw) => OrderPolicy::Shuffled {
            seed: raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--order-seed: cannot parse `{raw}`")))?,
        },
    };

    let mut cfg = HaccConfig::small();
    cfg.particles = particles;
    cfg.ic_seed = ic_seed;
    cfg.order = order;
    let box_size = cfg.box_size;
    let mut sim = Simulation::new(cfg);
    let decomp = SlabDecomposition::new(ranks);

    let client = Client::new(VelocConfig::rooted_at(&out_dir)).map_err(fail)?;
    // Checkpoint at the paper's cadence: 4 evenly spaced iterations.
    let interval = (steps / 5).max(1);
    let mut captured = Vec::new();

    for step in 1..=steps {
        sim.step();
        if step % interval == 0 && step / interval <= 4 {
            for rank in 0..ranks {
                let regions = decomp.rank_regions(sim.particles(), box_size, rank);
                let borrowed: Vec<(&str, &[f32])> =
                    regions.iter().map(|(n, v)| (*n, v.as_slice())).collect();
                let name = format!("{run_name}.rank{rank}");
                client.checkpoint(&name, step, &borrowed).map_err(fail)?;
            }
            captured.push(step);
        }
    }
    client.wait_all().map_err(fail)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} particles for {} steps ({:?} order)",
        particles,
        steps,
        sim.config().order
    );
    let _ = writeln!(
        out,
        "captured iterations {:?} x {} ranks into {}",
        captured,
        ranks,
        out_dir.join("pfs").display()
    );
    Ok(out)
}

/// `census`: friends-of-friends halo census of a captured checkpoint
/// (needs the canonical x/y/z regions — i.e. a file written by
/// `simulate` or the VELOC client).
pub fn census(map: &ArgMap) -> Result<String, CliError> {
    use reprocmp_hacc::halo::find_halos;
    use reprocmp_hacc::ParticleSet;

    let input = PathBuf::from(map.required("input")?);
    let linking_length = map.parsed_or("linking-length", 0.02f32)?;
    let min_members = map.parsed_or("min-members", 12usize)?;
    let box_size = map.parsed_or("box-size", 1.0f32)?;

    let bytes = std::fs::read(&input).map_err(fail)?;
    let file = decode_checkpoint(&bytes).map_err(|e| {
        CliError::Failed(format!(
            "{}: not a reprocmp checkpoint ({e}); census needs x/y/z regions",
            input.display()
        ))
    })?;
    let read = |name: &str| -> Result<Vec<f32>, CliError> {
        reprocmp_veloc::read_region(&bytes, &file, name)
            .map_err(|_| CliError::Failed(format!("checkpoint has no `{name}` region")))
    };
    let (x, y, z) = (read("x")?, read("y")?, read("z")?);
    let mut particles = ParticleSet::with_len(x.len());
    particles.x = x;
    particles.y = y;
    particles.z = z;

    let halos = find_halos(&particles, box_size, linking_length, min_members);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} particles, linking length {linking_length}, min members {min_members}",
        input.display(),
        particles.len(),
    );
    let _ = writeln!(out, "halos found: {}", halos.len());
    for (i, h) in halos.iter().take(10).enumerate() {
        let _ = writeln!(
            out,
            "  #{i:<3} {:>6} members, center ({:.4}, {:.4}, {:.4})",
            h.size(),
            h.center[0],
            h.center[1],
            h.center[2]
        );
    }
    if halos.len() > 10 {
        let _ = writeln!(out, "  … and {} more", halos.len() - 10);
    }
    Ok(out)
}

/// `gate`: the paper-conclusion CI use case. Compares a candidate
/// run's checkpoint against a golden run's *Merkle metadata* (and,
/// optionally, its data, for value-level reporting). Returns
/// `Err(CliError::Failed)` — a non-zero exit — on regression, so it
/// drops straight into CI pipelines.
pub fn gate(map: &ArgMap) -> Result<String, CliError> {
    use reprocmp_core::EngineConfig;
    use reprocmp_merkle::compare_trees;

    let golden_tree_path = PathBuf::from(map.required("golden-tree")?);
    let candidate_path = PathBuf::from(map.required("candidate")?);
    let max_diffs = map.parsed_or("max-diffs", 10usize)?;

    let tree_bytes = std::fs::read(&golden_tree_path).map_err(fail)?;
    let golden_tree = reprocmp_merkle::decode_tree(&tree_bytes).map_err(fail)?;

    // The gate's tolerance and chunking come from the golden metadata
    // itself — the repository is the single source of truth.
    let engine = CompareEngine::try_new(EngineConfig {
        chunk_bytes: golden_tree.chunk_bytes(),
        error_bound: golden_tree.error_bound(),
        ..EngineConfig::default()
    })
    .map_err(fail)?;

    let (cand_bytes, off, len) = locate_payload(&candidate_path)?;
    let candidate = payload_values(&cand_bytes, off, len);
    if (candidate.len() * 4) as u64 != golden_tree.data_len() {
        return Err(CliError::Failed(format!(
            "candidate has {} payload bytes but the golden tree describes {}",
            candidate.len() * 4,
            golden_tree.data_len()
        )));
    }

    let candidate_tree = engine.build_metadata(&candidate);
    let lanes = engine.device().concurrent_kernel_threads();
    let outcome =
        compare_trees(&golden_tree, &candidate_tree, engine.device(), lanes).map_err(fail)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "gate: {} vs golden {} (ε = {:e}, {} chunks)",
        candidate_path.display(),
        golden_tree_path.display(),
        golden_tree.error_bound(),
        golden_tree.leaf_count(),
    );

    if outcome.identical() {
        let _ = writeln!(
            out,
            "PASS — candidate reproduces the golden result within ε"
        );
        let _ = writeln!(out, "       (zero checkpoint data read; metadata only)");
        return Ok(out);
    }

    // Trees disagree. With golden data we can distinguish real
    // regressions from hash false positives; without, flag and fail.
    if let Some(golden_data_path) = map.optional("golden-data") {
        let (gbytes, goff, glen) = locate_payload(Path::new(golden_data_path))?;
        let golden_values = payload_values(&gbytes, goff, glen);
        let a = CheckpointSource::in_memory(&golden_values, &engine).map_err(fail)?;
        let b = CheckpointSource::in_memory(&candidate, &engine).map_err(fail)?;
        let report = engine.compare(&a, &b).map_err(fail)?;
        if report.identical() {
            let _ = writeln!(
                out,
                "PASS — {} chunk(s) flagged by the hash were false positives; \
                 no value exceeds ε",
                outcome.mismatched_leaves.len()
            );
            return Ok(out);
        }
        let _ = writeln!(
            out,
            "FAIL — {} value(s) moved beyond ε; first offenders:",
            report.stats.diff_count
        );
        for d in report.differences.iter().take(max_diffs) {
            let _ = writeln!(out, "  [{}] golden {} vs candidate {}", d.index, d.a, d.b);
        }
        return Err(CliError::Failed(out));
    }

    let _ = writeln!(
        out,
        "FAIL — {} of {} chunks differ from the golden metadata \
         (pass --golden-data to localize values)",
        outcome.mismatched_leaves.len(),
        golden_tree.leaf_count()
    );
    Err(CliError::Failed(out))
}

/// Indexes a directory of captured checkpoints: `(rank, iteration)` →
/// path, parsed from the canonical `<stem>.rank<R>.v<III>.ckpt` names.
fn index_checkpoint_dir(
    dir: &Path,
) -> Result<std::collections::BTreeMap<(usize, u64), PathBuf>, CliError> {
    let mut found = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir).map_err(fail)? {
        let path = entry.map_err(fail)?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let Some(name) = name else { continue };
        let Some(stem) = name.strip_suffix(".ckpt") else {
            continue;
        };
        let Some(v_pos) = stem.rfind(".v") else {
            continue;
        };
        let Ok(iteration) = stem[v_pos + 2..].parse::<u64>() else {
            continue;
        };
        let head = &stem[..v_pos];
        let Some(r_pos) = head.rfind(".rank") else {
            continue;
        };
        let Ok(rank) = head[r_pos + 5..].parse::<usize>() else {
            continue;
        };
        found.insert((rank, iteration), path);
    }
    Ok(found)
}

/// Loads two checkpoint directories into paired histories, verifying
/// they cover the same `(rank, iteration)` set.
fn load_dir_histories(
    dir1: &Path,
    dir2: &Path,
    engine: &CompareEngine,
) -> Result<
    (
        reprocmp_core::CheckpointHistory,
        reprocmp_core::CheckpointHistory,
    ),
    CliError,
> {
    let idx1 = index_checkpoint_dir(dir1)?;
    let idx2 = index_checkpoint_dir(dir2)?;
    if idx1.is_empty() {
        return Err(CliError::Failed(format!(
            "{}: no `*.rank<R>.v<III>.ckpt` files found",
            dir1.display()
        )));
    }
    if idx1.keys().ne(idx2.keys()) {
        return Err(CliError::Failed(format!(
            "the directories cover different (rank, iteration) sets: {} vs {} checkpoints",
            idx1.len(),
            idx2.len()
        )));
    }
    let load = |path: &Path| -> Result<CheckpointSource, CliError> {
        let (bytes, off, len) = locate_payload(path)?;
        let values = payload_values(&bytes, off, len);
        CheckpointSource::in_memory(&values, engine).map_err(fail)
    };
    let mut h1 = reprocmp_core::CheckpointHistory::new();
    let mut h2 = reprocmp_core::CheckpointHistory::new();
    for (&(rank, iteration), path) in &idx1 {
        h1.insert(rank, iteration, load(path)?);
    }
    for (&(rank, iteration), path) in &idx2 {
        h2.insert(rank, iteration, load(path)?);
    }
    Ok((h1, h2))
}

/// `history`: the paper's problem statement on the command line.
/// Takes two directories of captured checkpoints (as produced by
/// `simulate` — `<name>.rank<R>.v<III>.ckpt` files), pairs them by
/// rank and iteration, and reports when and where the runs diverged.
pub fn history(map: &ArgMap) -> Result<String, CliError> {
    let dir1 = PathBuf::from(map.required("run1-dir")?);
    let dir2 = PathBuf::from(map.required("run2-dir")?);
    let engine = engine_from(map)?;
    let (h1, h2) = load_dir_histories(&dir1, &dir2, &engine)?;

    let report = engine.compare_history(&h1, &h2).map_err(fail)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "compared {} checkpoint pairs (ε = {:e}, chunk {} B)",
        report.entries.len(),
        engine.config().error_bound,
        engine.config().chunk_bytes,
    );
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>10} {:>10} {:>10}",
        "iter", "rank", "flagged", "diffs", "re-read"
    );
    for e in &report.entries {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>10} {:>10} {:>10}",
            e.iteration,
            e.rank,
            e.report.stats.chunks_flagged,
            e.report.stats.diff_count,
            e.report.stats.bytes_reread,
        );
    }
    match report.first_divergence() {
        None => {
            let _ = writeln!(
                out,
                "RESULT: the runs agree within the bound at every checkpoint"
            );
        }
        Some((iteration, rank)) => {
            let _ = writeln!(
                out,
                "RESULT: runs diverge from iteration {iteration} (first on rank {rank}); {} values total",
                report.total_diffs()
            );
        }
    }
    Ok(out)
}

/// Opens the chunk store named by `--store`.
fn open_store(map: &ArgMap) -> Result<ChunkStore, CliError> {
    let root = PathBuf::from(map.required("store")?);
    ChunkStore::open(&root).map_err(fail)
}

/// Loads one run's history out of the store: a bare object name takes
/// every stored version as an iteration (rank 0); `name@version` pins
/// a single iteration.
fn load_store_history(
    store: &ChunkStore,
    spec: &str,
    engine: &CompareEngine,
) -> Result<(reprocmp_core::CheckpointHistory, Option<ObjectLayout>), CliError> {
    let (name, versions) = match spec.rsplit_once('@') {
        Some((name, raw)) => {
            let version = raw.parse().map_err(|_| {
                CliError::Usage(format!("run spec `{spec}`: cannot parse version `{raw}`"))
            })?;
            (name.to_owned(), vec![version])
        }
        None => {
            let versions = store.versions(spec);
            if versions.is_empty() {
                return Err(CliError::Failed(format!(
                    "store holds no versions of `{spec}`"
                )));
            }
            (spec.to_owned(), versions)
        }
    };
    let mut h = reprocmp_core::CheckpointHistory::new();
    for &version in &versions {
        h.insert(
            0,
            version,
            CheckpointSource::from_store(store, &name, version, engine).map_err(fail)?,
        );
    }
    let layout = store.layout(&name, versions[0]).ok();
    Ok((h, layout))
}

/// Typed (all-f32) region map from a store manifest, skipping leading
/// header segments like the payload rule does. `None` when a segment
/// is not 4-byte aligned — attribution would misread every later
/// region.
fn typed_regions_from_layout(layout: &ObjectLayout) -> Option<reprocmp_analyze::TypedRegionMap> {
    let mut regions: Vec<(&str, reprocmp_analyze::RegionDType, u64)> = Vec::new();
    let mut leading = true;
    for (name, len) in &layout.segments {
        if leading && name == HEADER_SEGMENT {
            continue;
        }
        leading = false;
        if len % 4 != 0 {
            return None;
        }
        regions.push((name.as_str(), reprocmp_analyze::RegionDType::F32, len / 4));
    }
    if regions.is_empty() {
        None
    } else {
        Some(reprocmp_analyze::TypedRegionMap::from_regions(regions))
    }
}

/// Parses `--regions name:f32|f64:count,...` into a typed map — the
/// way to attribute mixed-precision payloads whose layout the store
/// does not know.
fn parse_typed_regions(spec: &str) -> Result<reprocmp_analyze::TypedRegionMap, CliError> {
    let mut triples: Vec<(String, reprocmp_analyze::RegionDType, u64)> = Vec::new();
    for part in spec.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        let [name, dtype_raw, count_raw] = fields[..] else {
            return Err(CliError::Usage(format!(
                "--regions entry `{part}` must be name:f32|f64:count"
            )));
        };
        let dtype = match dtype_raw {
            "f32" => reprocmp_analyze::RegionDType::F32,
            "f64" => reprocmp_analyze::RegionDType::F64,
            other => {
                return Err(CliError::Usage(format!(
                    "--regions entry `{part}`: dtype must be f32 or f64, got `{other}`"
                )))
            }
        };
        let count: u64 = count_raw.parse().map_err(|_| {
            CliError::Usage(format!(
                "--regions entry `{part}`: cannot parse count `{count_raw}`"
            ))
        })?;
        triples.push((name.to_owned(), dtype, count));
    }
    Ok(reprocmp_analyze::TypedRegionMap::from_regions(
        triples.iter().map(|(n, d, c)| (n.as_str(), *d, *c)),
    ))
}

/// `analyze`: divergence forensics over two checkpoint histories —
/// O(log M) timeline bisection, divergence-front tracking, per-region
/// attribution, and (with `--keys`) the frame-replayed explorer.
/// Exit codes mirror `fsck`: 0 clean, 1 divergent, 2 bad usage.
pub fn analyze(map: &ArgMap) -> Result<String, CliError> {
    use reprocmp_analyze::{AnalyzeOptions, Explorer, SpreadClass};

    let engine = engine_from(map)?;
    let timeline = reprocmp_io::Timeline::wall();
    let obs = timeline.observer();

    let (h1, h2, typed) = match map.optional("store") {
        Some(root) => {
            let store = ChunkStore::open(Path::new(root)).map_err(fail)?;
            let run1 = map.required("run1")?;
            let run2 = map.required("run2")?;
            let (h1, layout) = load_store_history(&store, run1, &engine)?;
            let (h2, _) = load_store_history(&store, run2, &engine)?;
            let typed = layout.as_ref().and_then(typed_regions_from_layout);
            (h1, h2, typed)
        }
        None => {
            let dir1 = PathBuf::from(map.required("run1-dir")?);
            let dir2 = PathBuf::from(map.required("run2-dir")?);
            let (h1, h2) = load_dir_histories(&dir1, &dir2, &engine)?;
            // Canonical checkpoints carry their region table; use the
            // first file's as the (all-f32) layout.
            let typed =
                index_checkpoint_dir(&dir1)?
                    .values()
                    .next()
                    .and_then(|path| std::fs::read(path).ok())
                    .and_then(|bytes| decode_checkpoint(&bytes).ok())
                    .map(|file| {
                        reprocmp_analyze::TypedRegionMap::from_regions(file.regions.iter().map(
                            |r| (r.name.as_str(), reprocmp_analyze::RegionDType::F32, r.count),
                        ))
                    });
            (h1, h2, typed)
        }
    };
    let typed = match map.optional("regions") {
        Some(spec) => Some(parse_typed_regions(spec)?),
        None => typed,
    };

    let report = reprocmp_analyze::analyze(
        &engine,
        &h1,
        &h2,
        &timeline,
        &obs,
        &AnalyzeOptions { regions: typed },
    )
    .map_err(fail)?;
    let verdict = |out: String| {
        if report.divergent {
            Err(CliError::Failed(out))
        } else {
            Ok(out)
        }
    };

    // --keys: replay a key script through the explorer and print every
    // frame (the terminal-free TUI mode snapshot tests drive).
    if let Some(script) = map.optional("keys") {
        let mut explorer = Explorer::build(&engine, &h1, &h2).map_err(fail)?;
        let mut out = String::new();
        for (i, frame) in explorer.play(script).iter().enumerate() {
            let _ = writeln!(out, "--- frame {i} ---");
            out.push_str(frame);
        }
        return verdict(out);
    }

    // --live: the same explorer driven interactively — raw-mode
    // keystrokes in, ANSI-cleared frames out (shared shim with `top`).
    if map.flag("live") {
        let mut explorer = Explorer::build(&engine, &h1, &h2).map_err(fail)?;
        let _guard = crate::term::RawModeGuard::enter().ok();
        let key_rx = crate::term::spawn_key_reader();
        loop {
            print!("{}{}", crate::term::CLEAR, explorer.render());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let Ok(key) = key_rx.recv() else { break };
            explorer.handle_key(key);
            if explorer.quit_requested() {
                break;
            }
        }
        return verdict("analyze: explorer session ended\n".to_owned());
    }

    if map.flag("json") {
        let mut s = report.to_json();
        s.push('\n');
        return verdict(s);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "analyzed {} iterations × {} ranks (ε = {:e}, chunk {} B)",
        report.iterations,
        report.ranks,
        engine.config().error_bound,
        engine.config().chunk_bytes,
    );
    match (
        report.bisection.first_iteration,
        report.bisection.first_rank,
    ) {
        (Some(it), Some(rank)) => {
            let _ = writeln!(
                out,
                "bisection: first divergence at iteration {it}, rank {rank}"
            );
        }
        _ => {
            let _ = writeln!(out, "bisection: no divergence anywhere in the timeline");
        }
    }
    let _ = writeln!(
        out,
        "  {} comparisons ({} stage-1 probes + {} confirmations)",
        report.bisection.comparisons,
        report.bisection.stage1_probes,
        report.bisection.stage2_confirmations,
    );
    let _ = writeln!(
        out,
        "  bytes: {} metadata, {} payload (linear scan would re-read every flagged chunk of every iteration)",
        report.bisection.metadata_bytes_read, report.bisection.payload_bytes_read,
    );
    let class = match report.front.classification {
        SpreadClass::Clean => "clean",
        SpreadClass::Contained => "contained",
        SpreadClass::Spreading => "spreading",
        SpreadClass::Saturated => "saturated",
    };
    let _ = writeln!(
        out,
        "front: {class} ({:.2} chunks/iteration growth, {} slots total)",
        report.front.growth_per_iteration, report.front.total_slots,
    );
    let strip: String = report
        .front
        .snapshots
        .iter()
        .map(|s| reprocmp_analyze::tui::ramp_char(s.fraction))
        .collect();
    let _ = writeln!(out, "  spread over time: [{strip}]");
    for s in report.front.snapshots.iter().filter(|s| s.new_flagged > 0) {
        let _ = writeln!(
            out,
            "  iteration {:>6}: {:>6} flagged ({:>5.1}%), {} new",
            s.iteration,
            s.flagged,
            s.fraction * 100.0,
            s.new_flagged
        );
    }
    if !report.regions.is_empty() {
        let _ = writeln!(out, "per region at the boundary:");
        for r in &report.regions {
            let dtype = match r.dtype {
                reprocmp_analyze::RegionDType::F32 => "f32",
                reprocmp_analyze::RegionDType::F64 => "f64",
            };
            let _ = writeln!(
                out,
                "  {:<16} {dtype} {:>10} values {:>8} diffs  max |Δ| {:.3e}",
                r.name, r.elements, r.diff_count, r.max_abs_delta,
            );
        }
    }
    if let Some(boundary) = &report.boundary {
        let _ = writeln!(
            out,
            "boundary detail: {} values differ ({} chunks flagged, {} false-positive)",
            boundary.diff_count, boundary.chunks_flagged, boundary.false_positive_chunks,
        );
        for d in boundary.differences.iter().take(5) {
            let _ = writeln!(out, "  [{}] {} vs {}", d.index, d.a, d.b);
        }
    }
    let _ = writeln!(
        out,
        "RESULT: {}",
        if report.divergent {
            "the runs diverge beyond the bound"
        } else {
            "the runs agree within the bound at every checkpoint"
        }
    );
    verdict(out)
}

/// `ingest`: capture a checkpoint file into the content-addressed
/// store. VELOC-format files keep their region structure (one segment
/// per region plus the raw header, so `compare --store` can attribute
/// differences to fields); anything else is stored as a single
/// `payload` segment. With `--with-meta`, Merkle metadata is built once
/// at ingest and stored in the manifest, so later store-backed
/// comparisons skip the capture pass entirely.
pub fn ingest(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let input = PathBuf::from(map.required("input")?);
    let chunk_bytes = map.parsed_or("chunk-bytes", 4096usize)?;
    let bytes = std::fs::read(&input).map_err(fail)?;

    // Default object name: the file stem, with the `.v<III>` version
    // suffix the VELOC client appends stripped off (so re-ingested
    // capture files land under the client's own (name, version) keys).
    let stem = input
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "checkpoint".to_owned());
    let default_name = match stem.rfind(".v") {
        Some(pos) if stem[pos + 2..].chars().all(|c| c.is_ascii_digit()) && pos > 0 => {
            stem[..pos].to_owned()
        }
        _ => stem,
    };
    let name = map.optional("name").unwrap_or(&default_name).to_owned();

    let is_ckpt = bytes.len() >= 8 && &bytes[..8] == reprocmp_veloc::format::MAGIC;
    let parsed = if is_ckpt {
        Some(decode_checkpoint(&bytes).map_err(fail)?)
    } else {
        if bytes.len() % 4 != 0 {
            return Err(CliError::Failed(format!(
                "{} is neither a reprocmp checkpoint nor a multiple-of-4-byte raw f32 file",
                input.display()
            )));
        }
        None
    };
    let (default_version, payload_offset, segments): (u64, u64, Vec<(&str, &[u8])>) = match &parsed
    {
        Some(file) => {
            let mut segments: Vec<(&str, &[u8])> =
                vec![(HEADER_SEGMENT, &bytes[..file.payload_offset as usize])];
            for region in &file.regions {
                let start = (file.payload_offset + region.value_offset * 4) as usize;
                let len = (region.count * 4) as usize;
                segments.push((region.name.as_str(), &bytes[start..start + len]));
            }
            (file.checkpoint_version, file.payload_offset, segments)
        }
        None => (0, 0, vec![("payload", &bytes[..])]),
    };
    let version = map.parsed_or("version", default_version)?;

    // --with-meta: pay the capture pass now so store-backed compares
    // read metadata straight from the manifest.
    let meta = if map.flag("with-meta") {
        let engine = engine_from(map)?;
        let payload_len = parsed
            .as_ref()
            .map_or(bytes.len() as u64, |f| f.payload_len);
        let values = payload_values(&bytes, payload_offset, payload_len);
        if values.is_empty() {
            return Err(CliError::Failed(format!(
                "{} holds no f32 payload to build metadata from",
                input.display()
            )));
        }
        engine.encode_metadata(&values)
    } else {
        Vec::new()
    };

    // --delta: differential capture against the previous stored
    // version, writing only changed chunks (full anchors forced by the
    // --anchor-every / --max-depth policy).
    let delta = map.flag("delta");
    let policy = DeltaPolicy {
        anchor_every: map.parsed_or("anchor-every", DeltaPolicy::default().anchor_every)?,
        max_depth: map.parsed_or("max-depth", DeltaPolicy::default().max_depth)?,
    };
    let result = if delta {
        store.ingest_delta(&name, version, &segments, chunk_bytes, &meta, &policy)
    } else {
        store.ingest(&name, version, &segments, chunk_bytes, &meta)
    };
    let stats = match result {
        Ok(stats) => stats,
        Err(StoreError::Exists { name, version }) => {
            return Ok(format!(
                "{name}@{version} already in store; ingest is idempotent, nothing written\n"
            ))
        }
        Err(e) => return Err(fail(e)),
    };

    if map.flag("json") {
        let mut s = serde_json::to_string_pretty(&stats).map_err(fail)?;
        s.push('\n');
        return Ok(s);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ingested {name}@{version} into {} (chunk {chunk_bytes} B, {} segment(s){})",
        store.root().display(),
        segments.len(),
        if meta.is_empty() {
            ""
        } else {
            ", metadata stored"
        },
    );
    let _ = writeln!(
        out,
        "chunks: {} refs, {} stored, {} deduplicated, {} skipped",
        stats.chunk_refs, stats.chunks_stored, stats.chunks_deduped, stats.chunks_skipped,
    );
    let _ = writeln!(
        out,
        "bytes:  {} logical = {} physical + {} deduplicated + {} skipped",
        stats.bytes_logical, stats.bytes_physical, stats.bytes_deduped, stats.bytes_skipped,
    );
    match stats.parent {
        Some(parent) => {
            let _ = writeln!(
                out,
                "chain:  delta of {name}@{parent} at depth {}",
                stats.depth
            );
        }
        None if delta => {
            let _ = writeln!(out, "chain:  full anchor (no usable parent, or policy)");
        }
        None => {}
    }
    match stats.pack {
        Some(id) => {
            let _ = writeln!(out, "pack:   pack-{id:06}");
        }
        None => {
            let _ = writeln!(out, "pack:   none (every chunk already stored)");
        }
    }
    Ok(out)
}

/// `store-remove`: drop one stored checkpoint's manifest and release
/// its chunk references (physical bytes are reclaimed by `gc`).
pub fn store_remove(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let (name, version) = resolve_run_spec(&store, map.required("run")?)?;
    store.remove(&name, version).map_err(fail)?;
    Ok(format!(
        "removed {name}@{version}; run `gc` to reclaim unreferenced packs\n"
    ))
}

/// `chain`: show the delta chain a stored checkpoint restores through,
/// anchor first, with each link's ownership and skip ledger. With
/// `--flatten`, every delta link is rewritten to a full manifest
/// (tail-first), unpinning ancestors for `store-remove` + `gc`.
pub fn chain(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let (name, version) = resolve_run_spec(&store, map.required("run")?)?;
    if map.flag("flatten") {
        let links = store.chain(&name, version).map_err(fail)?;
        let mut rewritten = 0u64;
        for link in links.iter().rev() {
            if store.flatten(&name, link.version).map_err(fail)? {
                rewritten += 1;
            }
        }
        return Ok(format!(
            "flattened {rewritten} delta manifest(s) of {name}@{version} to full anchors\n"
        ));
    }
    let links = store.chain(&name, version).map_err(fail)?;
    if map.flag("json") {
        let mut s = serde_json::to_string_pretty(&links).map_err(fail)?;
        s.push('\n');
        return Ok(s);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chain of {name}@{version}: {} link(s), restore depth {}",
        links.len(),
        links.last().map_or(0, |l| l.depth),
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>6} {:>10} {:>10} {:>12} {:>14}",
        "version", "parent", "depth", "refs", "own refs", "own bytes", "bytes skipped"
    );
    for link in &links {
        let parent = link
            .parent
            .map_or_else(|| "-".to_owned(), |p| p.to_string());
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>6} {:>10} {:>10} {:>12} {:>14}",
            link.version,
            parent,
            link.depth,
            link.chunk_refs,
            link.own_refs,
            link.own_bytes,
            link.bytes_skipped,
        );
    }
    Ok(out)
}

/// `gc`: delete packs whose every chunk has dropped to zero references
/// and atomically swap in the pruned index.
pub fn gc(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let stats = store.gc().map_err(fail)?;
    if map.flag("json") {
        let mut s = serde_json::to_string_pretty(&stats).map_err(fail)?;
        s.push('\n');
        return Ok(s);
    }
    Ok(format!(
        "gc: {} pack(s) deleted, {} chunk entries dropped, {} bytes reclaimed\n",
        stats.packs_deleted, stats.chunks_dropped, stats.bytes_reclaimed
    ))
}

/// `scrub`: re-hash every stored chunk against the digest it is filed
/// under; exits non-zero when any chunk fails, listing the damage.
pub fn scrub(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let report = store.scrub().map_err(fail)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scrub: {} pack(s), {} chunk(s) re-hashed",
        report.packs_scanned, report.chunks_scanned,
    );
    if report.is_clean() {
        let _ = writeln!(out, "RESULT: store is clean");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "RESULT: {} chunk(s) do not match their digest:",
        report.failures.len()
    );
    for f in &report.failures {
        let _ = writeln!(
            out,
            "  pack-{:06} at byte {} ({} bytes): stored {} != actual {}",
            f.pack, f.data_offset, f.len, f.expected, f.actual,
        );
    }
    Err(CliError::Failed(out))
}

/// `fsck`: full integrity pass over every pack. Without `--repair`
/// this reports; with it, single-chunk corruption per parity group is
/// reconstructed from XOR parity in place, and packs with
/// unrecoverable damage are quarantined (their chunks surface as
/// `unverified` ranges in degraded-mode comparison). Exit codes: 0
/// when the store ends healthy (clean, or fully repaired), 1 when
/// corruption remains.
pub fn fsck(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let repair = map.flag("repair");
    let report = store.fsck(repair).map_err(fail)?;
    if map.flag("json") {
        let mut s = serde_json::to_string_pretty(&report).map_err(fail)?;
        s.push('\n');
        return if report.healthy() {
            Ok(s)
        } else {
            Err(CliError::Failed(s))
        };
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fsck{}: {} pack(s), {} chunk(s) re-hashed",
        if repair { " --repair" } else { "" },
        report.packs_scanned,
        report.chunks_scanned,
    );
    if report.is_clean() {
        let _ = writeln!(out, "RESULT: store is clean");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "corruption: {} chunk(s) failed verification; {} repaired from parity, \
         {} unrecoverable",
        report.chunks_corrupt, report.chunks_repaired, report.chunks_unrecoverable,
    );
    for id in &report.packs_quarantined {
        let _ = writeln!(
            out,
            "  pack-{id:06} quarantined: its chunks are served verify-on-read and \
             surface as unverified ranges in comparison"
        );
    }
    if report.healthy() {
        let _ = writeln!(
            out,
            "RESULT: store repaired — every corrupt chunk was reconstructed and verified"
        );
        Ok(out)
    } else if repair {
        let _ = writeln!(
            out,
            "RESULT: degraded — re-ingest the affected checkpoints to repoint their \
             chunks, then `gc` to reclaim the quarantined pack(s)"
        );
        Err(CliError::Failed(out))
    } else {
        let _ = writeln!(
            out,
            "RESULT: corrupt — run `fsck --repair` to attempt repair"
        );
        Err(CliError::Failed(out))
    }
}

/// `store-stats`: the store-wide dedup ledger and object listing.
pub fn store_stats(map: &ArgMap) -> Result<String, CliError> {
    let store = open_store(map)?;
    let stats = store.stats();
    if map.flag("json") {
        let mut s = serde_json::to_string_pretty(&stats).map_err(fail)?;
        s.push('\n');
        return Ok(s);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store at {}: {} object(s) across {} pack(s)",
        store.root().display(),
        stats.objects,
        stats.packs,
    );
    let _ = writeln!(
        out,
        "chunks: {} unique, {} references",
        stats.chunks_unique, stats.chunk_refs,
    );
    let _ = writeln!(
        out,
        "bytes:  {} logical = {} physical + {} deduplicated + {} skipped \
         ({} B of pack files on disk)",
        stats.bytes_logical,
        stats.bytes_physical,
        stats.bytes_deduped,
        stats.bytes_skipped,
        stats.pack_file_bytes,
    );
    let _ = writeln!(
        out,
        "chains: {} delta manifest(s), deepest chain {} link(s), {} B skipped at capture",
        stats.delta_objects, stats.chain_depth_max, stats.bytes_skipped,
    );
    let objects = store.objects();
    for (name, version) in objects.iter().take(32) {
        let _ = writeln!(out, "  {name}@{version}");
    }
    if objects.len() > 32 {
        let _ = writeln!(out, "  … and {} more", objects.len() - 32);
    }
    Ok(out)
}

/// `trace`: run a subcommand with the flight recorder on, writing a
/// Chrome-trace/Perfetto JSON file. `reprocmp trace compare --run1 A
/// --run2 B --out trace.json` is sugar for `reprocmp compare … --trace
/// trace.json`; only `compare` currently records a journal.
///
/// # Errors
///
/// Usage errors for a missing/unsupported inner command; whatever the
/// inner command fails with.
pub fn trace(argv: &[String]) -> Result<String, CliError> {
    let Some(inner) = argv.first() else {
        return Err(CliError::Usage(
            "trace needs an inner command: reprocmp trace compare … [--out trace.json]".to_owned(),
        ));
    };
    if inner != "compare" {
        return Err(CliError::Usage(format!(
            "trace only wraps `compare` (journaled comparison), got `{inner}`"
        )));
    }
    // Rewrite `--out F` into compare's own `--trace F` flag.
    let mut rewritten: Vec<String> = Vec::with_capacity(argv.len() + 1);
    let mut out_path: Option<String> = None;
    let mut iter = argv[1..].iter().peekable();
    while let Some(tok) = iter.next() {
        if tok == "--out" {
            let Some(next) = iter.peek() else {
                return Err(CliError::Usage("--out needs a file path".to_owned()));
            };
            out_path = Some((*next).clone());
            iter.next();
        } else {
            rewritten.push(tok.clone());
        }
    }
    rewritten.push("--trace".to_owned());
    rewritten.push(out_path.unwrap_or_else(|| "trace.json".to_owned()));
    let map = ArgMap::parse(&rewritten)?;
    compare(&map)
}

/// `perf-diff`: compare two committed performance baselines (or full
/// `--json` compare reports) under a relative budget, exiting non-zero
/// when any phase regressed past it.
///
/// # Errors
///
/// Unreadable/unparsable files, a bad `--budget`, or — as
/// [`CliError::Failed`], so CI sees exit 1 — a budget-exceeding
/// regression.
pub fn perf_diff(old_path: &str, new_path: &str, map: &ArgMap) -> Result<String, CliError> {
    let budget =
        reprocmp_obs::parse_budget(map.optional("budget").unwrap_or("10%")).map_err(fail)?;
    let read_baseline = |path: &str| -> Result<reprocmp_obs::ProfileBaseline, CliError> {
        let text = std::fs::read_to_string(path).map_err(|e| fail(format!("{path}: {e}")))?;
        reprocmp_obs::ProfileBaseline::parse(&text).map_err(|e| fail(format!("{path}: {e}")))
    };
    let old = read_baseline(old_path)?;
    let new = read_baseline(new_path)?;
    let diff = reprocmp_obs::diff_profiles(&old, &new, budget);
    let out = diff.render();
    if diff.passed() {
        Ok(out)
    } else {
        Err(CliError::Failed(out))
    }
}

// ---------------------------------------------------------------------------
// Comparison-as-a-service: the daemon and its client verbs.
// ---------------------------------------------------------------------------

/// Parses a strict `name@version` object reference (the client side
/// has no store to resolve a bare name against).
fn parse_object_ref(spec: &str) -> Result<reprocmp_server::ObjectRef, CliError> {
    let Some((name, raw)) = spec.rsplit_once('@') else {
        return Err(CliError::Usage(format!(
            "object ref `{spec}` must be name@version (the server cannot \
             resolve bare names)"
        )));
    };
    let version = raw.parse().map_err(|_| {
        CliError::Usage(format!("object ref `{spec}`: cannot parse version `{raw}`"))
    })?;
    Ok(reprocmp_server::ObjectRef {
        name: name.to_owned(),
        version,
    })
}

fn parse_addr(map: &ArgMap) -> Result<std::net::SocketAddr, CliError> {
    let raw = map.required("addr")?;
    raw.parse()
        .map_err(|_| CliError::Usage(format!("--addr `{raw}` is not host:port")))
}

fn connect_client(map: &ArgMap) -> Result<reprocmp_server::ServerClient, CliError> {
    let addr = parse_addr(map)?;
    let identity = map.optional("client").unwrap_or("cli").to_owned();
    reprocmp_server::ServerClient::connect(addr, &identity).map_err(fail)
}

fn render_status(status: &reprocmp_server::RemoteStatus) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "job {}: {}", status.job, status.state.as_str());
    if let Some(result) = &status.result {
        let _ = writeln!(
            out,
            "{}",
            serde_json::to_string_pretty(&ValueShim(result.clone())).expect("encode result")
        );
    }
    if let Some(error) = &status.error {
        let _ = writeln!(out, "error: {error}");
    }
    out
}

/// The vendored serde has no blanket `Serialize` for [`serde::Value`];
/// this shim renders wire result documents as JSON.
struct ValueShim(serde::Value);

impl serde::Serialize for ValueShim {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// `serve`: run the comparison daemon. Claims the store exclusively
/// (advisory lock), listens on `--addr`, and serves until a client
/// sends `shutdown` — then drains every in-flight job and exits.
///
/// `--addr-file F` writes the bound address (useful with `--addr
/// host:0` for an OS-assigned port) so scripts and the second
/// terminal can find the daemon.
///
/// # Errors
///
/// A locked store (another daemon owns it), bind failures.
pub fn serve(map: &ArgMap) -> Result<String, CliError> {
    use reprocmp_server::{Server, ServerConfig, TcpTransport};

    let root = PathBuf::from(map.required("store")?);
    let defaults = ServerConfig::rooted_at(&root);
    let cadence_ms = map.parsed_or(
        "telemetry-ms",
        u64::try_from(defaults.telemetry_cadence.as_millis()).unwrap_or(u64::MAX),
    )?;
    let config = ServerConfig {
        chunk_bytes: map.parsed_or("chunk-bytes", defaults.chunk_bytes)?,
        error_bound: map.parsed_or("error-bound", defaults.error_bound)?,
        workers: map.parsed_or("workers", defaults.workers)?,
        queue_capacity: map.parsed_or("queue", defaults.queue_capacity)?,
        quantum: map.parsed_or("quantum", defaults.quantum)?,
        // `--telemetry-ms 0` disables the background sampler (the
        // `metrics` verb still samples on demand).
        telemetry_cadence: std::time::Duration::from_millis(cadence_ms),
        telemetry_retention: map.parsed_or("telemetry-retention", defaults.telemetry_retention)?,
        owner: map
            .optional("owner")
            .map_or(defaults.owner.clone(), str::to_owned),
        ..defaults
    };
    let server = std::sync::Arc::new(Server::start(config).map_err(fail)?);
    let transport =
        TcpTransport::bind(map.optional("addr").unwrap_or("127.0.0.1:0")).map_err(fail)?;
    let bound = transport.addr();
    if let Some(path) = map.optional("addr-file") {
        std::fs::write(path, bound.to_string()).map_err(fail)?;
    }
    // Printed before the blocking serve loop, not returned after it:
    // the second terminal needs the address while the daemon runs.
    println!(
        "reprocmp-server listening on {bound} (store {})",
        root.display()
    );
    transport.run(&server).map_err(fail)?;
    Ok("server stopped: all in-flight jobs drained\n".to_owned())
}

/// `submit`: send one job to a running daemon. The verb comes from
/// which flags are present: `--input F --name S --version N` ingests,
/// `--run1 R --run2 R` compares, `--baseline R --runs R,R` batches,
/// `--materialize R` reconstructs. Waits for the result unless
/// `--no-wait` (which just prints the job id).
///
/// # Errors
///
/// Backpressure rejections (retry later), unknown objects, transport
/// failures.
pub fn submit(map: &ArgMap) -> Result<String, CliError> {
    let mut session = connect_client(map)?;
    let job = if let Some(input) = map.optional("input") {
        let name = map.required("name")?;
        let version = map.parsed_or("version", 1u64)?;
        let chunk_bytes = map.parsed_or("chunk-bytes", 4096u64)?;
        let data = std::fs::read(input).map_err(|e| fail(format!("{input}: {e}")))?;
        session
            .ingest(name, version, chunk_bytes, &data)
            .map_err(fail)?
    } else if let Some(run1) = map.optional("run1") {
        let left = parse_object_ref(run1)?;
        let right = parse_object_ref(map.required("run2")?)?;
        session.compare(left, right).map_err(fail)?
    } else if let Some(baseline) = map.optional("baseline") {
        let base = parse_object_ref(baseline)?;
        let runs = map
            .required("runs")?
            .split(',')
            .map(parse_object_ref)
            .collect::<Result<Vec<_>, _>>()?;
        session.compare_many(base, runs).map_err(fail)?
    } else if let Some(spec) = map.optional("materialize") {
        let r = parse_object_ref(spec)?;
        session.materialize(&r.name, r.version).map_err(fail)?
    } else {
        return Err(CliError::Usage(
            "submit needs a job: --input F --name S --version N (ingest), \
             --run1 R --run2 R (compare), --baseline R --runs R,R,... \
             (compare-many), or --materialize R"
                .to_owned(),
        ));
    };
    if map.flag("no-wait") {
        return Ok(format!("job {job} accepted\n"));
    }
    let status = session.wait(job).map_err(fail)?;
    if status.error.is_some() {
        return Err(CliError::Failed(render_status(&status)));
    }
    Ok(render_status(&status))
}

/// `status`: one job's state (and result once terminal); `--wait`
/// blocks server-side until the job finishes.
///
/// # Errors
///
/// Unknown job ids, transport failures.
pub fn status(map: &ArgMap) -> Result<String, CliError> {
    let mut session = connect_client(map)?;
    let job = map.parsed_or("job", 0u64)?;
    if job == 0 {
        return Err(CliError::Usage("status needs --job N".to_owned()));
    }
    let status = session.status(job, map.flag("wait")).map_err(fail)?;
    Ok(render_status(&status))
}

/// `watch`: stream a job's flight-recorder events (one line per
/// event) followed by the journal ledger. Blocks until the job is
/// terminal.
///
/// # Errors
///
/// Unknown job ids, transport failures.
pub fn watch(map: &ArgMap) -> Result<String, CliError> {
    let mut session = connect_client(map)?;
    let job = map.parsed_or("job", 0u64)?;
    if job == 0 {
        return Err(CliError::Usage("watch needs --job N".to_owned()));
    }
    let (events, summary) = session.watch(job).map_err(fail)?;
    let mut out = String::new();
    for e in &events {
        let _ = writeln!(
            out,
            "[{:>12} ns] #{:<4} {:<24} {}",
            e.ts_ns, e.seq, e.lane, e.kind
        );
    }
    let _ = writeln!(
        out,
        "job {job}: {} — {} events emitted, {} written, {} dropped",
        summary.state.as_str(),
        summary.events_emitted,
        summary.events_written,
        summary.events_dropped
    );
    Ok(out)
}

/// `shutdown`: ask a running daemon to drain and exit.
///
/// The daemon stops admitting work, finishes every in-flight job
/// (blocked `status --wait`/`watch`/`subscribe` clients all get their
/// terminal frames), then releases the store and exits.
///
/// # Errors
///
/// Transport failures.
pub fn shutdown(map: &ArgMap) -> Result<String, CliError> {
    let mut session = connect_client(map)?;
    session.shutdown_server().map_err(fail)?;
    Ok("shutdown acknowledged — daemon is draining\n".to_owned())
}

/// `metrics`: fetch one telemetry snapshot from a running daemon.
/// Default output is pretty JSON (the exact wire payload); `--prom`
/// renders the Prometheus text exposition instead — stable, byte-
/// deterministic output fit for a scrape endpoint or a golden test.
///
/// # Errors
///
/// Transport failures; malformed snapshots under `--prom`.
pub fn metrics(map: &ArgMap) -> Result<String, CliError> {
    let mut session = connect_client(map)?;
    let value = session.metrics().map_err(fail)?;
    if map.flag("prom") {
        let snapshot = reprocmp_obs::TelemetrySnapshot::from_value(&value)
            .map_err(|e| fail(format!("malformed telemetry snapshot: {e}")))?;
        return Ok(reprocmp_obs::prometheus_text(&snapshot));
    }
    let mut out = serde_json::to_string_pretty(&RawValue(value)).map_err(fail)?;
    out.push('\n');
    Ok(out)
}

/// Numbers frames the way `analyze --keys` does, so scripted TUI
/// output from every command diffs the same way.
fn render_frames(frames: &[String]) -> String {
    let mut out = String::new();
    for (i, frame) in frames.iter().enumerate() {
        let _ = writeln!(out, "--- frame {i} ---");
        out.push_str(frame);
    }
    out
}

/// Parses one `telemetry.jsonl` line-set into snapshots, skipping
/// torn or foreign lines (the file is crash-tolerant by design).
fn parse_telemetry_jsonl(text: &str) -> Vec<reprocmp_obs::TelemetrySnapshot> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| reprocmp_server::json::parse(l).ok())
        .filter_map(|v| reprocmp_obs::TelemetrySnapshot::from_value(&v).ok())
        .collect()
}

/// `top`: the live daemon telemetry viewer. Three modes:
///
/// * `--file telemetry.jsonl [--keys S]` — offline replay of persisted
///   history (deterministic; what the snapshot tests drive);
/// * `--addr H:P --frames N [--keys S]` — subscribe for N snapshots,
///   then render scripted frames and exit (CI-able capture);
/// * `--addr H:P` — interactive raw-mode session: `h`/`l` scroll
///   history, `t` toggles panes, `q` quits.
///
/// # Errors
///
/// Transport failures; unreadable `--file`.
pub fn top(map: &ArgMap) -> Result<String, CliError> {
    use reprocmp_analyze::TopView;

    let keys = map.optional("keys");

    // Offline: replay persisted telemetry history.
    if let Some(path) = map.optional("file") {
        let text = std::fs::read_to_string(path).map_err(|e| fail(format!("{path}: {e}")))?;
        let mut view = TopView::new(parse_telemetry_jsonl(&text));
        return Ok(render_frames(&view.play(keys.unwrap_or(""))));
    }

    let mut session = connect_client(map)?;

    // Scripted capture: N snapshots off the subscribe stream, then
    // frames — one per snapshot, plus one per key if `--keys` is set.
    if map.optional("frames").is_some() {
        let n = map.parsed_or("frames", 1u64)?;
        let snapshots = session.subscribe_telemetry(n).map_err(fail)?;
        let mut view = TopView::new(Vec::new());
        let mut frames = Vec::new();
        for value in &snapshots {
            if let Ok(s) = reprocmp_obs::TelemetrySnapshot::from_value(value) {
                view.push(s);
                frames.push(view.render());
            }
        }
        if let Some(script) = keys {
            frames.extend(view.play(script).into_iter().skip(1));
        }
        return Ok(render_frames(&frames));
    }

    // Interactive: raw-mode keystrokes against a ~2 Hz metrics poll.
    // Raw mode is best-effort — without a tty the keys just arrive
    // line-buffered.
    let _guard = crate::term::RawModeGuard::enter().ok();
    let key_rx = crate::term::spawn_key_reader();
    let mut view = TopView::new(Vec::new());
    let mut last_seq = 0u64;
    loop {
        let value = session.metrics().map_err(fail)?;
        if let Ok(s) = reprocmp_obs::TelemetrySnapshot::from_value(&value) {
            if s.seq > last_seq {
                last_seq = s.seq;
                view.push(s);
            }
        }
        print!("{}{}", crate::term::CLEAR, view.render());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match key_rx.recv_timeout(std::time::Duration::from_millis(500)) {
            Ok(key) => {
                view.handle_key(key);
                if view.quit_requested() {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    Ok(format!(
        "top: session ended after {} snapshots\n",
        view.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        crate::run(&argv)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("reprocmp-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_raw_f32(path: &Path, values: &[f32]) {
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn end_to_end_simulate_tree_compare() {
        let dir = temp_dir("e2e");
        // Two nondeterministic runs from the same ICs.
        for (name, seed) in [("run1", "1"), ("run2", "2")] {
            run_cli(&[
                "simulate",
                "--out-dir",
                dir.to_str().unwrap(),
                "--particles",
                "512",
                "--steps",
                "20",
                "--ranks",
                "1",
                "--order-seed",
                seed,
                "--run-name",
                name,
            ])
            .unwrap();
        }
        // steps=20 → capture interval 4 → iterations 4, 8, 12, 16.
        let c1 = dir.join("pfs/run1.rank0.v000016.ckpt");
        let c2 = dir.join("pfs/run2.rank0.v000016.ckpt");
        assert!(c1.exists() && c2.exists());

        // Build metadata for run1.
        let t1 = dir.join("run1.tree");
        let out = run_cli(&[
            "create-tree",
            "--input",
            c1.to_str().unwrap(),
            "--output",
            t1.to_str().unwrap(),
            "--chunk-bytes",
            "256",
        ])
        .unwrap();
        assert!(out.contains("metadata"));

        // Compare with a loose and a tight bound.
        let loose = run_cli(&[
            "compare",
            "--run1",
            c1.to_str().unwrap(),
            "--run2",
            c2.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1.0",
        ])
        .unwrap();
        assert!(loose.contains("agree within the bound"), "{loose}");

        let tight = run_cli(&[
            "compare",
            "--run1",
            c1.to_str().unwrap(),
            "--run2",
            c2.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-12",
        ])
        .unwrap();
        assert!(tight.contains("differ beyond the bound"), "{tight}");

        // Resilience flags parse and show up in the traffic line.
        let resilient = run_cli(&[
            "compare",
            "--run1",
            c1.to_str().unwrap(),
            "--run2",
            c2.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-12",
            "--retry-attempts",
            "5",
            "--failure-policy",
            "quarantine",
        ])
        .unwrap();
        assert!(resilient.contains("ops submitted"), "{resilient}");
        assert!(!resilient.contains("WARNING"), "healthy files: {resilient}");

        let bad = run_cli(&[
            "compare",
            "--run1",
            c1.to_str().unwrap(),
            "--run2",
            c2.to_str().unwrap(),
            "--failure-policy",
            "sometimes",
        ])
        .unwrap_err();
        assert!(format!("{bad:?}").contains("abort"), "{bad:?}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_raw_f32_files() {
        let dir = temp_dir("raw");
        let a = dir.join("a.f32");
        let b = dir.join("b.f32");
        let base: Vec<f32> = (0..1000).map(|i| i as f32 * 0.1).collect();
        let mut tweaked = base.clone();
        tweaked[123] += 0.5;
        write_raw_f32(&a, &base);
        write_raw_f32(&b, &tweaked);

        let out = run_cli(&[
            "compare",
            "--run1",
            a.to_str().unwrap(),
            "--run2",
            b.to_str().unwrap(),
            "--chunk-bytes",
            "128",
            "--error-bound",
            "1e-3",
        ])
        .unwrap();
        assert!(out.contains("1 values differ"), "{out}");
        assert!(out.contains("[123]"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_profile_and_json_render_the_stage_breakdown() {
        let dir = temp_dir("profile");
        let a = dir.join("a.f32");
        let b = dir.join("b.f32");
        let base: Vec<f32> = (0..2000).map(|i| i as f32 * 0.1).collect();
        let mut tweaked = base.clone();
        tweaked[42] += 5.0;
        write_raw_f32(&a, &base);
        write_raw_f32(&b, &tweaked);

        let out = run_cli(&[
            "compare",
            "--run1",
            a.to_str().unwrap(),
            "--run2",
            b.to_str().unwrap(),
            "--chunk-bytes",
            "128",
            "--error-bound",
            "1e-3",
            "--profile",
        ])
        .unwrap();
        assert!(out.contains("stage profile:"), "{out}");
        for phase in [
            "quantize",
            "leaf_hash",
            "level_build",
            "bfs",
            "stage2_stream",
            "store_read",
            "verify",
        ] {
            assert!(out.contains(phase), "missing {phase}: {out}");
        }
        assert!(out.contains("latency quantiles:"), "{out}");
        assert!(out.contains("p95"), "{out}");

        let json = run_cli(&[
            "compare",
            "--run1",
            a.to_str().unwrap(),
            "--run2",
            b.to_str().unwrap(),
            "--chunk-bytes",
            "128",
            "--error-bound",
            "1e-3",
            "--json",
        ])
        .unwrap();
        for key in [
            "\"stages\"",
            "\"quantize\"",
            "\"stage2_stream\"",
            "\"io\"",
            "\"diff_count\": 1",
            "\"histograms\"",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        assert!(
            !json.contains("RESULT"),
            "json mode must not mix in prose: {json}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_many_baseline_reports_cache_savings() {
        let dir = temp_dir("many");
        let base: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).cos()).collect();
        // Three runs share one deviation from the baseline (plus one
        // unique value each), so later jobs hit the caches.
        let mut shared = base.clone();
        for v in shared.iter_mut().take(2048) {
            *v += 1.0;
        }
        let baseline = dir.join("baseline.f32");
        write_raw_f32(&baseline, &base);
        let mut run_paths = Vec::new();
        for r in 0..3usize {
            let mut values = shared.clone();
            values[3000 + r] += 0.5;
            let p = dir.join(format!("run{r}.f32"));
            write_raw_f32(&p, &values);
            run_paths.push(p);
        }
        let runs_arg = run_paths
            .iter()
            .map(|p| p.to_str().unwrap().to_owned())
            .collect::<Vec<_>>()
            .join(",");

        let out = run_cli(&[
            "compare-many",
            "--baseline",
            baseline.to_str().unwrap(),
            "--runs",
            &runs_arg,
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-3",
            "--lanes",
            "4",
        ])
        .unwrap();
        assert!(out.contains("3 run(s) against baseline"), "{out}");
        assert!(out.contains("decoded 4 tree(s)"), "{out}");
        assert!(out.contains("differ beyond the bound"), "{out}");
        // Runs 2 and 3 repeat run 1's deviation: both cache layers hit.
        let saved_line = out
            .lines()
            .find(|l| l.starts_with("cache:"))
            .expect("cache line");
        assert!(!saved_line.contains("saved 0 node visits"), "{out}");
        assert!(!saved_line.contains("0 re-read bytes"), "{out}");

        // --no-cache still agrees on the verdicts, with an empty ledger.
        let uncached = run_cli(&[
            "compare-many",
            "--baseline",
            baseline.to_str().unwrap(),
            "--runs",
            &runs_arg,
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-3",
            "--lanes",
            "4",
            "--no-cache",
        ])
        .unwrap();
        assert!(uncached.contains("0 subtree hits"), "{uncached}");
        assert!(uncached.contains("differ beyond the bound"), "{uncached}");
        // Verdicts (flagged chunks and diff counts per pair) must match
        // the cached run; only the re-read column may shrink under the
        // cache, so compare rows with that field masked out.
        let rows = |text: &str| -> Vec<Vec<String>> {
            text.lines()
                .filter(|l| l.contains(" vs "))
                .map(|l| {
                    let mut cols: Vec<String> = l.split_whitespace().map(str::to_owned).collect();
                    cols[3] = "-".to_owned(); // re-read bytes
                    cols
                })
                .collect()
        };
        assert_eq!(rows(&out), rows(&uncached), "{out}\n--\n{uncached}");

        // --json renders the machine-readable batch report.
        let json = run_cli(&[
            "compare-many",
            "--baseline",
            baseline.to_str().unwrap(),
            "--runs",
            &runs_arg,
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-3",
            "--json",
        ])
        .unwrap();
        for key in ["\"jobs\"", "\"cache\"", "\"trees_decoded\": 4"] {
            assert!(json.contains(key), "missing {key}: {json}");
        }

        // All-pairs mode covers every unordered pair: C(3,2) = 3 jobs.
        let pairs = run_cli(&[
            "compare-many",
            "--all-pairs",
            "--runs",
            &runs_arg,
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-3",
        ])
        .unwrap();
        assert!(pairs.contains("all 3 pairs of 3 runs"), "{pairs}");

        // Usage errors: no mode, and both modes at once.
        let err = run_cli(&["compare-many", "--runs", &runs_arg]).unwrap_err();
        assert!(err.to_string().contains("--baseline"), "{err}");
        let err = run_cli(&[
            "compare-many",
            "--runs",
            &runs_arg,
            "--baseline",
            baseline.to_str().unwrap(),
            "--all-pairs",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_describes_all_formats() {
        let dir = temp_dir("info");
        let raw = dir.join("raw.f32");
        write_raw_f32(&raw, &[1.0, 2.0, 3.0]);
        let out = run_cli(&["info", "--input", raw.to_str().unwrap()]).unwrap();
        assert!(out.contains("3 values"), "{out}");

        let tree = dir.join("raw.tree");
        run_cli(&[
            "create-tree",
            "--input",
            raw.to_str().unwrap(),
            "--output",
            tree.to_str().unwrap(),
            "--chunk-bytes",
            "4",
        ])
        .unwrap();
        let out = run_cli(&["info", "--input", tree.to_str().unwrap()]).unwrap();
        assert!(out.contains("Merkle tree metadata"), "{out}");
        assert!(out.contains("leaves 3"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_command_finds_first_divergent_iteration() {
        let dir = temp_dir("history");
        for (sub, seed) in [("a", "1"), ("b", "2")] {
            run_cli(&[
                "simulate",
                "--out-dir",
                dir.join(sub).to_str().unwrap(),
                "--particles",
                "512",
                "--steps",
                "20",
                "--ranks",
                "2",
                "--order-seed",
                seed,
            ])
            .unwrap();
        }
        // Loose bound: full agreement.
        let out = run_cli(&[
            "history",
            "--run1-dir",
            dir.join("a/pfs").to_str().unwrap(),
            "--run2-dir",
            dir.join("b/pfs").to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1.0",
        ])
        .unwrap();
        assert!(out.contains("8 checkpoint pairs"), "{out}");
        assert!(out.contains("agree within the bound"), "{out}");

        // Tight bound: divergence localized to an iteration.
        let out = run_cli(&[
            "history",
            "--run1-dir",
            dir.join("a/pfs").to_str().unwrap(),
            "--run2-dir",
            dir.join("b/pfs").to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-12",
        ])
        .unwrap();
        assert!(out.contains("diverge from iteration"), "{out}");

        // Directories covering different checkpoint sets are an error.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run_cli(&[
            "history",
            "--run1-dir",
            dir.join("a/pfs").to_str().unwrap(),
            "--run2-dir",
            empty.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("different (rank, iteration)"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_command_bisects_tracks_and_replays_frames() {
        let dir = temp_dir("analyze");
        for (sub, seed) in [("a", "1"), ("b", "2")] {
            run_cli(&[
                "simulate",
                "--out-dir",
                dir.join(sub).to_str().unwrap(),
                "--particles",
                "512",
                "--steps",
                "20",
                "--ranks",
                "1",
                "--order-seed",
                seed,
            ])
            .unwrap();
        }
        let dir1 = dir.join("a/pfs");
        let dir2 = dir.join("b/pfs");
        let base_args = |bound: &str| {
            vec![
                "analyze".to_owned(),
                "--run1-dir".to_owned(),
                dir1.to_str().unwrap().to_owned(),
                "--run2-dir".to_owned(),
                dir2.to_str().unwrap().to_owned(),
                "--chunk-bytes".to_owned(),
                "256".to_owned(),
                "--error-bound".to_owned(),
                bound.to_owned(),
            ]
        };

        // Loose bound: clean → exit 0 (Ok) and a clean verdict.
        let out = crate::run(&base_args("1.0")).unwrap();
        assert!(out.contains("bisection: no divergence"), "{out}");
        assert!(out.contains("front: clean"), "{out}");
        assert!(out.contains("agree within the bound"), "{out}");

        // Tight bound: divergent → exit 1 (Failed) with the forensics.
        let err = crate::run(&base_args("1e-12")).unwrap_err();
        let CliError::Failed(out) = err else {
            panic!("divergence must exit 1, got {err:?}");
        };
        assert!(out.contains("first divergence at iteration"), "{out}");
        assert!(out.contains("stage-1 probes"), "{out}");
        assert!(out.contains("front:"), "{out}");
        // Canonical checkpoints carry region names (x/y/z/...).
        assert!(out.contains("per region at the boundary:"), "{out}");
        assert!(out.contains("the runs diverge beyond the bound"), "{out}");

        // --json: the DivergenceReport schema, still exit 1.
        let mut args = base_args("1e-12");
        args.push("--json".to_owned());
        let CliError::Failed(json) = crate::run(&args).unwrap_err() else {
            panic!("divergent --json must exit 1");
        };
        for key in [
            "\"schema_version\": 1",
            "\"divergent\": true",
            "\"bisection\"",
            "\"front\"",
            "\"regions\"",
            "\"boundary\"",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        assert!(
            !json.contains("RESULT"),
            "json mode must not mix prose: {json}"
        );

        // --keys: frame replay, no terminal needed.
        let mut args = base_args("1e-12");
        args.extend(["--keys".to_owned(), "t q".to_owned()]);
        let CliError::Failed(frames) = crate::run(&args).unwrap_err() else {
            panic!("divergent --keys must exit 1");
        };
        assert!(frames.contains("--- frame 0 ---"), "{frames}");
        assert!(frames.contains("merkle tree"), "{frames}");
        assert!(frames.contains("heatmap"), "{frames}");

        // --regions overrides the layout-derived map; bad specs are
        // usage errors (exit 2).
        let mut args = base_args("1e-12");
        args.extend(["--regions".to_owned(), "pos:f80:12".to_owned()]);
        let err = crate::run(&args).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_command_reads_store_backed_histories() {
        let dir = temp_dir("analyze-store");
        let store = dir.join("store");
        let store_arg = store.to_str().unwrap().to_owned();
        for (name, seed) in [("run1", "1"), ("run2", "2")] {
            run_cli(&[
                "simulate",
                "--out-dir",
                dir.to_str().unwrap(),
                "--particles",
                "512",
                "--steps",
                "20",
                "--ranks",
                "1",
                "--order-seed",
                seed,
                "--run-name",
                name,
            ])
            .unwrap();
        }
        // Ingest every captured iteration of both runs: versions form
        // the store-backed history.
        for name in ["run1", "run2"] {
            for version in ["000004", "000008", "000012", "000016"] {
                let ckpt = dir.join(format!("pfs/{name}.rank0.v{version}.ckpt"));
                assert!(ckpt.exists(), "{}", ckpt.display());
                run_cli(&[
                    "ingest",
                    "--store",
                    &store_arg,
                    "--input",
                    ckpt.to_str().unwrap(),
                    "--chunk-bytes",
                    "256",
                ])
                .unwrap();
            }
        }
        let CliError::Failed(out) = crate::run(&[
            "analyze".to_owned(),
            "--store".to_owned(),
            store_arg.clone(),
            "--run1".to_owned(),
            "run1.rank0".to_owned(),
            "--run2".to_owned(),
            "run2.rank0".to_owned(),
            "--chunk-bytes".to_owned(),
            "256".to_owned(),
            "--error-bound".to_owned(),
            "1e-12".to_owned(),
        ])
        .unwrap_err() else {
            panic!("divergent store-backed analyze must exit 1");
        };
        assert!(out.contains("analyzed 4 iterations × 1 ranks"), "{out}");
        assert!(out.contains("first divergence at iteration"), "{out}");
        // The store manifest names the checkpoint fields.
        assert!(out.contains("per region at the boundary:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_passes_reproductions_and_fails_regressions() {
        let dir = temp_dir("gate");
        let golden: Vec<f32> = (0..2_000).map(|i| (i as f32 * 0.01).sin()).collect();
        let golden_path = dir.join("golden.f32");
        write_raw_f32(&golden_path, &golden);
        let tree_path = dir.join("golden.tree");
        run_cli(&[
            "create-tree",
            "--input",
            golden_path.to_str().unwrap(),
            "--output",
            tree_path.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-4",
        ])
        .unwrap();

        // Bitwise reproduction: PASS, metadata only.
        let cand = dir.join("cand.f32");
        write_raw_f32(&cand, &golden);
        let out = run_cli(&[
            "gate",
            "--golden-tree",
            tree_path.to_str().unwrap(),
            "--candidate",
            cand.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("metadata only"), "{out}");

        // Sub-tolerance drift that straddles the grid: PASS only when
        // golden data is available to clear the false positive.
        let mut drifted = golden.clone();
        for v in &mut drifted {
            *v += 4e-5; // under the 1e-4 bound
        }
        write_raw_f32(&cand, &drifted);
        let res = run_cli(&[
            "gate",
            "--golden-tree",
            tree_path.to_str().unwrap(),
            "--candidate",
            cand.to_str().unwrap(),
            "--golden-data",
            golden_path.to_str().unwrap(),
        ]);
        let out = res.unwrap();
        assert!(out.contains("PASS"), "{out}");

        // A real regression: FAIL with localization.
        let mut broken = golden.clone();
        broken[777] += 0.5;
        write_raw_f32(&cand, &broken);
        let err = run_cli(&[
            "gate",
            "--golden-tree",
            tree_path.to_str().unwrap(),
            "--candidate",
            cand.to_str().unwrap(),
            "--golden-data",
            golden_path.to_str().unwrap(),
        ])
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("FAIL"), "{msg}");
        assert!(msg.contains("[777]"), "{msg}");

        // Without golden data the regression still fails (tree-only).
        let err = run_cli(&[
            "gate",
            "--golden-tree",
            tree_path.to_str().unwrap(),
            "--candidate",
            cand.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("chunks differ"), "{err}");

        // Geometry mismatch is an error, not a FAIL verdict.
        let short = dir.join("short.f32");
        write_raw_f32(&short, &golden[..100]);
        let err = run_cli(&[
            "gate",
            "--golden-tree",
            tree_path.to_str().unwrap(),
            "--candidate",
            short.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("describes"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn census_counts_halos_in_a_simulated_checkpoint() {
        let dir = temp_dir("census");
        run_cli(&[
            "simulate",
            "--out-dir",
            dir.to_str().unwrap(),
            "--particles",
            "1024",
            "--steps",
            "10",
            "--ranks",
            "1",
        ])
        .unwrap();
        let ckpt = dir.join("pfs/run.rank0.v000008.ckpt");
        assert!(ckpt.exists());
        let out = run_cli(&[
            "census",
            "--input",
            ckpt.to_str().unwrap(),
            "--linking-length",
            "0.06",
            "--min-members",
            "4",
        ])
        .unwrap();
        assert!(out.contains("halos found:"), "{out}");
        assert!(out.contains("1024 particles"), "{out}");

        // Raw f32 files are rejected with a helpful message.
        let raw = dir.join("raw.f32");
        write_raw_f32(&raw, &[1.0, 2.0, 3.0]);
        let err = run_cli(&["census", "--input", raw.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("x/y/z"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_workflow_ingest_compare_gc_scrub() {
        let dir = temp_dir("store");
        let store = dir.join("store");
        let store_arg = store.to_str().unwrap().to_owned();
        // Two simulated runs whose checkpoints share most chunks.
        for (name, seed) in [("run1", "1"), ("run2", "2")] {
            run_cli(&[
                "simulate",
                "--out-dir",
                dir.to_str().unwrap(),
                "--particles",
                "512",
                "--steps",
                "20",
                "--ranks",
                "1",
                "--order-seed",
                seed,
                "--run-name",
                name,
            ])
            .unwrap();
        }
        let c1 = dir.join("pfs/run1.rank0.v000016.ckpt");
        let c2 = dir.join("pfs/run2.rank0.v000016.ckpt");

        // Ingest both; the object keys come from the file names.
        let out = run_cli(&[
            "ingest",
            "--store",
            &store_arg,
            "--input",
            c1.to_str().unwrap(),
            "--chunk-bytes",
            "256",
        ])
        .unwrap();
        assert!(out.contains("ingested run1.rank0@16"), "{out}");
        assert!(out.contains("logical"), "{out}");
        let out = run_cli(&[
            "ingest",
            "--store",
            &store_arg,
            "--input",
            c2.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--with-meta",
            "--error-bound",
            "1e-12",
        ])
        .unwrap();
        assert!(out.contains("ingested run2.rank0@16"), "{out}");
        assert!(out.contains("metadata stored"), "{out}");

        // Re-ingesting the same key is an idempotent no-op.
        let out = run_cli(&[
            "ingest",
            "--store",
            &store_arg,
            "--input",
            c1.to_str().unwrap(),
            "--chunk-bytes",
            "256",
        ])
        .unwrap();
        assert!(out.contains("idempotent"), "{out}");

        // Store-backed compare matches the file-backed comparison on
        // every deterministic field (the store block is additive).
        let from_store = run_cli(&[
            "compare",
            "--run1",
            "run1.rank0@16",
            "--run2",
            "run2.rank0@16",
            "--store",
            &store_arg,
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-12",
        ])
        .unwrap();
        let from_files = run_cli(&[
            "compare",
            "--run1",
            c1.to_str().unwrap(),
            "--run2",
            c2.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-12",
        ])
        .unwrap();
        assert!(
            from_store.contains("differ beyond the bound"),
            "{from_store}"
        );
        assert!(from_store.contains("store:"), "{from_store}");
        assert!(!from_files.contains("store:"), "{from_files}");
        // Region attribution survives the store round-trip.
        assert!(from_store.contains("per field:"), "{from_store}");
        let verdict = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("RESULT"))
                .map(str::to_owned)
        };
        assert_eq!(verdict(&from_store), verdict(&from_files));

        // A bare name resolves to the newest version.
        let latest = run_cli(&[
            "compare",
            "--run1",
            "run1.rank0",
            "--run2",
            "run1.rank0@16",
            "--store",
            &store_arg,
            "--chunk-bytes",
            "256",
        ])
        .unwrap();
        assert!(latest.contains("agree within the bound"), "{latest}");

        // compare-many over store specs engages the batch scheduler.
        let many = run_cli(&[
            "compare-many",
            "--store",
            &store_arg,
            "--baseline",
            "run1.rank0@16",
            "--runs",
            "run2.rank0@16",
            "--chunk-bytes",
            "256",
            "--error-bound",
            "1e-12",
        ])
        .unwrap();
        assert!(many.contains("1 run(s) against baseline"), "{many}");
        assert!(many.contains("store:"), "{many}");

        // The ledger balances store-wide.
        let stats = run_cli(&["store-stats", "--store", &store_arg]).unwrap();
        assert!(stats.contains("2 object(s)"), "{stats}");
        assert!(stats.contains("run1.rank0@16"), "{stats}");

        // remove + gc reclaims; scrub stays clean afterwards.
        run_cli(&[
            "store-remove",
            "--store",
            &store_arg,
            "--run",
            "run2.rank0@16",
        ])
        .unwrap();
        let gc = run_cli(&["gc", "--store", &store_arg]).unwrap();
        assert!(gc.contains("gc:"), "{gc}");
        let scrub = run_cli(&["scrub", "--store", &store_arg]).unwrap();
        assert!(scrub.contains("store is clean"), "{scrub}");

        // Flip one bit in a pack: scrub must fail with a non-zero exit.
        let packs = store.join("packs");
        let pack = std::fs::read_dir(&packs)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "pack"))
            .expect("a pack survives gc");
        let mut bytes = std::fs::read(&pack).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x04;
        std::fs::write(&pack, bytes).unwrap();
        let err = run_cli(&["scrub", "--store", &store_arg]).unwrap_err();
        assert!(
            err.to_string().contains("do not match their digest"),
            "{err}"
        );

        // --tree1 with --store is a usage error.
        let err = run_cli(&[
            "compare", "--run1", "a", "--run2", "b", "--store", &store_arg, "--tree1", "x.tree",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_dedups_across_runs_and_raw_files_work() {
        let dir = temp_dir("ingest-raw");
        let store = dir.join("store");
        let store_arg = store.to_str().unwrap().to_owned();
        let base: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).cos()).collect();
        let a = dir.join("a.f32");
        write_raw_f32(&a, &base);

        let first = run_cli(&[
            "ingest",
            "--store",
            &store_arg,
            "--input",
            a.to_str().unwrap(),
            "--chunk-bytes",
            "256",
            "--json",
        ])
        .unwrap();
        // Same bytes under a different key: zero physical growth.
        let second = run_cli(&[
            "ingest",
            "--store",
            &store_arg,
            "--input",
            a.to_str().unwrap(),
            "--name",
            "twin",
            "--version",
            "7",
            "--chunk-bytes",
            "256",
            "--json",
        ])
        .unwrap();
        // The vendored serde_json serializes only; scrape the fields.
        let field = |s: &str, key: &str| -> u64 {
            let pat = format!("\"{key}\": ");
            let at = s.find(&pat).map(|i| i + pat.len()).unwrap();
            s[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        assert!(field(&first, "bytes_physical") > 0, "{first}");
        assert_eq!(field(&second, "bytes_physical"), 0, "{second}");
        assert_eq!(
            field(&second, "bytes_deduped"),
            field(&second, "bytes_logical"),
            "{second}"
        );

        // Raw objects compare out of the store too.
        let out = run_cli(&[
            "compare",
            "--run1",
            "a@0",
            "--run2",
            "twin@7",
            "--store",
            &store_arg,
            "--chunk-bytes",
            "256",
        ])
        .unwrap();
        assert!(out.contains("agree within the bound"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_errors_are_helpful() {
        assert!(matches!(run_cli(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&["frobnicate"]), Err(CliError::Usage(_))));
        let err = run_cli(&["compare", "--run1", "only.f32"]).unwrap_err();
        assert!(err.to_string().contains("run2"));
        let help = run_cli(&["help"]).unwrap();
        assert!(help.contains("create-tree"));
    }

    #[test]
    fn compare_with_precomputed_trees() {
        let dir = temp_dir("trees");
        let a = dir.join("a.f32");
        let b = dir.join("b.f32");
        let base: Vec<f32> = (0..4096).map(|i| (i as f32).sqrt()).collect();
        write_raw_f32(&a, &base);
        write_raw_f32(&b, &base);
        let ta = dir.join("a.tree");
        let tb = dir.join("b.tree");
        for (f, t) in [(&a, &ta), (&b, &tb)] {
            run_cli(&[
                "create-tree",
                "--input",
                f.to_str().unwrap(),
                "--output",
                t.to_str().unwrap(),
            ])
            .unwrap();
        }
        let out = run_cli(&[
            "compare",
            "--run1",
            a.to_str().unwrap(),
            "--run2",
            b.to_str().unwrap(),
            "--tree1",
            ta.to_str().unwrap(),
            "--tree2",
            tb.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("agree within the bound"), "{out}");
        assert!(out.contains("0 false positives"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_command_writes_a_chrome_trace_and_flamegraph() {
        let dir = temp_dir("trace");
        let a = dir.join("a.f32");
        let b = dir.join("b.f32");
        let base: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin()).collect();
        let mut tweaked = base.clone();
        tweaked[77] += 1.0;
        write_raw_f32(&a, &base);
        write_raw_f32(&b, &tweaked);

        let trace = dir.join("trace.json");
        let out = run_cli(&[
            "trace",
            "compare",
            "--run1",
            a.to_str().unwrap(),
            "--run2",
            b.to_str().unwrap(),
            "--chunk-bytes",
            "128",
            "--error-bound",
            "1e-3",
            "--out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("events emitted"), "{out}");
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.contains("\"traceEvents\""), "{body}");
        assert!(
            body.contains("chunk_read"),
            "no chunk reads in trace: {body}"
        );

        // `compare --flamegraph` writes folded stacks with the root span.
        let flame = dir.join("stacks.folded");
        run_cli(&[
            "compare",
            "--run1",
            a.to_str().unwrap(),
            "--run2",
            b.to_str().unwrap(),
            "--chunk-bytes",
            "128",
            "--error-bound",
            "1e-3",
            "--flamegraph",
            flame.to_str().unwrap(),
        ])
        .unwrap();
        let folded = std::fs::read_to_string(&flame).unwrap();
        assert!(folded.contains("compare"), "{folded}");

        // Only `compare` can be traced, and the inner command is required.
        assert!(matches!(run_cli(&["trace"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_cli(&["trace", "info", "--input", "x"]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_diff_gates_on_regressions() {
        use reprocmp_obs::{PhaseCost, ProfileBaseline, StageBreakdown};
        use std::time::Duration;

        let dir = temp_dir("perfdiff");
        let stages = |verify_ms: u64| StageBreakdown {
            verify: PhaseCost::new(Duration::from_millis(verify_ms), 1 << 20, 256),
            ..StageBreakdown::default()
        };
        let old = dir.join("old.json");
        let same = dir.join("same.json");
        let slow = dir.join("slow.json");
        std::fs::write(&old, ProfileBaseline::new(stages(100)).to_json()).unwrap();
        std::fs::write(&same, ProfileBaseline::new(stages(104)).to_json()).unwrap();
        std::fs::write(&slow, ProfileBaseline::new(stages(200)).to_json()).unwrap();

        let ok = run_cli(&[
            "perf-diff",
            old.to_str().unwrap(),
            same.to_str().unwrap(),
            "--budget",
            "10%",
        ])
        .unwrap();
        assert!(ok.contains("PASS"), "{ok}");

        let err = run_cli(&[
            "perf-diff",
            old.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--budget",
            "10%",
        ])
        .unwrap_err();
        assert!(matches!(&err, CliError::Failed(_)), "{err:?}");
        assert!(err.to_string().contains("verify"), "{err}");

        // Positional parsing: fewer than two files is a usage error.
        assert!(matches!(
            run_cli(&["perf-diff", old.to_str().unwrap()]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_submit_status_watch_over_tcp() {
        let dir = temp_dir("serve");
        let v1: Vec<f32> = (0..256).map(|i| (i as f32) * 0.01).collect();
        let mut v2 = v1.clone();
        v2[100] += 0.5;
        write_raw_f32(&dir.join("v1.bin"), &v1);
        write_raw_f32(&dir.join("v2.bin"), &v2);

        // Terminal 1: the daemon, on an OS-assigned port published
        // through --addr-file.
        let store = dir.join("store");
        let addr_file = dir.join("addr");
        let serve_args: Vec<String> = [
            "serve",
            "--store",
            store.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let daemon = std::thread::spawn(move || crate::run(&serve_args));
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if !text.is_empty() {
                    break text;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        // Terminal 2: ingest both versions, compare them, inspect.
        for (file, version) in [("v1.bin", "1"), ("v2.bin", "2")] {
            let out = run_cli(&[
                "submit",
                "--addr",
                &addr,
                "--input",
                dir.join(file).to_str().unwrap(),
                "--name",
                "run",
                "--version",
                version,
                "--chunk-bytes",
                "256",
            ])
            .unwrap();
            assert!(out.contains("done"), "{out}");
            assert!(out.contains("chunks_stored"), "{out}");
        }
        let compared = run_cli(&[
            "submit", "--addr", &addr, "--run1", "run@1", "--run2", "run@2",
        ])
        .unwrap();
        assert!(compared.contains("job 3: done"), "{compared}");
        assert!(compared.contains("differences"), "{compared}");

        let status = run_cli(&["status", "--addr", &addr, "--job", "3", "--wait"]).unwrap();
        assert!(status.contains("job 3: done"), "{status}");

        let watched = run_cli(&["watch", "--addr", &addr, "--job", "3"]).unwrap();
        assert!(watched.contains("events emitted"), "{watched}");

        // --no-wait answers with the accepted id alone.
        let nowait = run_cli(&[
            "submit",
            "--addr",
            &addr,
            "--materialize",
            "run@1",
            "--no-wait",
        ])
        .unwrap();
        assert!(nowait.contains("job 4 accepted"), "{nowait}");

        // Bad shapes are usage errors, not hangs.
        assert!(matches!(
            run_cli(&["submit", "--addr", &addr]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli(&["status", "--addr", &addr]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli(&["submit", "--addr", &addr, "--run1", "bare", "--run2", "run@2"]),
            Err(CliError::Usage(_))
        ));

        // Stop the daemon; serve drains and returns.
        let mut session =
            reprocmp_server::ServerClient::connect(addr.parse().unwrap(), "cli").unwrap();
        session.shutdown_server().unwrap();
        drop(session);
        let out = daemon.join().unwrap().unwrap();
        assert!(out.contains("server stopped"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
