use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match reprocmp_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
