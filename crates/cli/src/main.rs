use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match reprocmp_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        // Exit codes are part of the CLI contract (CI scripts branch on
        // them): 2 = bad invocation, 1 = the command ran and failed
        // (regression, corruption, strict-mode degradation).
        Err(e @ reprocmp_cli::CliError::Usage(_)) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
