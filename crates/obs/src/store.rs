//! Read accounting for the persistent capture store.
//!
//! A store-backed checkpoint source resolves stage-2 scattered reads
//! through the pack index: every byte the engine asks for maps to a
//! chunk that lives exactly once in a packfile, even when the same
//! chunk is referenced by many checkpoints. [`StoreReadStats`] is the
//! ledger of that resolution — how many positioned reads the store
//! served, how many bytes they moved, and how many of those bytes came
//! from *shared* chunks (refcount > 1), i.e. bytes that exist on disk
//! once but would have been duplicated N times under raw-file capture.
//!
//! The live side is [`StoreReadCounters`]: cheap `Arc`-atomic handles
//! a store-backed storage object bumps on every read. The engine
//! snapshots the counters around a comparison and reports the delta,
//! so concurrent users of the same store don't bleed into each other's
//! reports.

use crate::metrics::Counter;
use serde::Serialize;

/// Read-side ledger of one comparison against store-backed sources
/// (all-zero for file- and memory-backed sources, which never touch a
/// pack index).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StoreReadStats {
    /// Positioned reads served by resolving chunk ranges through the
    /// pack index.
    pub chunk_reads: u64,
    /// Total bytes those reads returned.
    pub bytes_read: u64,
    /// The subset of `bytes_read` served from shared chunks
    /// (refcount > 1 at open time) — bytes deduplicated on disk.
    pub bytes_deduped: u64,
}

impl StoreReadStats {
    /// Component-wise sum, for aggregating both sides of a comparison
    /// or the jobs of a batch.
    #[must_use]
    pub fn merged(self, other: StoreReadStats) -> StoreReadStats {
        StoreReadStats {
            chunk_reads: self.chunk_reads + other.chunk_reads,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_deduped: self.bytes_deduped + other.bytes_deduped,
        }
    }

    /// What this snapshot added on top of `earlier` (saturating, so a
    /// stale `earlier` from another counter clamps to zero instead of
    /// wrapping).
    #[must_use]
    pub fn delta_since(self, earlier: StoreReadStats) -> StoreReadStats {
        StoreReadStats {
            chunk_reads: self.chunk_reads.saturating_sub(earlier.chunk_reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_deduped: self.bytes_deduped.saturating_sub(earlier.bytes_deduped),
        }
    }

    /// True when no store was consulted at all — the state every file-
    /// or memory-backed report carries.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == StoreReadStats::default()
    }
}

/// Live counters a store-backed storage object bumps on every read.
/// Cheap to clone; clones share the same atomics.
#[derive(Debug, Clone, Default)]
pub struct StoreReadCounters {
    chunk_reads: Counter,
    bytes_read: Counter,
    bytes_deduped: Counter,
}

impl StoreReadCounters {
    /// Fresh counters at zero.
    #[must_use]
    pub fn new() -> Self {
        StoreReadCounters::default()
    }

    /// Records one positioned read of `bytes` total bytes, of which
    /// `deduped` came from shared chunks.
    pub fn record_read(&self, bytes: u64, deduped: u64) {
        self.chunk_reads.inc();
        self.bytes_read.add(bytes);
        self.bytes_deduped.add(deduped);
    }

    /// Current values as a serializable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StoreReadStats {
        StoreReadStats {
            chunk_reads: self.chunk_reads.get(),
            bytes_read: self.bytes_read.get(),
            bytes_deduped: self.bytes_deduped.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_merge_is_component_wise() {
        assert!(StoreReadStats::default().is_zero());
        let a = StoreReadStats {
            chunk_reads: 1,
            bytes_read: 100,
            bytes_deduped: 40,
        };
        let m = a.merged(a);
        assert_eq!(m.chunk_reads, 2);
        assert_eq!(m.bytes_read, 200);
        assert_eq!(m.bytes_deduped, 80);
        assert!(!m.is_zero());
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let early = StoreReadStats {
            chunk_reads: 2,
            bytes_read: 50,
            bytes_deduped: 10,
        };
        let late = StoreReadStats {
            chunk_reads: 5,
            bytes_read: 80,
            bytes_deduped: 10,
        };
        let d = late.delta_since(early);
        assert_eq!(d.chunk_reads, 3);
        assert_eq!(d.bytes_read, 30);
        assert_eq!(d.bytes_deduped, 0);
        // Mismatched snapshots clamp instead of wrapping.
        assert_eq!(early.delta_since(late).bytes_read, 0);
    }

    #[test]
    fn counters_record_and_clones_share() {
        let c = StoreReadCounters::new();
        let clone = c.clone();
        clone.record_read(4096, 1024);
        clone.record_read(512, 0);
        let snap = c.snapshot();
        assert_eq!(snap.chunk_reads, 2);
        assert_eq!(snap.bytes_read, 4608);
        assert_eq!(snap.bytes_deduped, 1024);
    }

    #[test]
    fn serializes_with_named_fields() {
        use serde::{Serialize, Value};
        let Value::Object(fields) = StoreReadStats::default().to_value() else {
            panic!("store stats must serialize as an object");
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["chunk_reads", "bytes_read", "bytes_deduped"]);
    }
}
