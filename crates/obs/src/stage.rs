//! Per-stage cost profile of one capture-and-compare pass.
//!
//! The pipeline has six phases the paper's cost story cares about:
//! three on the *capture* side (quantize, leaf-hash, level-build — the
//! Merkle-tree construction of Figure 8) and three on the *compare*
//! side (the pruning BFS of stage 1, the stage-2 re-read stream, and
//! the element-wise verify). [`StageBreakdown`] attributes time, bytes
//! moved, and operation counts to each; the engine emits it inside
//! `CompareReport::stages` and the CLI renders it under `--profile`.
//! A seventh, *overlapping* phase (`store_read`) accounts for the part
//! of the stage-2 stream served by the persistent capture store — its
//! time is always zero so the six exclusive phases still partition the
//! pass.
//!
//! Times here are *deterministic* under simulation: capture phases are
//! measured off the device's modeled-time accumulator and compare
//! phases off `SimClock` phase boundaries, both of which are sums of
//! per-kernel charges and therefore independent of thread interleaving.
//! Per-operation latencies are **not** deterministic and never appear
//! here — they go to registry histograms instead.

use serde::Serialize;
use std::time::Duration;

/// Cost of one phase: time spent, payload bytes moved, operations run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PhaseCost {
    /// Time attributed to the phase.
    pub time: Duration,
    /// Payload bytes the phase moved (read, hashed, or written).
    pub bytes: u64,
    /// Operations (kernel launches, I/O ops, or values — see the
    /// phase's documentation in DESIGN.md).
    pub ops: u64,
}

impl PhaseCost {
    /// A cost with all fields set.
    #[must_use]
    pub fn new(time: Duration, bytes: u64, ops: u64) -> Self {
        PhaseCost { time, bytes, ops }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: PhaseCost) -> PhaseCost {
        PhaseCost {
            time: self.time + other.time,
            bytes: self.bytes + other.bytes,
            ops: self.ops + other.ops,
        }
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == PhaseCost::default()
    }
}

/// Per-stage profile of a capture-and-compare pass (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageBreakdown {
    /// Capture: quantizing floats onto the ε-grid.
    pub quantize: PhaseCost,
    /// Capture: block-chained hashing of quantized chunks (leaves).
    pub leaf_hash: PhaseCost,
    /// Capture: building interior Merkle levels bottom-up.
    pub level_build: PhaseCost,
    /// Compare stage 1: the pruning breadth-first tree walk.
    pub bfs: PhaseCost,
    /// Compare stage 2: streaming flagged chunks back from storage.
    pub stage2_stream: PhaseCost,
    /// Compare stage 2: element-wise verification of streamed chunks.
    pub verify: PhaseCost,
    /// Compare stage 2: reads resolved through the persistent capture
    /// store's pack index. This traffic happens *inside* the stream
    /// phase, so its `time` is always zero (it would double-count
    /// `stage2_stream`); `bytes`/`ops` say how much of the stream was
    /// served by packfiles rather than plain files.
    pub store_read: PhaseCost,
    /// Capture side, *informational* like `store_read`: work the
    /// compared objects' differential capture avoided. `bytes` is the
    /// total bytes skipped (borrowed from parent chains) and `ops` the
    /// skipped chunk references, summed over both sides; `time` is
    /// always zero — the savings happened at flush time, not during
    /// this pass — so the six exclusive phases still partition.
    pub delta_capture: PhaseCost,
}

impl StageBreakdown {
    /// The phases in pipeline order, with their canonical names.
    #[must_use]
    pub fn phases(&self) -> [(&'static str, PhaseCost); 8] {
        [
            ("quantize", self.quantize),
            ("leaf_hash", self.leaf_hash),
            ("level_build", self.level_build),
            ("bfs", self.bfs),
            ("stage2_stream", self.stage2_stream),
            ("verify", self.verify),
            ("store_read", self.store_read),
            ("delta_capture", self.delta_capture),
        ]
    }

    /// Total time across the six *exclusive* phases. `store_read`
    /// overlaps `stage2_stream` (see its field docs) and is excluded so
    /// totals never double-count.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.capture_time() + self.compare_time()
    }

    /// Total bytes moved across the six exclusive phases (`store_read`
    /// excluded; see [`StageBreakdown::total_time`]).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.quantize.bytes
            + self.leaf_hash.bytes
            + self.level_build.bytes
            + self.bfs.bytes
            + self.stage2_stream.bytes
            + self.verify.bytes
    }

    /// Time in the capture phases (tree construction).
    #[must_use]
    pub fn capture_time(&self) -> Duration {
        self.quantize.time + self.leaf_hash.time + self.level_build.time
    }

    /// Time in the compare phases (BFS + stream + verify).
    #[must_use]
    pub fn compare_time(&self) -> Duration {
        self.bfs.time + self.stage2_stream.time + self.verify.time
    }

    /// Component-wise sum (e.g. merging both runs' capture profiles).
    #[must_use]
    pub fn merged(self, other: StageBreakdown) -> StageBreakdown {
        StageBreakdown {
            quantize: self.quantize.merged(other.quantize),
            leaf_hash: self.leaf_hash.merged(other.leaf_hash),
            level_build: self.level_build.merged(other.level_build),
            bfs: self.bfs.merged(other.bfs),
            stage2_stream: self.stage2_stream.merged(other.stage2_stream),
            verify: self.verify.merged(other.verify),
            store_read: self.store_read.merged(other.store_read),
            delta_capture: self.delta_capture.merged(other.delta_capture),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(ms: u64, bytes: u64, ops: u64) -> PhaseCost {
        PhaseCost::new(Duration::from_millis(ms), bytes, ops)
    }

    #[test]
    fn phase_cost_merges_component_wise() {
        let merged = cost(5, 100, 2).merged(cost(7, 50, 3));
        assert_eq!(merged, cost(12, 150, 5));
    }

    #[test]
    fn default_is_zero() {
        assert!(PhaseCost::default().is_zero());
        assert!(!cost(1, 0, 0).is_zero());
        assert_eq!(StageBreakdown::default().total_time(), Duration::ZERO);
    }

    #[test]
    fn totals_cover_the_six_exclusive_phases() {
        let b = StageBreakdown {
            quantize: cost(1, 10, 1),
            leaf_hash: cost(2, 20, 1),
            level_build: cost(3, 30, 1),
            bfs: cost(4, 40, 1),
            stage2_stream: cost(5, 50, 1),
            verify: cost(6, 60, 1),
            // Overlap/informational phases: excluded from every total.
            store_read: PhaseCost::new(Duration::ZERO, 25, 3),
            delta_capture: PhaseCost::new(Duration::ZERO, 17, 2),
        };
        assert_eq!(b.total_time(), Duration::from_millis(21));
        assert_eq!(b.total_bytes(), 210);
        assert_eq!(b.capture_time(), Duration::from_millis(6));
        assert_eq!(b.compare_time(), Duration::from_millis(15));
        assert_eq!(b.capture_time() + b.compare_time(), b.total_time());
        assert_eq!(b.phases().len(), 8);
        assert_eq!(b.phases()[0].0, "quantize");
        assert_eq!(b.phases()[6].0, "store_read");
        assert_eq!(b.phases()[7].0, "delta_capture");
    }

    #[test]
    fn breakdown_merge_is_per_phase() {
        let a = StageBreakdown {
            quantize: cost(1, 8, 1),
            ..StageBreakdown::default()
        };
        let b = StageBreakdown {
            quantize: cost(2, 8, 1),
            verify: cost(3, 4, 1),
            ..StageBreakdown::default()
        };
        let m = a.merged(b);
        assert_eq!(m.quantize, cost(3, 16, 2));
        assert_eq!(m.verify, cost(3, 4, 1));
        assert_eq!(m.bfs, PhaseCost::default());
    }

    #[test]
    fn serializes_with_named_phases() {
        use serde::{Serialize, Value};
        let b = StageBreakdown {
            bfs: cost(1, 32, 9),
            ..StageBreakdown::default()
        };
        let Value::Object(fields) = b.to_value() else {
            panic!("breakdown must serialize as an object");
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            [
                "quantize",
                "leaf_hash",
                "level_build",
                "bfs",
                "stage2_stream",
                "verify",
                "store_read",
                "delta_capture"
            ]
        );
    }
}
