//! Performance baselines and cross-run regression detection.
//!
//! A [`ProfileBaseline`] is the committable form of one run's
//! performance: its [`StageBreakdown`] plus the p50/p95/p99 of selected
//! registry histograms. [`diff_profiles`] compares two baselines under
//! a relative budget (e.g. `0.10` = +10 %) and reports every metric
//! that regressed past it — the engine behind `reprocmp perf-diff` and
//! the CI gate's profile check.
//!
//! The vendored serde is serialize-only, so [`ProfileBaseline::parse`]
//! is a small hand-written JSON parser. It accepts three shapes:
//!
//! 1. a full `ProfileBaseline` object (`{"stages": …, "histograms": …}`),
//! 2. a full `CompareReport` (anything with a `"stages"` key), and
//! 3. a bare serialized `StageBreakdown` (`{"quantize": …, …}`),
//!
//! so committed baselines from any era — including the pre-flight-
//! recorder `ci_baseline_breakdown.json` — keep parsing. Phases the
//! file predates (e.g. `store_read`) default to zero.

use crate::metrics::{HistogramBucket, MetricValue, RegistrySnapshot};
use crate::stage::{PhaseCost, StageBreakdown};
use serde::Serialize;
use std::time::Duration;

/// The committed quantiles of one histogram, plus (since the telemetry
/// plane) its sum and raw log2 bucket array so downstream renderers —
/// Prometheus exposition, `top` sparklines — need no side channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramQuantiles {
    /// Histogram name (registry key).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Sum of observations (zero in pre-telemetry files).
    pub sum: u64,
    /// Non-empty log2 buckets, ascending (empty in pre-telemetry
    /// files).
    pub buckets: Vec<HistogramBucket>,
}

/// A committable performance profile: stage breakdown + histogram
/// quantiles + gauge values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct ProfileBaseline {
    /// Per-phase time/bytes/ops.
    pub stages: StageBreakdown,
    /// Quantiles of selected histograms, sorted by name.
    pub histograms: Vec<HistogramQuantiles>,
    /// Gauge values, sorted by name (empty in pre-telemetry files).
    pub gauges: Vec<MetricValue>,
}

impl ProfileBaseline {
    /// A baseline with stages only.
    #[must_use]
    pub fn new(stages: StageBreakdown) -> Self {
        ProfileBaseline {
            stages,
            histograms: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// A baseline carrying every histogram and gauge in `registry`.
    #[must_use]
    pub fn from_registry(stages: StageBreakdown, registry: &RegistrySnapshot) -> Self {
        let histograms = registry
            .histograms
            .iter()
            .map(|h| HistogramQuantiles {
                name: h.name.clone(),
                count: h.histogram.count,
                p50: h.histogram.p50,
                p95: h.histogram.p95,
                p99: h.histogram.p99,
                sum: h.histogram.sum,
                buckets: h.histogram.buckets.clone(),
            })
            .collect();
        ProfileBaseline {
            stages,
            histograms,
            gauges: registry.gauges.clone(),
        }
    }

    /// Pretty JSON, newline-terminated (the committed-file format).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }

    /// Parses a baseline from JSON (see module docs for the accepted
    /// shapes).
    ///
    /// # Errors
    ///
    /// A description of the first syntax or shape problem found.
    pub fn parse(text: &str) -> Result<ProfileBaseline, String> {
        let value = Parser::new(text).parse()?;
        let root = value.as_object().ok_or("top level must be an object")?;
        // Shape 1/2: {"stages": {...}} — a baseline or a CompareReport.
        // Shape 3: a bare StageBreakdown.
        let stages_obj = match find(root, "stages") {
            Some(v) => v.as_object().ok_or("\"stages\" must be an object")?,
            None => root,
        };
        let mut stages = StageBreakdown::default();
        for name in [
            "quantize",
            "leaf_hash",
            "level_build",
            "bfs",
            "stage2_stream",
            "verify",
            "store_read",
            "delta_capture",
        ] {
            let Some(phase) = find(stages_obj, name) else {
                continue; // older schema: phase defaults to zero
            };
            let phase = phase
                .as_object()
                .ok_or_else(|| format!("phase {name:?} must be an object"))?;
            let cost = parse_phase(phase).map_err(|e| format!("phase {name:?}: {e}"))?;
            match name {
                "quantize" => stages.quantize = cost,
                "leaf_hash" => stages.leaf_hash = cost,
                "level_build" => stages.level_build = cost,
                "bfs" => stages.bfs = cost,
                "stage2_stream" => stages.stage2_stream = cost,
                "verify" => stages.verify = cost,
                "store_read" => stages.store_read = cost,
                _ => stages.delta_capture = cost,
            }
        }
        let mut histograms = Vec::new();
        if let Some(Json::Arr(items)) = find(root, "histograms") {
            for item in items {
                let obj = item
                    .as_object()
                    .ok_or("histogram entries must be objects")?;
                // `sum` and `buckets` arrived with the telemetry plane;
                // pre-telemetry files simply lack them.
                let mut buckets = Vec::new();
                if let Some(Json::Arr(raw)) = find(obj, "buckets") {
                    for b in raw {
                        let b = b.as_object().ok_or("buckets must hold objects")?;
                        buckets.push(HistogramBucket {
                            low: get_u64(b, "low")?,
                            high: get_u64(b, "high")?,
                            count: get_u64(b, "count")?,
                        });
                    }
                }
                histograms.push(HistogramQuantiles {
                    name: find(obj, "name")
                        .and_then(Json::as_str)
                        .ok_or("histogram entry missing \"name\"")?
                        .to_owned(),
                    count: get_u64(obj, "count")?,
                    p50: get_u64(obj, "p50")?,
                    p95: get_u64(obj, "p95")?,
                    p99: get_u64(obj, "p99")?,
                    sum: get_u64_or(obj, "sum", 0)?,
                    buckets,
                });
            }
        }
        let mut gauges = Vec::new();
        if let Some(Json::Arr(items)) = find(root, "gauges") {
            for item in items {
                let obj = item.as_object().ok_or("gauge entries must be objects")?;
                gauges.push(MetricValue {
                    name: find(obj, "name")
                        .and_then(Json::as_str)
                        .ok_or("gauge entry missing \"name\"")?
                        .to_owned(),
                    value: get_i64(obj, "value")?,
                });
            }
        }
        Ok(ProfileBaseline {
            stages,
            histograms,
            gauges,
        })
    }
}

/// One metric that moved past the budget.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Regression {
    /// Metric path, e.g. `stage2_stream.bytes` or `io.read_bytes.p99`.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
}

impl Regression {
    /// `new / old` (infinite when the baseline was zero).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            f64::INFINITY
        } else {
            self.new / self.old
        }
    }
}

/// The outcome of [`diff_profiles`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileDiff {
    /// Relative budget the diff ran under (0.10 = +10 %).
    pub budget: f64,
    /// Metric comparisons performed.
    pub checks: u64,
    /// Every metric past the budget, in breakdown order.
    pub regressions: Vec<Regression>,
}

impl ProfileDiff {
    /// True when nothing regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A human-readable verdict table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.passed() {
            let _ = writeln!(
                s,
                "PASS — {} metrics within +{:.1}% of baseline",
                self.checks,
                self.budget * 100.0
            );
        } else {
            let _ = writeln!(
                s,
                "FAIL — {} of {} metrics regressed past +{:.1}%:",
                self.regressions.len(),
                self.checks,
                self.budget * 100.0
            );
            for r in &self.regressions {
                let _ = writeln!(
                    s,
                    "  {:<28} {:>14.0} -> {:>14.0}  ({}x)",
                    r.metric,
                    r.old,
                    r.new,
                    if r.ratio().is_finite() {
                        format!("{:.2}", r.ratio())
                    } else {
                        "inf".to_owned()
                    }
                );
            }
        }
        s
    }
}

/// Parses a budget argument: `"10%"` → `0.10`, `"0.1"` → `0.1`.
///
/// # Errors
///
/// Non-numeric or negative input.
pub fn parse_budget(s: &str) -> Result<f64, String> {
    let (num, scale) = match s.strip_suffix('%') {
        Some(pct) => (pct, 0.01),
        None => (s, 1.0),
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid budget {s:?} (want e.g. \"10%\" or \"0.1\")"))?;
    if !(0.0..=100.0).contains(&v) {
        return Err(format!("budget {s:?} out of range"));
    }
    Ok(v * scale)
}

fn check(
    regressions: &mut Vec<Regression>,
    checks: &mut u64,
    metric: String,
    old: f64,
    new: f64,
    budget: f64,
    flag_from_zero: bool,
) {
    *checks += 1;
    let over = if old == 0.0 {
        flag_from_zero && new > 0.0
    } else {
        new > old * (1.0 + budget)
    };
    if over {
        regressions.push(Regression { metric, old, new });
    }
}

/// Compares `new` against `old` under a relative `budget` and reports
/// every regressed metric.
///
/// Per phase, `time`/`bytes`/`ops` fail when `new > old·(1+budget)`.
/// `bytes`/`ops` additionally fail when a phase that was silent in the
/// baseline starts moving data; `time` does not (a zero-time baseline
/// phase usually means "not modeled here", and any wall-time jitter
/// would fire it spuriously). Histogram quantiles are compared by name
/// for names present in both profiles.
#[must_use]
pub fn diff_profiles(old: &ProfileBaseline, new: &ProfileBaseline, budget: f64) -> ProfileDiff {
    let mut regressions = Vec::new();
    let mut checks = 0u64;
    let new_phases = new.stages.phases();
    for (i, (name, o)) in old.stages.phases().iter().enumerate() {
        let n = new_phases[i].1;
        check(
            &mut regressions,
            &mut checks,
            format!("{name}.time_ns"),
            duration_f64(o.time),
            duration_f64(n.time),
            budget,
            false,
        );
        check(
            &mut regressions,
            &mut checks,
            format!("{name}.bytes"),
            o.bytes as f64,
            n.bytes as f64,
            budget,
            true,
        );
        check(
            &mut regressions,
            &mut checks,
            format!("{name}.ops"),
            o.ops as f64,
            n.ops as f64,
            budget,
            true,
        );
    }
    for o in &old.histograms {
        let Some(n) = new.histograms.iter().find(|h| h.name == o.name) else {
            continue;
        };
        for (q, ov, nv) in [
            ("p50", o.p50, n.p50),
            ("p95", o.p95, n.p95),
            ("p99", o.p99, n.p99),
        ] {
            check(
                &mut regressions,
                &mut checks,
                format!("{}.{q}", o.name),
                ov as f64,
                nv as f64,
                budget,
                false,
            );
        }
    }
    ProfileDiff {
        budget,
        checks,
        regressions,
    }
}

fn duration_f64(d: Duration) -> f64 {
    d.as_nanos() as f64
}

// ---------------------------------------------------------------------
// Minimal JSON parser (the vendored serde is serialize-only).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    find(obj, key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn get_u64_or(obj: &[(String, Json)], key: &str, default: u64) -> Result<u64, String> {
    match find(obj, key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .map(|v| v as u64)
            .ok_or_else(|| format!("field {key:?} must be numeric")),
    }
}

#[allow(clippy::cast_possible_truncation)]
fn get_i64(obj: &[(String, Json)], key: &str) -> Result<i64, String> {
    find(obj, key)
        .and_then(Json::as_f64)
        .map(|v| v as i64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn parse_phase(obj: &[(String, Json)]) -> Result<PhaseCost, String> {
    let time = find(obj, "time")
        .and_then(Json::as_object)
        .ok_or("missing \"time\" object")?;
    let secs = get_u64(time, "secs")?;
    let nanos = get_u64(time, "nanos")?;
    Ok(PhaseCost {
        time: Duration::new(
            secs,
            u32::try_from(nanos).map_err(|_| "nanos out of range")?,
        ),
        bytes: get_u64(obj, "bytes")?,
        ops: get_u64(obj, "ops")?,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(&b) if b < 0x80 => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unexpected end of string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(ns: u64, bytes: u64, ops: u64) -> PhaseCost {
        PhaseCost::new(Duration::from_nanos(ns), bytes, ops)
    }

    fn sample() -> ProfileBaseline {
        ProfileBaseline {
            stages: StageBreakdown {
                quantize: cost(100, 1000, 10),
                leaf_hash: cost(200, 1000, 10),
                level_build: cost(50, 0, 5),
                bfs: cost(300, 64, 32),
                stage2_stream: cost(400, 8192, 16),
                verify: cost(150, 8192, 2048),
                store_read: cost(0, 4096, 8),
                delta_capture: cost(0, 2048, 4),
            },
            histograms: vec![HistogramQuantiles {
                name: "io.read_bytes".into(),
                count: 16,
                p50: 512,
                p95: 512,
                p99: 512,
                sum: 8192,
                buckets: vec![HistogramBucket {
                    low: 512,
                    high: 1023,
                    count: 16,
                }],
            }],
            gauges: vec![MetricValue {
                name: "queue.depth".into(),
                value: -3,
            }],
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = sample();
        let parsed = ProfileBaseline::parse(&b.to_json()).expect("parse own output");
        assert_eq!(parsed, b);
    }

    #[test]
    fn bare_breakdown_json_parses_with_missing_phases_zero() {
        let mut stages = sample().stages;
        stages.store_read = PhaseCost::default();
        stages.delta_capture = PhaseCost::default();
        let json = serde_json::to_string_pretty(&stages).unwrap();
        // Strip everything from the store_read key on (store_read and
        // delta_capture) to mimic a pre-flight-recorder file.
        let legacy = {
            let cut = json
                .find(",\n  \"store_read\"")
                .expect("store_read present");
            format!("{}\n}}", &json[..cut])
        };
        let parsed = ProfileBaseline::parse(&legacy).expect("legacy breakdown parses");
        assert_eq!(parsed.stages, stages);
        assert!(parsed.histograms.is_empty());
    }

    #[test]
    fn pre_telemetry_files_parse_with_new_fields_defaulted() {
        // A baseline written before the telemetry plane: histogram
        // entries carry only name/count/quantiles, and there is no
        // top-level "gauges" array.
        let legacy = r#"{
  "stages": {},
  "histograms": [
    {"name": "io.read_bytes", "count": 16, "p50": 512, "p95": 512, "p99": 512}
  ]
}"#;
        let parsed = ProfileBaseline::parse(legacy).expect("legacy baseline parses");
        assert_eq!(parsed.histograms.len(), 1);
        assert_eq!(parsed.histograms[0].sum, 0);
        assert!(parsed.histograms[0].buckets.is_empty());
        assert!(parsed.gauges.is_empty());
    }

    #[test]
    fn baseline_vs_itself_always_passes() {
        let b = sample();
        let diff = diff_profiles(&b, &b, 0.0);
        assert!(diff.passed(), "{}", diff.render());
        assert!(diff.checks >= 21 + 3);
    }

    #[test]
    fn inflated_phase_fails_and_names_the_metric() {
        let old = sample();
        let mut new = sample();
        new.stages.stage2_stream.bytes *= 2;
        let diff = diff_profiles(&old, &new, 0.10);
        assert!(!diff.passed());
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].metric, "stage2_stream.bytes");
        assert!(diff.render().contains("stage2_stream.bytes"));
    }

    #[test]
    fn within_budget_growth_passes() {
        let old = sample();
        let mut new = sample();
        new.stages.verify.ops = 2150; // +5% on 2048
        assert!(diff_profiles(&old, &new, 0.10).passed());
        assert!(!diff_profiles(&old, &new, 0.01).passed());
    }

    #[test]
    fn silent_phase_starting_to_move_bytes_is_flagged() {
        let mut old = sample();
        old.stages.store_read = PhaseCost::default();
        let new = sample(); // store_read now moves 4096 bytes
        let diff = diff_profiles(&old, &new, 0.10);
        let metrics: Vec<&str> = diff.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(metrics, ["store_read.bytes", "store_read.ops"]);
        assert!(diff.regressions[0].ratio().is_infinite());
    }

    #[test]
    fn histogram_quantile_regressions_are_detected() {
        let old = sample();
        let mut new = sample();
        new.histograms[0].p99 = 4096;
        let diff = diff_profiles(&old, &new, 0.10);
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].metric, "io.read_bytes.p99");
    }

    #[test]
    fn budget_parses_percent_and_fraction() {
        assert_eq!(parse_budget("10%").unwrap(), 0.10);
        assert!((parse_budget("2.5%").unwrap() - 0.025).abs() < 1e-12);
        assert_eq!(parse_budget("0.1").unwrap(), 0.1);
        assert!(parse_budget("oops").is_err());
        assert!(parse_budget("-1").is_err());
    }

    #[test]
    fn parser_handles_escapes_arrays_and_nesting() {
        let v = Parser::new(r#"{"a\n":[1,2.5,-3,true,false,null,"xA"]}"#)
            .parse()
            .unwrap();
        let Json::Obj(fields) = v else { panic!() };
        assert_eq!(fields[0].0, "a\n");
        let Json::Arr(items) = &fields[0].1 else {
            panic!()
        };
        assert_eq!(items.len(), 7);
        assert_eq!(items[6], Json::Str("xA".into()));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(ProfileBaseline::parse("{} extra").is_err());
        assert!(ProfileBaseline::parse("[1,2]").is_err());
    }
}
