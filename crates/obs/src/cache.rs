//! Cache accounting for the multi-run comparison scheduler.
//!
//! The batch scheduler in `reprocmp-core` memoizes two things across
//! the jobs of a batch: stage-1 subtree adjudications keyed by
//! `(digest_a, digest_b, height)` and stage-2 chunk verdicts keyed by
//! the raw-content digests of the two chunks. [`CacheStats`] is the
//! ledger of that reuse — how many lookups hit, how many missed, and
//! what the hits saved in node visits and re-read bytes.
//!
//! The counters obey exact partition invariants the test suite checks:
//!
//! * `node_hits + node_misses` equals the number of mismatching
//!   frontier pairs referenced across the batch;
//! * per job, `nodes visited with the cache + nodes_saved` equals the
//!   nodes the same job visits with the cache disabled;
//! * `verdict_hits + verdict_misses` equals the number of flagged
//!   chunks that carried raw digests, and per job `bytes_reread +
//!   bytes_saved` equals the bytes the same job re-reads with the
//!   cache disabled.

use serde::Serialize;

/// Hit/miss/short-circuit accounting for one comparison (or, summed,
/// for a whole batch). All-zero for plain pairwise comparisons, which
/// never consult a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Stage-1 subtree lookups answered from the cache.
    pub node_hits: u64,
    /// Stage-1 subtree lookups that had to be resolved by walking.
    pub node_misses: u64,
    /// Stage-2 chunk-verdict lookups answered from the cache.
    pub verdict_hits: u64,
    /// Stage-2 chunk-verdict lookups that had to re-read and verify.
    pub verdict_misses: u64,
    /// Jobs whose entire stage-1 mismatch set came from the cache
    /// (every mismatching frontier pair was a hit).
    pub short_circuits: u64,
    /// Node-pair visits avoided by stage-1 hits.
    pub nodes_saved: u64,
    /// Stage-2 payload bytes not re-read thanks to verdict hits, in
    /// the same per-run unit as `DataStats::bytes_reread` (one chunk
    /// length per skipped chunk).
    pub bytes_saved: u64,
}

impl CacheStats {
    /// Component-wise sum, for aggregating per-job ledgers into a
    /// batch total.
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            node_hits: self.node_hits + other.node_hits,
            node_misses: self.node_misses + other.node_misses,
            verdict_hits: self.verdict_hits + other.verdict_hits,
            verdict_misses: self.verdict_misses + other.verdict_misses,
            short_circuits: self.short_circuits + other.short_circuits,
            nodes_saved: self.nodes_saved + other.nodes_saved,
            bytes_saved: self.bytes_saved + other.bytes_saved,
        }
    }

    /// Total stage-1 subtree lookups (hits + misses).
    #[must_use]
    pub fn node_lookups(&self) -> u64 {
        self.node_hits + self.node_misses
    }

    /// Total stage-2 verdict lookups (hits + misses).
    #[must_use]
    pub fn verdict_lookups(&self) -> u64 {
        self.verdict_hits + self.verdict_misses
    }

    /// True when no cache was consulted at all — the state every plain
    /// pairwise report carries.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == CacheStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_merge_is_component_wise() {
        assert!(CacheStats::default().is_zero());
        let a = CacheStats {
            node_hits: 1,
            node_misses: 2,
            verdict_hits: 3,
            verdict_misses: 4,
            short_circuits: 5,
            nodes_saved: 6,
            bytes_saved: 7,
        };
        let m = a.merged(a);
        assert_eq!(m.node_hits, 2);
        assert_eq!(m.bytes_saved, 14);
        assert_eq!(m.node_lookups(), 6);
        assert_eq!(m.verdict_lookups(), 14);
        assert!(!m.is_zero());
    }

    #[test]
    fn serializes_with_named_fields() {
        use serde::{Serialize, Value};
        let Value::Object(fields) = CacheStats::default().to_value() else {
            panic!("cache stats must serialize as an object");
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            [
                "node_hits",
                "node_misses",
                "verdict_hits",
                "verdict_misses",
                "short_circuits",
                "nodes_saved",
                "bytes_saved"
            ]
        );
    }
}
