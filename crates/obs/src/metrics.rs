//! Typed metrics: counters, gauges, log2 histograms, and a registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s
//! over atomics — record paths never take a lock. The [`Registry`] maps
//! names to handles (get-or-create, so two callers asking for the same
//! name share one underlying metric) and snapshots everything into a
//! serializable [`RegistrySnapshot`].
//!
//! Histograms use fixed power-of-two buckets: bucket 0 holds the value
//! `0`, bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i)`. That gives a
//! dependency-free HdrHistogram stand-in with enough resolution for
//! chunk-read latencies (microseconds) and bytes-moved distributions
//! while keeping recording to one atomic increment.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: the zero bucket plus one per bit.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (detached from any registry).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero (detached from any registry).
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram with fixed log2 buckets (see module docs).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

/// Bucket index of `v`: 0 for 0, else `floor(log2 v) + 1`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// A fresh histogram (detached from any registry).
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// A serializable snapshot; only non-empty buckets are listed.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.inner.buckets.iter().enumerate() {
            let count = b.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let (low, high) = match i {
                0 => (0, 0),
                64 => (1u64 << 63, u64::MAX),
                _ => (1u64 << (i - 1), (1u64 << i) - 1),
            };
            buckets.push(HistogramBucket { low, high, count });
        }
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            p50: quantile_from_buckets(&buckets, count, 0.50),
            p95: quantile_from_buckets(&buckets, count, 0.95),
            p99: quantile_from_buckets(&buckets, count, 0.99),
            buckets,
        }
    }
}

/// Estimates the `q`-quantile (0 < q ≤ 1) of a bucketed distribution by
/// linear interpolation inside the bucket holding rank `ceil(q·count)`.
/// Exact to within one log2 bucket's width; zero for an empty histogram.
#[must_use]
pub fn quantile_from_buckets(buckets: &[HistogramBucket], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for b in buckets {
        if rank <= seen + b.count {
            // Spread the bucket's observations evenly over [low, high]:
            // the j-th of n (1-based) sits at low + span·j/n.
            let j = rank - seen;
            let span = b.high - b.low;
            let step = (u128::from(span) * u128::from(j) / u128::from(b.count)) as u64;
            return b.low + step;
        }
        seen += b.count;
    }
    buckets.last().map_or(0, |b| b.high)
}

/// One non-empty histogram bucket: observations in `[low, high]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound.
    pub low: u64,
    /// Inclusive upper bound.
    pub high: u64,
    /// Observations that fell in this bucket.
    pub count: u64,
}

/// Serializable state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Estimated median (see [`quantile_from_buckets`]).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named metrics registry; get-or-create semantics per name.
///
/// Cheap to clone; clones share the same metrics. Registration takes a
/// lock, but the returned handles record lock-free — grab handles once,
/// outside hot loops.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn get_or_create<T: Clone + Default>(map: &Mutex<BTreeMap<String, T>>, name: &str) -> T {
    map.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(name.to_owned())
        .or_default()
        .clone()
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        get_or_create(&self.inner.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_create(&self.inner.gauges, name)
    }

    /// The histogram named `name`, created empty on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_create(&self.inner.histograms, name)
    }

    /// Serializable snapshot of every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| MetricValue {
                name: k.clone(),
                value: v.get() as i64,
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| MetricValue {
                name: k.clone(),
                value: v.get(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| NamedHistogram {
                name: k.clone(),
                histogram: v.snapshot(),
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A named scalar metric value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MetricValue {
    /// Metric name.
    pub name: String,
    /// Value (counters widen into `i64`).
    pub value: i64,
}

/// A named histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NamedHistogram {
    /// Metric name.
    pub name: String,
    /// The histogram's state.
    pub histogram: HistogramSnapshot,
}

/// Serializable state of a whole registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegistrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<MetricValue>,
    /// All gauges, sorted by name.
    pub gauges: Vec<MetricValue>,
    /// All histograms, sorted by name.
    pub histograms: Vec<NamedHistogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = Registry::new();
        reg.counter("io.submitted").add(5);
        reg.counter("io.submitted").inc();
        assert_eq!(reg.counter("io.submitted").get(), 6);
        assert_eq!(reg.counter("io.other").get(), 0);
    }

    #[test]
    fn gauges_set_and_add() {
        let g = Registry::new().gauge("lanes");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn bucket_index_is_log2_shaped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_counts_sum_and_buckets_agree() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2034);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 7);
        // [2,4) holds 2 and 3.
        let b = snap.buckets.iter().find(|b| b.low == 2).unwrap();
        assert_eq!((b.high, b.count), (3, 2));
    }

    #[test]
    fn histogram_bucket_bounds_contain_their_values() {
        let h = Histogram::new();
        for v in [1u64, 5, 17, 300, 70_000, u64::MAX] {
            h.record(v);
        }
        for b in h.snapshot().buckets {
            assert!(b.low <= b.high);
        }
        // The max-value bucket tops out at u64::MAX, not wrap-around.
        let top = h.snapshot().buckets.last().unwrap().high;
        assert_eq!(top, u64::MAX);
    }

    #[test]
    fn quantiles_of_an_empty_histogram_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!((snap.p50, snap.p95, snap.p99), (0, 0, 0));
    }

    #[test]
    fn quantiles_of_a_point_mass_hit_the_point_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(512); // exact power of two: bucket [512, 1023]
        }
        let snap = h.snapshot();
        for q in [snap.p50, snap.p95, snap.p99] {
            assert!((512..=1023).contains(&q), "{q} outside the 512 bucket");
        }
        assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
    }

    #[test]
    fn quantiles_interpolate_across_buckets() {
        let h = Histogram::new();
        // 90 small observations, 10 large ones: p50 stays small, p95/p99
        // land in the large bucket.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let snap = h.snapshot();
        assert!(
            snap.p50 < 16,
            "median in the [8,15] bucket, got {}",
            snap.p50
        );
        assert!(
            snap.p95 >= 65_536,
            "p95 in the big bucket, got {}",
            snap.p95
        );
        assert!(snap.p99 >= snap.p95);
        assert!(snap.p99 <= 131_071, "p99 within the big bucket's bounds");
    }

    #[test]
    fn quantile_rank_edges_are_exact() {
        // One observation per value 1..=4 in distinct buckets 1,2,3,3.
        let buckets = vec![
            HistogramBucket {
                low: 1,
                high: 1,
                count: 1,
            },
            HistogramBucket {
                low: 2,
                high: 3,
                count: 2,
            },
            HistogramBucket {
                low: 4,
                high: 7,
                count: 1,
            },
        ];
        assert_eq!(quantile_from_buckets(&buckets, 4, 0.25), 1);
        assert_eq!(quantile_from_buckets(&buckets, 4, 1.0), 7);
        assert_eq!(quantile_from_buckets(&buckets, 0, 0.5), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("g").set(-4);
        reg.histogram("h").record(9);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.gauges[0].value, -4);
        assert_eq!(snap.histograms[0].histogram.count, 1);
    }

    #[test]
    fn handles_record_lock_free_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("hot").get(), 4000);
    }
}
