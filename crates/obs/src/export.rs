//! Flight-recorder exporters: Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) and folded-stack flamegraphs.
//!
//! The Chrome trace maps the journal's *lanes* to timeline threads:
//! tracer spans render as nested `X` (complete) events on the `main`
//! lane, interval events (chunk reads, slice fills, kernels) as `X`
//! events on their own lane — one per pipeline reader and per uring
//! worker, so the stage-2 I/O–compute overlap is visually inspectable —
//! and point events (retries, quarantines, cache hits) as `i`
//! instants. The journal's exact drop ledger is embedded under
//! `otherData`, so a truncated trace always says so.
//!
//! Everything is sorted by monotonic sequence number before export:
//! under a frozen or simulated clock many records share identical
//! timestamps, and `(start, seq)` ordering keeps the output
//! byte-deterministic.

use crate::journal::{Event, EventKind, JournalLedger};
use crate::span::SpanRecord;
use serde::Value;

/// The process id every lane renders under.
const PID: u64 = 1;

fn us(ns: u64) -> Value {
    // Trace-event timestamps are microseconds; keep nanosecond
    // resolution as fractional digits (sim clocks tick in ns).
    Value::Float(ns as f64 / 1000.0)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn category(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => "span",
        EventKind::CounterAdd { .. } => "counter",
        EventKind::IoSubmit { .. } | EventKind::ChunkRead { .. } | EventKind::SliceFill { .. } => {
            "io"
        }
        EventKind::Retry { .. } | EventKind::GaveUp { .. } | EventKind::Quarantine { .. } => {
            "fault"
        }
        EventKind::CacheHit { .. } | EventKind::CacheMiss { .. } => "cache",
        EventKind::StoreRead { .. }
        | EventKind::Repair { .. }
        | EventKind::PackQuarantine { .. }
        | EventKind::DeltaCapture { .. } => "store",
        EventKind::Kernel { .. } => "compute",
        EventKind::Flush { .. } => "veloc",
        EventKind::Divergence { .. } => "compare",
    }
}

/// Renders spans + journal events as a Chrome trace-event JSON string.
///
/// Lanes: `main` (tid 0) carries the span tree; every other lane name
/// seen in `events` gets its own tid (1.., sorted by name) and a
/// `thread_name` metadata record. `span_begin`/`span_end` journal
/// events are skipped — the span records already carry the same
/// intervals with exact durations.
#[must_use]
pub fn chrome_trace(spans: &[SpanRecord], events: &[Event], ledger: &JournalLedger) -> String {
    let mut lanes: Vec<&str> = events
        .iter()
        .filter(|e| {
            !matches!(
                e.kind,
                EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. }
            )
        })
        .map(|e| e.lane.as_str())
        .filter(|l| *l != "main")
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    let tid_of = |lane: &str| -> u64 {
        if lane == "main" {
            0
        } else {
            1 + lanes.iter().position(|l| *l == lane).unwrap_or(0) as u64
        }
    };

    let mut trace_events: Vec<Value> = Vec::new();
    trace_events.push(obj(vec![
        ("name", Value::String("process_name".into())),
        ("ph", Value::String("M".into())),
        ("pid", Value::UInt(PID)),
        ("tid", Value::UInt(0)),
        (
            "args",
            obj(vec![("name", Value::String("reprocmp".into()))]),
        ),
    ]));
    for lane in std::iter::once("main").chain(lanes.iter().copied()) {
        trace_events.push(obj(vec![
            ("name", Value::String("thread_name".into())),
            ("ph", Value::String("M".into())),
            ("pid", Value::UInt(PID)),
            ("tid", Value::UInt(tid_of(lane))),
            ("args", obj(vec![("name", Value::String(lane.into()))])),
        ]));
    }

    // Spans, in deterministic (start, seq) order.
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|r| (r.start, r.seq));
    for r in ordered {
        let start_ns = u64::try_from(r.start.as_nanos()).unwrap_or(u64::MAX);
        let dur_ns = u64::try_from(r.elapsed().as_nanos()).unwrap_or(u64::MAX);
        trace_events.push(obj(vec![
            ("name", Value::String(r.name.clone())),
            ("cat", Value::String("span".into())),
            ("ph", Value::String("X".into())),
            ("pid", Value::UInt(PID)),
            ("tid", Value::UInt(0)),
            ("ts", us(start_ns)),
            ("dur", us(dur_ns)),
            (
                "args",
                obj(vec![
                    ("seq", Value::UInt(r.seq)),
                    ("depth", Value::UInt(r.depth)),
                ]),
            ),
        ]));
    }

    // Journal events, already in seq order from `Journal::events`.
    for e in events {
        if matches!(
            e.kind,
            EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. }
        ) {
            continue;
        }
        let tid = tid_of(&e.lane);
        let mut args = vec![("seq".to_owned(), Value::UInt(e.seq))];
        args.extend(
            match e.kind.to_args() {
                Value::Object(fields) => fields,
                _ => Vec::new(),
            }
            .into_iter()
            .filter(|(k, _)| k != "latency_ns"),
        );
        let mut fields = vec![
            ("name", Value::String(e.kind.type_name().into())),
            ("cat", Value::String(category(&e.kind).into())),
        ];
        if let Some(latency_ns) = e.kind.latency_ns() {
            let start_ns = e.ts_ns().saturating_sub(latency_ns);
            fields.push(("ph", Value::String("X".into())));
            fields.push(("pid", Value::UInt(PID)));
            fields.push(("tid", Value::UInt(tid)));
            fields.push(("ts", us(start_ns)));
            fields.push(("dur", us(latency_ns)));
        } else {
            fields.push(("ph", Value::String("i".into())));
            fields.push(("s", Value::String("t".into())));
            fields.push(("pid", Value::UInt(PID)));
            fields.push(("tid", Value::UInt(tid)));
            fields.push(("ts", us(e.ts_ns())));
        }
        fields.push(("args", Value::Object(args)));
        trace_events.push(obj(fields));
    }

    let root = obj(vec![
        ("displayTimeUnit", Value::String("ms".into())),
        ("traceEvents", Value::Array(trace_events)),
        (
            "otherData",
            obj(vec![
                ("events_emitted", Value::UInt(ledger.events_emitted)),
                ("events_written", Value::UInt(ledger.events_written)),
                ("events_dropped", Value::UInt(ledger.events_dropped)),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&ShimValue(root)).unwrap_or_default()
}

// `Value` itself does not implement `Serialize`; a one-field shim does.
struct ShimValue(Value);
impl serde::Serialize for ShimValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Renders the span tree as folded stacks (`a;b;c self_ns` lines,
/// sorted), the input format of flamegraph tooling. Values are each
/// frame's *self* time in nanoseconds: elapsed minus the elapsed of its
/// direct children, floored at zero.
#[must_use]
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let mut child_time = vec![0u128; spans.len()];
    for r in spans {
        if let Some(p) = r.parent {
            if let Some(slot) = child_time.get_mut(p as usize) {
                *slot += r.elapsed().as_nanos();
            }
        }
    }
    let path_of = |mut i: usize| -> String {
        let mut parts = vec![spans[i].name.as_str()];
        while let Some(p) = spans[i].parent {
            i = p as usize;
            parts.push(spans[i].name.as_str());
        }
        parts.reverse();
        parts.join(";")
    };
    let mut folded: std::collections::BTreeMap<String, u128> = std::collections::BTreeMap::new();
    let mut ordered: Vec<usize> = (0..spans.len()).collect();
    ordered.sort_by_key(|&i| (spans[i].start, spans[i].seq));
    for i in ordered {
        let self_ns = spans[i].elapsed().as_nanos().saturating_sub(child_time[i]);
        *folded.entry(path_of(i)).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use crate::span::Tracer;
    use crate::ObsClock;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn manual_clock() -> (ObsClock, Arc<AtomicU64>) {
        let ns = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&ns);
        let clock = ObsClock::from_fn(move || Duration::from_nanos(src.load(Ordering::SeqCst)));
        (clock, ns)
    }

    #[test]
    fn chrome_trace_has_metadata_lanes_and_ledger() {
        let (clock, ns) = manual_clock();
        let journal = Journal::new(clock.clone());
        let tracer = Tracer::with_journal(clock, journal.clone());
        {
            let _root = tracer.span("compare");
            ns.store(5_000, Ordering::SeqCst);
        }
        journal.emit(
            "io.uring.w0",
            EventKind::ChunkRead {
                offset: 0,
                len: 4096,
                queue_depth: 64,
                latency_ns: 1_000,
            },
        );
        journal.emit(
            "io.uring.sq",
            EventKind::IoSubmit {
                ops: 3,
                bytes: 12_288,
                queue_depth: 64,
            },
        );
        let trace = chrome_trace(&tracer.records(), &journal.events(), &journal.ledger());
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("io.uring.w0"));
        assert!(trace.contains("io.uring.sq"));
        assert!(trace.contains("\"events_emitted\": 4")); // 2 span + 2 io
        assert!(trace.contains("\"events_dropped\": 0"));
        // The span renders as a complete event with its 5 µs duration.
        assert!(trace.contains("\"name\": \"compare\""));
        assert!(trace.contains("\"dur\": 5"));
    }

    #[test]
    fn identical_timestamps_export_in_seq_order() {
        let tracer = Tracer::new(ObsClock::frozen());
        {
            let _a = tracer.span("a");
        }
        {
            let _b = tracer.span("b");
        }
        {
            let _c = tracer.span("c");
        }
        let trace = chrome_trace(
            &tracer.records(),
            &[],
            &JournalLedger {
                events_emitted: 0,
                events_written: 0,
                events_dropped: 0,
            },
        );
        let ia = trace.find("\"name\": \"a\"").unwrap();
        let ib = trace.find("\"name\": \"b\"").unwrap();
        let ic = trace.find("\"name\": \"c\"").unwrap();
        assert!(ia < ib && ib < ic, "frozen-clock spans must keep seq order");
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let (clock, ns) = manual_clock();
        let tracer = Tracer::new(clock);
        {
            let _root = tracer.span("root");
            ns.store(10, Ordering::SeqCst);
            {
                let _child = tracer.span("leaf");
                ns.store(40, Ordering::SeqCst);
            }
            ns.store(100, Ordering::SeqCst);
        }
        let folded = folded_stacks(&tracer.records());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["root 70", "root;leaf 30"]);
    }
}
