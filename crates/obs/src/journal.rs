//! The flight-recorder event journal.
//!
//! A [`Journal`] is a low-overhead, lock-striped, bounded ring buffer
//! of typed [`Event`]s: span begin/end markers, counter deltas,
//! per-chunk I/O submissions and completions (with queue depth and
//! latency), retry and quarantine decisions, cache hits/misses, and
//! store pack reads. Every layer of the stack emits into it through a
//! cheap cloned handle; a disabled journal reduces [`Journal::emit`] to
//! a single branch, so instrumented code pays nothing when nobody is
//! recording.
//!
//! Bounded means *bounded*: each stripe holds at most
//! `capacity / stripes` events and drops the **oldest** event when
//! full, counting every drop. The ledger invariant
//! `events_emitted == events_written + events_dropped` is exact — see
//! [`JournalLedger`] — and is embedded in every export so a truncated
//! trace is always visibly truncated.
//!
//! Events carry a global monotonic sequence number (which doubles as
//! the emitted count) and a timestamp from the journal's [`ObsClock`],
//! so a journal filled under a simulated clock replays deterministically.
//! [`Journal::to_jsonl`] renders the retained events as JSON Lines —
//! one object per line, in sequence order — the raw sink the
//! Perfetto/flamegraph exporters in [`crate::export`] consume.

use crate::ObsClock;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Default total event capacity (across all stripes).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// Number of independently locked stripes.
const STRIPES: usize = 8;

/// What happened, with its payload. The variant set mirrors the
/// instrumentation points across the workspace; see each variant's
/// `type` tag for the JSONL spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A tracer span opened (`span_begin`).
    SpanBegin {
        /// Span name.
        name: String,
    },
    /// A tracer span closed (`span_end`).
    SpanEnd {
        /// Span name.
        name: String,
    },
    /// A named counter was bumped (`counter_add`).
    CounterAdd {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A batch of SQEs was pushed through the submission queue
    /// (`io_submit`).
    IoSubmit {
        /// Operations in the batch.
        ops: u64,
        /// Total bytes requested.
        bytes: u64,
        /// Configured ring queue depth.
        queue_depth: u64,
    },
    /// One chunk read completed (`chunk_read`). The event timestamp is
    /// the completion time; `latency_ns` reaches back to the start.
    ChunkRead {
        /// Byte offset of the read.
        offset: u64,
        /// Bytes read.
        len: u64,
        /// Configured ring queue depth at submission.
        queue_depth: u64,
        /// Service time of this read in nanoseconds.
        latency_ns: u64,
    },
    /// The pipeline reader finished assembling one slice
    /// (`slice_fill`).
    SliceFill {
        /// Global index of the slice's first operation.
        first_op: u64,
        /// Operations coalesced into the slice.
        ops: u64,
        /// Slice payload bytes.
        bytes: u64,
        /// Fill latency in nanoseconds.
        latency_ns: u64,
    },
    /// A transient I/O failure is being retried (`retry`).
    Retry {
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// Backoff charged before the retry, in nanoseconds.
        backoff_ns: u64,
    },
    /// Retries were exhausted (`gave_up`).
    GaveUp {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A chunk range was quarantined instead of aborting
    /// (`quarantine`).
    Quarantine {
        /// First chunk index of the range.
        first_chunk: u64,
        /// Chunks in the range.
        chunks: u64,
    },
    /// Metadata-cache hit (`cache_hit`).
    CacheHit {
        /// Which cache: `subtree` or `verdict`.
        what: String,
    },
    /// Metadata-cache miss (`cache_miss`).
    CacheMiss {
        /// Which cache: `subtree` or `verdict`.
        what: String,
    },
    /// A read resolved through the capture store's pack index
    /// (`store_read`).
    StoreRead {
        /// Bytes served.
        bytes: u64,
        /// Whether the span crossed a deduplicated chunk.
        deduped: bool,
    },
    /// A compute kernel charge (`kernel`) — e.g. stage-2 element
    /// verification over one slice.
    Kernel {
        /// Kernel name.
        name: String,
        /// Bytes processed.
        bytes: u64,
        /// Modeled or measured kernel time in nanoseconds.
        latency_ns: u64,
    },
    /// A checkpoint flush attempt finished (`flush`).
    Flush {
        /// Destination file name.
        name: String,
        /// Bytes flushed.
        bytes: u64,
        /// Whether the flush succeeded.
        ok: bool,
    },
    /// `fsck --repair` reconstructed corrupt chunks of one pack from
    /// XOR parity (`repair`).
    Repair {
        /// Pack file id.
        pack: u64,
        /// Chunks reconstructed and re-verified.
        chunks: u64,
    },
    /// A pack with unrecoverable corruption was quarantined
    /// (`pack_quarantine`): its chunks are served verify-on-read and
    /// surface as `unverified` ranges in degraded-mode comparison.
    PackQuarantine {
        /// Pack file id.
        pack: u64,
        /// Corrupt chunks that could not be reconstructed.
        chunks: u64,
    },
    /// Differential capture published a delta manifest
    /// (`delta_capture`): only the chunks that changed against the
    /// parent version were written.
    DeltaCapture {
        /// Checkpoint version captured.
        version: u64,
        /// Parent version the capture was diffed against.
        parent: u64,
        /// Chain depth of the new delta (parent depth + 1).
        depth: u64,
        /// Chunk payload bytes physically written.
        bytes_written: u64,
        /// Bytes skipped because the parent already held them.
        bytes_skipped: u64,
    },
    /// An online-comparison policy threshold was crossed
    /// (`divergence`): the comparator observed enough out-of-bound
    /// values to halt (or flag) the run-under-test.
    Divergence {
        /// Rank whose observation crossed the threshold.
        rank: u64,
        /// Iteration at which the threshold was crossed.
        iteration: u64,
        /// Out-of-bound values accumulated so far, across iterations.
        total_diffs: u64,
        /// The policy's configured maximum before halting.
        threshold: u64,
    },
}

impl EventKind {
    /// The `type` tag this kind serializes under.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::CounterAdd { .. } => "counter_add",
            EventKind::IoSubmit { .. } => "io_submit",
            EventKind::ChunkRead { .. } => "chunk_read",
            EventKind::SliceFill { .. } => "slice_fill",
            EventKind::Retry { .. } => "retry",
            EventKind::GaveUp { .. } => "gave_up",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::StoreRead { .. } => "store_read",
            EventKind::Kernel { .. } => "kernel",
            EventKind::Flush { .. } => "flush",
            EventKind::Repair { .. } => "repair",
            EventKind::PackQuarantine { .. } => "pack_quarantine",
            EventKind::DeltaCapture { .. } => "delta_capture",
            EventKind::Divergence { .. } => "divergence",
        }
    }

    /// For events that model an interval (reads, slice fills, kernels):
    /// the interval length in nanoseconds. `None` for instants.
    #[must_use]
    pub fn latency_ns(&self) -> Option<u64> {
        match self {
            EventKind::ChunkRead { latency_ns, .. }
            | EventKind::SliceFill { latency_ns, .. }
            | EventKind::Kernel { latency_ns, .. } => Some(*latency_ns),
            _ => None,
        }
    }

    /// The kind's payload fields as a JSON object (used by exporters).
    #[must_use]
    pub fn to_args(&self) -> Value {
        Value::Object(self.fields())
    }

    fn fields(&self) -> Vec<(String, Value)> {
        fn s(v: &str) -> Value {
            Value::String(v.to_owned())
        }
        fn u(v: u64) -> Value {
            Value::UInt(v)
        }
        match self {
            EventKind::SpanBegin { name } | EventKind::SpanEnd { name } => {
                vec![("name".to_owned(), s(name))]
            }
            EventKind::CounterAdd { name, delta } => {
                vec![
                    ("name".to_owned(), s(name)),
                    ("delta".to_owned(), u(*delta)),
                ]
            }
            EventKind::IoSubmit {
                ops,
                bytes,
                queue_depth,
            } => vec![
                ("ops".to_owned(), u(*ops)),
                ("bytes".to_owned(), u(*bytes)),
                ("queue_depth".to_owned(), u(*queue_depth)),
            ],
            EventKind::ChunkRead {
                offset,
                len,
                queue_depth,
                latency_ns,
            } => vec![
                ("offset".to_owned(), u(*offset)),
                ("len".to_owned(), u(*len)),
                ("queue_depth".to_owned(), u(*queue_depth)),
                ("latency_ns".to_owned(), u(*latency_ns)),
            ],
            EventKind::SliceFill {
                first_op,
                ops,
                bytes,
                latency_ns,
            } => vec![
                ("first_op".to_owned(), u(*first_op)),
                ("ops".to_owned(), u(*ops)),
                ("bytes".to_owned(), u(*bytes)),
                ("latency_ns".to_owned(), u(*latency_ns)),
            ],
            EventKind::Retry {
                attempt,
                backoff_ns,
            } => vec![
                ("attempt".to_owned(), u(u64::from(*attempt))),
                ("backoff_ns".to_owned(), u(*backoff_ns)),
            ],
            EventKind::GaveUp { attempts } => {
                vec![("attempts".to_owned(), u(u64::from(*attempts)))]
            }
            EventKind::Quarantine {
                first_chunk,
                chunks,
            } => vec![
                ("first_chunk".to_owned(), u(*first_chunk)),
                ("chunks".to_owned(), u(*chunks)),
            ],
            EventKind::CacheHit { what } | EventKind::CacheMiss { what } => {
                vec![("what".to_owned(), s(what))]
            }
            EventKind::StoreRead { bytes, deduped } => vec![
                ("bytes".to_owned(), u(*bytes)),
                ("deduped".to_owned(), Value::Bool(*deduped)),
            ],
            EventKind::Kernel {
                name,
                bytes,
                latency_ns,
            } => vec![
                ("name".to_owned(), s(name)),
                ("bytes".to_owned(), u(*bytes)),
                ("latency_ns".to_owned(), u(*latency_ns)),
            ],
            EventKind::Flush { name, bytes, ok } => vec![
                ("name".to_owned(), s(name)),
                ("bytes".to_owned(), u(*bytes)),
                ("ok".to_owned(), Value::Bool(*ok)),
            ],
            EventKind::Repair { pack, chunks } | EventKind::PackQuarantine { pack, chunks } => {
                vec![
                    ("pack".to_owned(), u(*pack)),
                    ("chunks".to_owned(), u(*chunks)),
                ]
            }
            EventKind::DeltaCapture {
                version,
                parent,
                depth,
                bytes_written,
                bytes_skipped,
            } => vec![
                ("version".to_owned(), u(*version)),
                ("parent".to_owned(), u(*parent)),
                ("depth".to_owned(), u(*depth)),
                ("bytes_written".to_owned(), u(*bytes_written)),
                ("bytes_skipped".to_owned(), u(*bytes_skipped)),
            ],
            EventKind::Divergence {
                rank,
                iteration,
                total_diffs,
                threshold,
            } => vec![
                ("rank".to_owned(), u(*rank)),
                ("iteration".to_owned(), u(*iteration)),
                ("total_diffs".to_owned(), u(*total_diffs)),
                ("threshold".to_owned(), u(*threshold)),
            ],
        }
    }
}

/// One journal entry: a sequence number, a timestamp, the lane it
/// belongs to, and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global monotonic sequence number (allocation order).
    pub seq: u64,
    /// Clock reading at emission.
    pub ts: Duration,
    /// Timeline lane, e.g. `main`, `run_a.uring.w0`, `run_b.pipeline`.
    pub lane: String,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Timestamp in nanoseconds (saturating past ~584 years).
    #[must_use]
    pub fn ts_ns(&self) -> u64 {
        u64::try_from(self.ts.as_nanos()).unwrap_or(u64::MAX)
    }
}

// Enums with payloads are beyond the vendored derive, so the event
// flattens by hand: `{"seq":…,"ts_ns":…,"lane":…,"type":…,fields…}`.
impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("seq".to_owned(), Value::UInt(self.seq)),
            ("ts_ns".to_owned(), Value::UInt(self.ts_ns())),
            ("lane".to_owned(), Value::String(self.lane.clone())),
            (
                "type".to_owned(),
                Value::String(self.kind.type_name().to_owned()),
            ),
        ];
        fields.extend(self.kind.fields());
        Value::Object(fields)
    }
}

/// The exact drop-accounting ledger:
/// `events_emitted == events_written + events_dropped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct JournalLedger {
    /// Events handed to [`Journal::emit`] while enabled.
    pub events_emitted: u64,
    /// Events still resident in the ring buffers.
    pub events_written: u64,
    /// Events evicted (oldest-first) to respect the capacity bound.
    pub events_dropped: u64,
}

impl JournalLedger {
    /// Whether the ledger balances.
    #[must_use]
    pub fn balanced(&self) -> bool {
        self.events_emitted == self.events_written + self.events_dropped
    }
}

#[derive(Debug, Default)]
struct Stripe {
    buf: VecDeque<Event>,
    dropped: u64,
}

#[derive(Debug)]
struct JournalInner {
    clock: ObsClock,
    stripes: Vec<Mutex<Stripe>>,
    stripe_capacity: usize,
    seq: AtomicU64,
}

/// The flight-recorder handle. Cheap to clone; clones share the ring.
///
/// A journal built with [`Journal::disabled`] (or [`Default`]) makes
/// [`Journal::emit`] a single branch — instrumentation sites guard any
/// non-trivial payload construction behind [`Journal::is_enabled`].
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Option<Arc<JournalInner>>,
}

impl Journal {
    /// An enabled journal with the default capacity, stamping
    /// timestamps from `clock`.
    #[must_use]
    pub fn new(clock: ObsClock) -> Self {
        Journal::with_capacity(clock, DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled journal retaining at most `capacity` events in total
    /// (rounded up to a whole number per stripe, minimum one each).
    #[must_use]
    pub fn with_capacity(clock: ObsClock, capacity: usize) -> Self {
        let stripe_capacity = capacity.div_ceil(STRIPES).max(1);
        Journal {
            inner: Some(Arc::new(JournalInner {
                clock,
                stripes: (0..STRIPES)
                    .map(|_| Mutex::new(Stripe::default()))
                    .collect(),
                stripe_capacity,
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// A journal that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Journal { inner: None }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event on `lane`. A no-op (one branch) when disabled.
    pub fn emit(&self, lane: &str, kind: EventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let ts = inner.clock.now();
        let stripe = &inner.stripes[(seq as usize) % inner.stripes.len()];
        let mut s = stripe.lock().unwrap_or_else(PoisonError::into_inner);
        if s.buf.len() == inner.stripe_capacity {
            s.buf.pop_front();
            s.dropped += 1;
        }
        s.buf.push_back(Event {
            seq,
            ts,
            lane: lane.to_owned(),
            kind,
        });
    }

    /// Every retained event, sorted by sequence number.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<Event> = Vec::new();
        for stripe in &inner.stripes {
            let s = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            out.extend(s.buf.iter().cloned());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The exact emitted/written/dropped ledger.
    #[must_use]
    pub fn ledger(&self) -> JournalLedger {
        let Some(inner) = &self.inner else {
            return JournalLedger {
                events_emitted: 0,
                events_written: 0,
                events_dropped: 0,
            };
        };
        let emitted = inner.seq.load(Ordering::Relaxed);
        let mut written = 0u64;
        let mut dropped = 0u64;
        for stripe in &inner.stripes {
            let s = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            written += s.buf.len() as u64;
            dropped += s.dropped;
        }
        JournalLedger {
            events_emitted: emitted,
            events_written: written,
            events_dropped: dropped,
        }
    }

    /// The retained events as JSON Lines: one compact object per line,
    /// in sequence order.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&serde_json::to_string(&e).unwrap_or_default());
            out.push('\n');
        }
        out
    }
}

/// A late-binding journal slot for long-lived objects created before
/// anyone is recording (e.g. store-backed storage built at source-load
/// time). The owner keeps the slot; an observed comparison [`set`]s an
/// enabled journal for its duration. [`emit`] costs one atomic load
/// while the slot is empty.
///
/// [`set`]: JournalSlot::set
/// [`emit`]: JournalSlot::emit
#[derive(Debug, Clone, Default)]
pub struct JournalSlot {
    armed: Arc<AtomicBool>,
    journal: Arc<Mutex<Journal>>,
}

impl JournalSlot {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Self {
        JournalSlot::default()
    }

    /// Installs `journal`; subsequent [`JournalSlot::emit`] calls land
    /// in it (if it is enabled).
    pub fn set(&self, journal: Journal) {
        let armed = journal.is_enabled();
        *self.journal.lock().unwrap_or_else(PoisonError::into_inner) = journal;
        self.armed.store(armed, Ordering::Release);
    }

    /// Empties the slot.
    pub fn clear(&self) {
        self.set(Journal::disabled());
    }

    /// Records `kind` on `lane` through the installed journal, if any.
    pub fn emit(&self, lane: &str, kind: EventKind) {
        if !self.armed.load(Ordering::Acquire) {
            return;
        }
        self.journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .emit(lane, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestAtomicU64;

    fn manual_clock() -> (ObsClock, Arc<TestAtomicU64>) {
        let ns = Arc::new(TestAtomicU64::new(0));
        let src = Arc::clone(&ns);
        let clock = ObsClock::from_fn(move || Duration::from_nanos(src.load(Ordering::SeqCst)));
        (clock, ns)
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::disabled();
        j.emit("main", EventKind::GaveUp { attempts: 3 });
        assert!(!j.is_enabled());
        assert!(j.events().is_empty());
        assert_eq!(j.ledger().events_emitted, 0);
        assert!(j.to_jsonl().is_empty());
    }

    #[test]
    fn events_carry_sequence_lane_and_timestamp() {
        let (clock, ns) = manual_clock();
        let j = Journal::new(clock);
        j.emit(
            "main",
            EventKind::SpanBegin {
                name: "compare".into(),
            },
        );
        ns.store(250, Ordering::SeqCst);
        j.emit(
            "io.w0",
            EventKind::ChunkRead {
                offset: 4096,
                len: 512,
                queue_depth: 64,
                latency_ns: 100,
            },
        );
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].lane, "main");
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].ts_ns(), 250);
        assert_eq!(events[1].kind.latency_ns(), Some(100));
    }

    #[test]
    fn ring_drops_oldest_and_ledger_stays_exact() {
        let j = Journal::with_capacity(ObsClock::frozen(), 16);
        for i in 0..1000u64 {
            j.emit(
                "main",
                EventKind::CounterAdd {
                    name: "x".into(),
                    delta: i,
                },
            );
        }
        let ledger = j.ledger();
        assert_eq!(ledger.events_emitted, 1000);
        assert!(ledger.events_dropped > 0);
        assert!(ledger.balanced(), "emitted = written + dropped");
        let events = j.events();
        assert_eq!(events.len() as u64, ledger.events_written);
        // The survivors are the newest events of each stripe.
        assert!(events.iter().all(|e| e.seq >= 1000 - 16 * 8));
    }

    #[test]
    fn jsonl_lines_are_one_object_per_event() {
        let j = Journal::new(ObsClock::frozen());
        j.emit(
            "store",
            EventKind::StoreRead {
                bytes: 4096,
                deduped: true,
            },
        );
        j.emit("veloc", EventKind::GaveUp { attempts: 2 });
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,"));
        assert!(lines[0].contains("\"type\":\"store_read\""));
        assert!(lines[0].contains("\"deduped\":true"));
        assert!(lines[1].contains("\"attempts\":2"));
    }

    #[test]
    fn concurrent_emitters_never_lose_the_ledger() {
        let j = Journal::with_capacity(ObsClock::wall(), 64);
        let mut handles = Vec::new();
        for t in 0..4 {
            let j = j.clone();
            handles.push(std::thread::spawn(move || {
                let lane = format!("w{t}");
                for _ in 0..500 {
                    j.emit(&lane, EventKind::GaveUp { attempts: 1 });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ledger = j.ledger();
        assert_eq!(ledger.events_emitted, 2000);
        assert!(ledger.balanced());
        // Sequence numbers are unique.
        let events = j.events();
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), events.len());
    }

    #[test]
    fn slot_arms_and_disarms() {
        let slot = JournalSlot::new();
        slot.emit("store", EventKind::GaveUp { attempts: 1 }); // empty: no-op
        let j = Journal::new(ObsClock::frozen());
        slot.set(j.clone());
        slot.emit(
            "store",
            EventKind::StoreRead {
                bytes: 1,
                deduped: false,
            },
        );
        slot.clear();
        slot.emit(
            "store",
            EventKind::StoreRead {
                bytes: 2,
                deduped: false,
            },
        );
        let events = j.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            EventKind::StoreRead { bytes: 1, .. }
        ));
    }
}
