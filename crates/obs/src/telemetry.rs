//! The live telemetry plane: daemon-level metric snapshots.
//!
//! The per-job observability in this crate (spans, registries, flight
//! recorder) answers *what did this comparison cost*; telemetry
//! answers *what is the daemon doing right now*. A
//! [`TelemetrySnapshot`] is one schema-versioned, point-in-time
//! reading of everything operable about a running daemon: queue
//! pressure, worker saturation, job-table state, store growth, the
//! aggregate journal ledger, and the full metrics registry (gauges and
//! histogram bucket arrays included, so downstream renderers need no
//! side channels).
//!
//! Three pieces, all deterministic:
//!
//! * [`TelemetryRing`] — a bounded history of snapshots with an exact
//!   eviction count, the in-memory form of the daemon's
//!   `telemetry.jsonl`;
//! * [`Sampler`] — cadence bookkeeping over an [`ObsClock`], so a test
//!   driving a manual clock gets a byte-reproducible series while the
//!   production daemon free-runs on wall time;
//! * [`prometheus_text`] — the Prometheus text exposition (v0.0.4)
//!   renderer: exact `# TYPE` lines, deterministic label ordering,
//!   cumulative `le` buckets derived from the log2 histogram arrays.
//!
//! Snapshots round-trip: [`TelemetrySnapshot::to_json_line`] is the
//! JSONL persistence format and [`TelemetrySnapshot::from_value`]
//! decodes it (additively — unknown fields are ignored, so the schema
//! can grow without breaking old readers).

use crate::journal::JournalLedger;
use crate::metrics::{
    HistogramBucket, HistogramSnapshot, MetricValue, NamedHistogram, RegistrySnapshot,
};
use crate::ObsClock;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

/// Telemetry schema revision. Bumped only for additive changes;
/// decoders accept any `schema >= 1` snapshot.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Queue pressure at the sampling instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct QueueTelemetry {
    /// Admission bound on in-flight jobs.
    pub capacity: u64,
    /// Jobs admitted but not yet served to a worker.
    pub queued: u64,
    /// Jobs counting against the bound (queued + executing).
    pub in_flight: u64,
    /// Jobs admitted since the daemon started (monotonic).
    pub admitted: u64,
    /// Jobs refused by admission control since start (monotonic).
    pub refused: u64,
    /// Whether the queue has stopped admitting.
    pub shutting_down: bool,
}

/// One worker thread's cumulative activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct WorkerTelemetry {
    /// Worker index (stable for the daemon's lifetime).
    pub worker: u64,
    /// Jobs this worker has executed.
    pub jobs_executed: u64,
    /// Cumulative time spent executing jobs, in clock nanoseconds.
    pub busy_ns: u64,
    /// Cumulative time spent waiting for work, in clock nanoseconds.
    pub idle_ns: u64,
}

/// Job-table population by lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct JobStateCounts {
    /// Accepted, waiting for a worker.
    pub queued: u64,
    /// Currently executing.
    pub running: u64,
    /// Finished successfully.
    pub done: u64,
    /// Finished with an error.
    pub failed: u64,
}

/// Store growth counters (a subset of the store's full stats that is
/// cheap to read on every sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct StoreTelemetry {
    /// Checkpoints (manifests) in the store.
    pub objects: u64,
    /// Pack files on disk.
    pub packs: u64,
    /// Logical bytes across all manifests.
    pub bytes_logical: u64,
    /// Chunk payload bytes across all indexed chunks.
    pub bytes_physical: u64,
    /// Bytes saved by index-level dedup.
    pub bytes_deduped: u64,
    /// Indexed chunk bytes at refcount 0 awaiting GC.
    pub bytes_garbage: u64,
    /// Actual pack file bytes on disk.
    pub pack_file_bytes: u64,
}

/// One schema-versioned, point-in-time reading of a live daemon.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    /// Schema revision (see [`TELEMETRY_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Monotonic sample number (continues across daemon restarts).
    pub seq: u64,
    /// Sampling clock reading, nanoseconds since the clock's epoch.
    pub ts_ns: u64,
    /// Queue pressure.
    pub queue: QueueTelemetry,
    /// Per-worker activity, ascending by worker index.
    pub workers: Vec<WorkerTelemetry>,
    /// Job-table state counts.
    pub jobs: JobStateCounts,
    /// Store growth.
    pub store: StoreTelemetry,
    /// Aggregate journal ledger across all executed jobs.
    pub journal: JournalLedger,
    /// The daemon's full metrics registry: counters, gauges, and
    /// histograms with their bucket arrays.
    pub registry: RegistrySnapshot,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            schema: TELEMETRY_SCHEMA_VERSION,
            seq: 0,
            ts_ns: 0,
            queue: QueueTelemetry::default(),
            workers: Vec::new(),
            jobs: JobStateCounts::default(),
            store: StoreTelemetry::default(),
            journal: JournalLedger {
                events_emitted: 0,
                events_written: 0,
                events_dropped: 0,
            },
            registry: RegistrySnapshot {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            },
        }
    }
}

// -------------------------------------------------------------------
// Decoding (additive: unknown fields are ignored, missing numeric
// fields default to zero so older snapshots keep parsing).
// -------------------------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num_u64(v: &Value, key: &str) -> u64 {
    match field(v, key) {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) => u64::try_from(*n).unwrap_or(0),
        _ => 0,
    }
}

fn num_i64(v: &Value, key: &str) -> i64 {
    match field(v, key) {
        Some(Value::Int(n)) => *n,
        Some(Value::UInt(n)) => i64::try_from(*n).unwrap_or(i64::MAX),
        _ => 0,
    }
}

fn flag(v: &Value, key: &str) -> bool {
    matches!(field(v, key), Some(Value::Bool(true)))
}

fn str_of(v: &Value, key: &str) -> Option<String> {
    match field(v, key) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn arr_of<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    match field(v, key) {
        Some(Value::Array(items)) => items.as_slice(),
        _ => &[],
    }
}

fn decode_ledger(v: &Value) -> JournalLedger {
    JournalLedger {
        events_emitted: num_u64(v, "events_emitted"),
        events_written: num_u64(v, "events_written"),
        events_dropped: num_u64(v, "events_dropped"),
    }
}

fn decode_metric(v: &Value) -> Result<MetricValue, String> {
    Ok(MetricValue {
        name: str_of(v, "name").ok_or("metric entry missing `name`")?,
        value: num_i64(v, "value"),
    })
}

fn decode_histogram(v: &Value) -> Result<NamedHistogram, String> {
    let h = field(v, "histogram").ok_or("histogram entry missing `histogram`")?;
    let buckets = arr_of(h, "buckets")
        .iter()
        .map(|b| HistogramBucket {
            low: num_u64(b, "low"),
            high: num_u64(b, "high"),
            count: num_u64(b, "count"),
        })
        .collect();
    Ok(NamedHistogram {
        name: str_of(v, "name").ok_or("histogram entry missing `name`")?,
        histogram: HistogramSnapshot {
            count: num_u64(h, "count"),
            sum: num_u64(h, "sum"),
            p50: num_u64(h, "p50"),
            p95: num_u64(h, "p95"),
            p99: num_u64(h, "p99"),
            buckets,
        },
    })
}

impl TelemetrySnapshot {
    /// Decodes a snapshot from its serialized [`Value`] tree (a parsed
    /// JSONL line or a wire frame's `snapshot` field).
    ///
    /// # Errors
    ///
    /// A human-readable message when a required field is absent or the
    /// schema revision is unknown (`schema == 0`).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let schema = num_u64(v, "schema");
        if schema == 0 {
            return Err("telemetry snapshot missing `schema`".to_owned());
        }
        let queue = field(v, "queue").ok_or("snapshot missing `queue`")?;
        let jobs = field(v, "jobs").ok_or("snapshot missing `jobs`")?;
        let store = field(v, "store").ok_or("snapshot missing `store`")?;
        let registry = field(v, "registry").ok_or("snapshot missing `registry`")?;
        Ok(TelemetrySnapshot {
            schema,
            seq: num_u64(v, "seq"),
            ts_ns: num_u64(v, "ts_ns"),
            queue: QueueTelemetry {
                capacity: num_u64(queue, "capacity"),
                queued: num_u64(queue, "queued"),
                in_flight: num_u64(queue, "in_flight"),
                admitted: num_u64(queue, "admitted"),
                refused: num_u64(queue, "refused"),
                shutting_down: flag(queue, "shutting_down"),
            },
            workers: arr_of(v, "workers")
                .iter()
                .map(|w| WorkerTelemetry {
                    worker: num_u64(w, "worker"),
                    jobs_executed: num_u64(w, "jobs_executed"),
                    busy_ns: num_u64(w, "busy_ns"),
                    idle_ns: num_u64(w, "idle_ns"),
                })
                .collect(),
            jobs: JobStateCounts {
                queued: num_u64(jobs, "queued"),
                running: num_u64(jobs, "running"),
                done: num_u64(jobs, "done"),
                failed: num_u64(jobs, "failed"),
            },
            store: StoreTelemetry {
                objects: num_u64(store, "objects"),
                packs: num_u64(store, "packs"),
                bytes_logical: num_u64(store, "bytes_logical"),
                bytes_physical: num_u64(store, "bytes_physical"),
                bytes_deduped: num_u64(store, "bytes_deduped"),
                bytes_garbage: num_u64(store, "bytes_garbage"),
                pack_file_bytes: num_u64(store, "pack_file_bytes"),
            },
            journal: field(v, "journal")
                .map(decode_ledger)
                .unwrap_or(JournalLedger {
                    events_emitted: 0,
                    events_written: 0,
                    events_dropped: 0,
                }),
            registry: RegistrySnapshot {
                counters: arr_of(registry, "counters")
                    .iter()
                    .map(decode_metric)
                    .collect::<Result<_, _>>()?,
                gauges: arr_of(registry, "gauges")
                    .iter()
                    .map(decode_metric)
                    .collect::<Result<_, _>>()?,
                histograms: arr_of(registry, "histograms")
                    .iter()
                    .map(decode_histogram)
                    .collect::<Result<_, _>>()?,
            },
        })
    }

    /// One compact JSON line (no trailing newline) — the
    /// `telemetry.jsonl` persistence format.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }
}

// -------------------------------------------------------------------
// The bounded history ring.
// -------------------------------------------------------------------

/// A bounded FIFO of snapshots with an exact eviction count — the
/// in-memory twin of the persisted `telemetry.jsonl`.
#[derive(Debug, Clone)]
pub struct TelemetryRing {
    entries: VecDeque<TelemetrySnapshot>,
    capacity: usize,
    evicted: u64,
}

impl TelemetryRing {
    /// A ring retaining at most `capacity` snapshots (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TelemetryRing {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshots currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been sampled yet (or all was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshots evicted (oldest-first) to respect the bound.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Appends a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snapshot: TelemetrySnapshot) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(snapshot);
    }

    /// Retained snapshots, oldest first.
    #[must_use]
    pub fn snapshots(&self) -> Vec<TelemetrySnapshot> {
        self.entries.iter().cloned().collect()
    }

    /// The most recent snapshot.
    #[must_use]
    pub fn latest(&self) -> Option<&TelemetrySnapshot> {
        self.entries.back()
    }

    /// The retained history as JSON Lines (one snapshot per line,
    /// oldest first, newline-terminated when non-empty).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.entries {
            out.push_str(&s.to_json_line());
            out.push('\n');
        }
        out
    }
}

// -------------------------------------------------------------------
// The deterministic sampler.
// -------------------------------------------------------------------

/// Cadence bookkeeping over an [`ObsClock`].
///
/// Tick boundaries sit at multiples of the period from the clock's
/// epoch, with tick 0 due immediately. [`Sampler::poll`] reports
/// whether at least one boundary has passed since the last poll and
/// advances past *all* of them — a late poller takes one catch-up
/// sample rather than a burst of identical ones. Driven by a manual
/// test clock the due/not-due series is exactly reproducible; the
/// production daemon runs the same code on a wall clock.
#[derive(Debug, Clone)]
pub struct Sampler {
    clock: ObsClock,
    period: Duration,
    next: Duration,
}

impl Sampler {
    /// A sampler reading `clock` on `period` cadence. A zero period
    /// disables it: [`Sampler::poll`] never fires.
    #[must_use]
    pub fn new(clock: ObsClock, period: Duration) -> Self {
        Sampler {
            clock,
            period,
            next: Duration::ZERO,
        }
    }

    /// The configured cadence.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Whether a sample is due. When due, returns the index of the
    /// most recent tick boundary passed and advances past it (missed
    /// boundaries coalesce into this one poll).
    pub fn poll(&mut self) -> Option<u64> {
        if self.period.is_zero() {
            return None;
        }
        let now = self.clock.now();
        if now < self.next {
            return None;
        }
        let tick = (now.as_nanos() / self.period.as_nanos()) as u64;
        self.next = self
            .period
            .saturating_mul(u32::try_from(tick + 1).unwrap_or(u32::MAX));
        Some(tick)
    }
}

// -------------------------------------------------------------------
// Prometheus text exposition (v0.0.4).
// -------------------------------------------------------------------

/// Sanitizes a registry metric name into the Prometheus grammar:
/// every character outside `[a-zA-Z0-9_]` becomes `_`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn scalar(out: &mut String, name: &str, kind: &str, value: impl std::fmt::Display) {
    type_line(out, name, kind);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders one snapshot as Prometheus text exposition format v0.0.4.
///
/// Byte-deterministic: metric families appear in a fixed order
/// (telemetry header, queue, job states, workers, store, journal,
/// then the registry's counters, gauges, and histograms, each sorted
/// by name), labels in ascending order, and histogram `le` buckets
/// ascending with the mandatory `+Inf` terminal bucket.
#[must_use]
pub fn prometheus_text(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    scalar(&mut out, "reprocmp_telemetry_schema", "gauge", snap.schema);
    scalar(&mut out, "reprocmp_telemetry_seq", "counter", snap.seq);
    scalar(&mut out, "reprocmp_telemetry_ts_ns", "gauge", snap.ts_ns);

    scalar(
        &mut out,
        "reprocmp_queue_capacity",
        "gauge",
        snap.queue.capacity,
    );
    scalar(&mut out, "reprocmp_queue_depth", "gauge", snap.queue.queued);
    scalar(
        &mut out,
        "reprocmp_queue_in_flight",
        "gauge",
        snap.queue.in_flight,
    );
    scalar(
        &mut out,
        "reprocmp_queue_admitted_total",
        "counter",
        snap.queue.admitted,
    );
    scalar(
        &mut out,
        "reprocmp_queue_refused_total",
        "counter",
        snap.queue.refused,
    );
    scalar(
        &mut out,
        "reprocmp_queue_shutting_down",
        "gauge",
        u8::from(snap.queue.shutting_down),
    );

    type_line(&mut out, "reprocmp_jobs", "gauge");
    for (state, n) in [
        ("done", snap.jobs.done),
        ("failed", snap.jobs.failed),
        ("queued", snap.jobs.queued),
        ("running", snap.jobs.running),
    ] {
        let _ = writeln!(out, "reprocmp_jobs{{state=\"{state}\"}} {n}");
    }

    for (family, pick) in [
        (
            "reprocmp_worker_jobs_total",
            (|w: &WorkerTelemetry| w.jobs_executed) as fn(&WorkerTelemetry) -> u64,
        ),
        ("reprocmp_worker_busy_ns_total", |w| w.busy_ns),
        ("reprocmp_worker_idle_ns_total", |w| w.idle_ns),
    ] {
        type_line(&mut out, family, "counter");
        for w in &snap.workers {
            let _ = writeln!(out, "{family}{{worker=\"{}\"}} {}", w.worker, pick(w));
        }
    }

    scalar(
        &mut out,
        "reprocmp_store_objects",
        "gauge",
        snap.store.objects,
    );
    scalar(&mut out, "reprocmp_store_packs", "gauge", snap.store.packs);
    scalar(
        &mut out,
        "reprocmp_store_bytes_logical",
        "gauge",
        snap.store.bytes_logical,
    );
    scalar(
        &mut out,
        "reprocmp_store_bytes_physical",
        "gauge",
        snap.store.bytes_physical,
    );
    scalar(
        &mut out,
        "reprocmp_store_bytes_deduped",
        "gauge",
        snap.store.bytes_deduped,
    );
    scalar(
        &mut out,
        "reprocmp_store_bytes_garbage",
        "gauge",
        snap.store.bytes_garbage,
    );
    scalar(
        &mut out,
        "reprocmp_store_pack_file_bytes",
        "gauge",
        snap.store.pack_file_bytes,
    );

    scalar(
        &mut out,
        "reprocmp_journal_events_emitted_total",
        "counter",
        snap.journal.events_emitted,
    );
    scalar(
        &mut out,
        "reprocmp_journal_events_written_total",
        "counter",
        snap.journal.events_written,
    );
    scalar(
        &mut out,
        "reprocmp_journal_events_dropped_total",
        "counter",
        snap.journal.events_dropped,
    );

    for c in &snap.registry.counters {
        scalar(
            &mut out,
            &format!("reprocmp_{}_total", prometheus_name(&c.name)),
            "counter",
            c.value,
        );
    }
    for g in &snap.registry.gauges {
        scalar(
            &mut out,
            &format!("reprocmp_{}", prometheus_name(&g.name)),
            "gauge",
            g.value,
        );
    }
    for h in &snap.registry.histograms {
        let family = format!("reprocmp_{}", prometheus_name(&h.name));
        type_line(&mut out, &family, "histogram");
        let mut cumulative = 0u64;
        for b in &h.histogram.buckets {
            cumulative += b.count;
            // The top log2 bucket's bound is u64::MAX; +Inf covers it.
            if b.high == u64::MAX {
                continue;
            }
            let _ = writeln!(out, "{family}_bucket{{le=\"{}\"}} {cumulative}", b.high);
        }
        let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", h.histogram.count);
        let _ = writeln!(out, "{family}_sum {}", h.histogram.sum);
        let _ = writeln!(out, "{family}_count {}", h.histogram.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn sample_snapshot(seq: u64) -> TelemetrySnapshot {
        let registry = Registry::new();
        registry.counter("jobs.done").add(5);
        registry.gauge("drr.lanes").set(-2);
        let h = registry.histogram("job.cost");
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        TelemetrySnapshot {
            schema: TELEMETRY_SCHEMA_VERSION,
            seq,
            ts_ns: seq * 1_000,
            queue: QueueTelemetry {
                capacity: 64,
                queued: 3,
                in_flight: 5,
                admitted: 40,
                refused: 2,
                shutting_down: false,
            },
            workers: vec![
                WorkerTelemetry {
                    worker: 0,
                    jobs_executed: 21,
                    busy_ns: 9_000,
                    idle_ns: 100,
                },
                WorkerTelemetry {
                    worker: 1,
                    jobs_executed: 19,
                    busy_ns: 8_000,
                    idle_ns: 400,
                },
            ],
            jobs: JobStateCounts {
                queued: 3,
                running: 2,
                done: 33,
                failed: 2,
            },
            store: StoreTelemetry {
                objects: 8,
                packs: 2,
                bytes_logical: 1 << 20,
                bytes_physical: 700_000,
                bytes_deduped: 300_000,
                bytes_garbage: 0,
                pack_file_bytes: 710_000,
            },
            journal: JournalLedger {
                events_emitted: 1000,
                events_written: 900,
                events_dropped: 100,
            },
            registry: registry.snapshot(),
        }
    }

    #[test]
    fn snapshot_round_trips_through_its_json_line() {
        let snap = sample_snapshot(7);
        let line = snap.to_json_line();
        // The server-side JSON parser lives in reprocmp-server; here we
        // round-trip through to_value directly, which is what the
        // parser produces for this line.
        let decoded = TelemetrySnapshot::from_value(&snap.to_value()).expect("decode");
        assert_eq!(decoded, snap);
        assert!(!line.contains('\n'), "one line per snapshot");
    }

    #[test]
    fn decoding_ignores_unknown_fields_and_defaults_missing_numbers() {
        let mut v = sample_snapshot(1).to_value();
        if let Value::Object(fields) = &mut v {
            fields.push(("added_in_v9".to_owned(), Value::String("x".to_owned())));
        }
        let decoded = TelemetrySnapshot::from_value(&v).expect("additive decode");
        assert_eq!(decoded.seq, 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_exactly() {
        let mut ring = TelemetryRing::new(3);
        for seq in 0..5 {
            ring.push(sample_snapshot(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 2);
        let seqs: Vec<u64> = ring.snapshots().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(ring.latest().unwrap().seq, 4);
    }

    #[test]
    fn ring_jsonl_has_one_line_per_snapshot() {
        let mut ring = TelemetryRing::new(8);
        ring.push(sample_snapshot(0));
        ring.push(sample_snapshot(1));
        assert_eq!(ring.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn sampler_fires_on_deterministic_tick_boundaries() {
        let nanos = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&nanos);
        let clock = ObsClock::from_fn(move || Duration::from_nanos(src.load(Ordering::SeqCst)));
        let mut sampler = Sampler::new(clock, Duration::from_nanos(100));
        assert_eq!(sampler.poll(), Some(0), "tick 0 due immediately");
        assert_eq!(sampler.poll(), None, "not due again at the same instant");
        nanos.store(99, Ordering::SeqCst);
        assert_eq!(sampler.poll(), None);
        nanos.store(100, Ordering::SeqCst);
        assert_eq!(sampler.poll(), Some(1));
        // Missed boundaries coalesce into one catch-up poll.
        nanos.store(1000, Ordering::SeqCst);
        assert_eq!(sampler.poll(), Some(10));
        assert_eq!(sampler.poll(), None);
    }

    #[test]
    fn zero_period_sampler_never_fires() {
        let mut sampler = Sampler::new(ObsClock::wall(), Duration::ZERO);
        assert_eq!(sampler.poll(), None);
    }

    #[test]
    fn prometheus_text_is_deterministic_and_well_formed() {
        let snap = sample_snapshot(7);
        let text = prometheus_text(&snap);
        assert_eq!(text, prometheus_text(&snap), "byte-deterministic");
        assert!(text.contains("# TYPE reprocmp_queue_depth gauge\nreprocmp_queue_depth 3\n"));
        assert!(text.contains("reprocmp_jobs{state=\"done\"} 33"));
        assert!(text.contains("reprocmp_worker_busy_ns_total{worker=\"1\"} 8000"));
        assert!(text.contains("# TYPE reprocmp_jobs_done_total counter"));
        assert!(
            text.contains("reprocmp_drr_lanes -2"),
            "gauge value rendered"
        );
        // Histogram: cumulative le buckets ascending, +Inf terminal.
        assert!(text.contains("# TYPE reprocmp_job_cost histogram"));
        assert!(text.contains("reprocmp_job_cost_bucket{le=\"1\"} 1"));
        assert!(text.contains("reprocmp_job_cost_bucket{le=\"3\"} 3"));
        assert!(text.contains("reprocmp_job_cost_bucket{le=\"1023\"} 4"));
        assert!(text.contains("reprocmp_job_cost_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("reprocmp_job_cost_sum 906"));
        assert!(text.contains("reprocmp_job_cost_count 4"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("io.read_bytes"), "io_read_bytes");
        assert_eq!(prometheus_name("a-b/c d"), "a_b_c_d");
    }
}
