//! Hierarchical tracing spans.
//!
//! A [`Tracer`] records a forest of named spans. Opening a span (via
//! [`Tracer::span`] or the [`span!`](crate::span!) macro) stamps an
//! enter timestamp off the tracer's [`ObsClock`] and pushes the span
//! onto a per-tracer stack; dropping the returned [`SpanGuard`] stamps
//! the exit timestamp and pops it. Because entry/exit follow RAII
//! scoping, the recorded forest is well-nested by construction: every
//! span's interval lies inside its parent's, a property the test suite
//! asserts over random nesting programs.

use crate::journal::{EventKind, Journal};
use crate::ObsClock;
use serde::Serialize;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One finished (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// Span name, dot-separated by convention (e.g. `stage1.bfs`).
    pub name: String,
    /// Index of the parent span in the tracer's record list, or `None`
    /// for a root span.
    pub parent: Option<u64>,
    /// Nesting depth; roots are at depth 0.
    pub depth: u64,
    /// Monotonic open-order sequence number. Under a frozen or
    /// simulated clock many spans can share identical timestamps, so
    /// exports sort by `(start, seq)` to stay deterministic.
    pub seq: u64,
    /// Clock reading at entry.
    pub start: Duration,
    /// Clock reading at exit; equals `start` while the span is open.
    pub end: Duration,
}

impl SpanRecord {
    /// Time between entry and exit.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

#[derive(Debug, Default)]
struct TracerState {
    records: Vec<SpanRecord>,
    stack: Vec<usize>,
}

/// Records hierarchical spans against a shared clock.
///
/// Cheap to clone; clones share the record list. A tracer created with
/// [`Tracer::disabled`] turns every span into a no-op so instrumented
/// code pays nothing when nobody is watching.
#[derive(Debug, Clone)]
pub struct Tracer {
    state: Option<Arc<Mutex<TracerState>>>,
    clock: ObsClock,
    journal: Journal,
}

impl Tracer {
    /// An enabled tracer stamping timestamps from `clock`.
    #[must_use]
    pub fn new(clock: ObsClock) -> Self {
        Tracer {
            state: Some(Arc::new(Mutex::new(TracerState::default()))),
            clock,
            journal: Journal::disabled(),
        }
    }

    /// An enabled tracer that additionally mirrors every span open and
    /// close into `journal` as `span_begin`/`span_end` events on the
    /// `main` lane.
    #[must_use]
    pub fn with_journal(clock: ObsClock, journal: Journal) -> Self {
        Tracer {
            state: Some(Arc::new(Mutex::new(TracerState::default()))),
            clock,
            journal,
        }
    }

    /// A tracer that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer {
            state: None,
            clock: ObsClock::frozen(),
            journal: Journal::disabled(),
        }
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Opens a span; it closes when the returned guard drops.
    #[must_use = "the span closes when the guard drops — bind it"]
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let Some(state) = &self.state else {
            return SpanGuard {
                tracer: None,
                index: 0,
            };
        };
        let now = self.clock.now();
        let name = name.into();
        let mut s = state.lock().unwrap_or_else(PoisonError::into_inner);
        let parent = s.stack.last().map(|&i| i as u64);
        let depth = s.stack.len() as u64;
        let index = s.records.len();
        s.records.push(SpanRecord {
            name: name.clone(),
            parent,
            depth,
            seq: index as u64,
            start: now,
            end: now,
        });
        s.stack.push(index);
        drop(s);
        self.journal.emit("main", EventKind::SpanBegin { name });
        SpanGuard {
            tracer: Some((Arc::clone(state), self.clock.clone(), self.journal.clone())),
            index,
        }
    }

    /// Snapshot of every span recorded so far, in open order.
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.state {
            Some(state) => state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .records
                .clone(),
            None => Vec::new(),
        }
    }
}

/// RAII guard returned by [`Tracer::span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Option<(Arc<Mutex<TracerState>>, ObsClock, Journal)>,
    index: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((state, clock, journal)) = self.tracer.take() else {
            return;
        };
        let now = clock.now();
        let mut s = state.lock().unwrap_or_else(PoisonError::into_inner);
        s.records[self.index].end = now;
        // Pop this span — and, if an inner guard leaked (mem::forget)
        // or dropped out of order, everything opened above it, closing
        // those records at `now` so the stack stays consistent. A guard
        // whose span was already popped only stamps its end time.
        // Orphans get their `span_end` mirrored too (innermost first),
        // so the journal's begin/end pairs stay well-nested even when
        // guards misbehave.
        let st = &mut *s;
        let journaling = journal.is_enabled();
        let mut closed = Vec::new();
        if let Some(pos) = st.stack.iter().rposition(|&i| i == self.index) {
            for &orphan in st.stack[pos + 1..].iter().rev() {
                st.records[orphan].end = st.records[orphan].end.max(now);
                if journaling {
                    closed.push(st.records[orphan].name.clone());
                }
            }
            st.stack.truncate(pos);
            if journaling {
                closed.push(st.records[self.index].name.clone());
            }
        }
        drop(s);
        for name in closed {
            journal.emit("main", EventKind::SpanEnd { name });
        }
    }
}

/// Opens a span on a tracer: `span!(tracer, "stage1.bfs")`.
///
/// Expands to [`Tracer::span`]; bind the result or the span closes
/// immediately.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $tracer.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn manual_clock() -> (ObsClock, Arc<AtomicU64>) {
        let ns = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&ns);
        let clock = ObsClock::from_fn(move || Duration::from_nanos(src.load(Ordering::SeqCst)));
        (clock, ns)
    }

    #[test]
    fn spans_record_enter_and_exit_times() {
        let (clock, ns) = manual_clock();
        let tracer = Tracer::new(clock);
        {
            let _g = tracer.span("outer");
            ns.store(100, Ordering::SeqCst);
        }
        let recs = tracer.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "outer");
        assert_eq!(recs[0].start, Duration::ZERO);
        assert_eq!(recs[0].end, Duration::from_nanos(100));
        assert_eq!(recs[0].elapsed(), Duration::from_nanos(100));
    }

    #[test]
    fn nesting_sets_parent_and_depth() {
        let tracer = Tracer::new(ObsClock::frozen());
        {
            let _a = span!(tracer, "a");
            {
                let _b = span!(tracer, "a.b");
                let _c = span!(tracer, "a.b.c");
            }
            let _d = span!(tracer, "a.d");
        }
        let recs = tracer.records();
        let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("a").parent, None);
        assert_eq!(by_name("a").depth, 0);
        assert_eq!(by_name("a.b").parent, Some(0));
        assert_eq!(by_name("a.b.c").parent, Some(1));
        assert_eq!(by_name("a.b.c").depth, 2);
        assert_eq!(by_name("a.d").parent, Some(0));
        assert_eq!(by_name("a.d").depth, 1);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tracer = Tracer::new(ObsClock::frozen());
        let root = tracer.span("root");
        for _ in 0..3 {
            let _s = tracer.span("child");
        }
        drop(root);
        let recs = tracer.records();
        assert_eq!(recs.iter().filter(|r| r.parent == Some(0)).count(), 3);
    }

    #[test]
    fn children_are_contained_in_parents() {
        let (clock, ns) = manual_clock();
        let tracer = Tracer::new(clock);
        {
            let _a = tracer.span("a");
            ns.store(10, Ordering::SeqCst);
            {
                let _b = tracer.span("b");
                ns.store(20, Ordering::SeqCst);
            }
            ns.store(30, Ordering::SeqCst);
        }
        let recs = tracer.records();
        let a = &recs[0];
        let b = &recs[1];
        assert!(a.start <= b.start && b.end <= a.end);
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let _g = tracer.span("nothing");
        }
        assert!(tracer.records().is_empty());
    }

    #[test]
    fn leaked_inner_guard_does_not_corrupt_the_stack() {
        let tracer = Tracer::new(ObsClock::frozen());
        let outer = tracer.span("outer");
        let inner = tracer.span("inner");
        std::mem::forget(inner); // never drops
        drop(outer); // must still close cleanly
        let _next = tracer.span("next");
        let recs = tracer.records();
        assert_eq!(recs[2].parent, None, "stack was restored");
    }

    #[test]
    fn seq_is_monotonic_even_when_timestamps_are_identical() {
        let tracer = Tracer::new(ObsClock::frozen());
        {
            let _a = tracer.span("a");
            let _b = tracer.span("b");
            let _c = tracer.span("c");
        }
        let recs = tracer.records();
        assert!(recs.iter().all(|r| r.start == Duration::ZERO));
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn journaling_tracer_mirrors_well_nested_begin_end_pairs() {
        let journal = Journal::new(ObsClock::frozen());
        let tracer = Tracer::with_journal(ObsClock::frozen(), journal.clone());
        {
            let outer = tracer.span("outer");
            let inner = tracer.span("inner");
            std::mem::forget(inner); // leaked: closed by the outer drop
            drop(outer);
        }
        let kinds: Vec<String> = journal
            .events()
            .iter()
            .map(|e| match &e.kind {
                EventKind::SpanBegin { name } => format!("+{name}"),
                EventKind::SpanEnd { name } => format!("-{name}"),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(kinds, vec!["+outer", "+inner", "-inner", "-outer"]);
    }
}
