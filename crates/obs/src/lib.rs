//! Observability for the comparison stack: spans, metrics, breakdowns.
//!
//! The paper's claim is a *throughput* claim — error-bounded hashing
//! plus Merkle pruning beats element-wise comparison — so every layer
//! of this workspace needs a way to say where its time and bytes went.
//! This crate is that substrate. It is deliberately zero-dependency
//! (std plus the vendored serialize-only `serde`) and clock-agnostic:
//! all timestamps come from an [`ObsClock`], a closure that can read
//! wall time, a simulated clock, or a device's modeled-time
//! accumulator, so instrumented code behaves identically under
//! simulation and on real hardware.
//!
//! Four facilities, one per module:
//!
//! * [`span`](mod@span) — hierarchical tracing spans ([`Tracer`],
//!   [`span!`]) with enter/exit timestamps and well-nesting enforced by
//!   RAII guards.
//! * [`metrics`] — a typed [`Registry`] of named [`Counter`]s,
//!   [`Gauge`]s, and log2-bucketed [`Histogram`]s, snapshot-able to a
//!   serializable form.
//! * [`stage`] — the [`StageBreakdown`] profile: per-phase
//!   time/bytes/ops for the six pipeline stages (quantize, leaf-hash,
//!   level-build, BFS, stage-2 stream, verify) that
//!   `CompareReport::stages` carries and `reprocmp compare --profile`
//!   renders.
//! * [`cache`](mod@cache) — the [`CacheStats`] ledger of the batch
//!   scheduler's metadata-cache reuse (hits, misses, short-circuits,
//!   and what they saved), carried by `CompareReport::cache`.
//! * [`store`](mod@store) — the [`StoreReadStats`] ledger of reads
//!   resolved through the persistent capture store's pack index
//!   (reads, bytes, deduplicated bytes), carried by
//!   `CompareReport::store`.
//! * [`journal`] — the flight recorder: a lock-striped bounded ring of
//!   typed [`Event`]s with an exact drop ledger and a JSONL sink.
//! * [`export`] — Chrome trace-event / Perfetto JSON and folded-stack
//!   flamegraph exporters over spans + journal events.
//! * [`profile`] — committable [`ProfileBaseline`]s and
//!   [`diff_profiles`] regression detection (`reprocmp perf-diff`).
//! * [`telemetry`] — the live telemetry plane: schema-versioned
//!   daemon-level [`TelemetrySnapshot`]s, the bounded [`TelemetryRing`]
//!   history, the deterministic [`Sampler`], and the Prometheus text
//!   exposition renderer ([`prometheus_text`]).
//!
//! An [`Observer`] bundles a tracer, a registry, and a journal so
//! callers can pass one handle through the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cache;
pub mod export;
pub mod journal;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod stage;
pub mod store;
pub mod telemetry;

pub use cache::CacheStats;
pub use export::{chrome_trace, folded_stacks};
pub use journal::{Event, EventKind, Journal, JournalLedger, JournalSlot};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramBucket, HistogramSnapshot, MetricValue, NamedHistogram,
    Registry, RegistrySnapshot,
};
pub use profile::{diff_profiles, parse_budget, HistogramQuantiles, ProfileBaseline, ProfileDiff};
pub use span::{SpanGuard, SpanRecord, Tracer};
pub use stage::{PhaseCost, StageBreakdown};
pub use store::{StoreReadCounters, StoreReadStats};
pub use telemetry::{
    prometheus_text, JobStateCounts, QueueTelemetry, Sampler, StoreTelemetry, TelemetryRing,
    TelemetrySnapshot, WorkerTelemetry, TELEMETRY_SCHEMA_VERSION,
};

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The time source every span and latency measurement reads.
///
/// A clock is just a shared closure returning a [`Duration`] since some
/// epoch the caller picked. [`ObsClock::wall`] reads a monotonic wall
/// clock; adapters over `SimClock` or a device's modeled-time counter
/// live next to those types (the closure form keeps this crate free of
/// dependencies on them).
#[derive(Clone)]
pub struct ObsClock {
    read: Arc<dyn Fn() -> Duration + Send + Sync>,
}

impl ObsClock {
    /// A clock over an arbitrary time source.
    pub fn from_fn(read: impl Fn() -> Duration + Send + Sync + 'static) -> Self {
        ObsClock {
            read: Arc::new(read),
        }
    }

    /// A monotonic wall clock whose epoch is the moment of creation.
    #[must_use]
    pub fn wall() -> Self {
        let epoch = Instant::now();
        ObsClock::from_fn(move || epoch.elapsed())
    }

    /// A clock frozen at zero — for tests and disabled observers.
    #[must_use]
    pub fn frozen() -> Self {
        ObsClock::from_fn(|| Duration::ZERO)
    }

    /// Time elapsed since the clock's epoch.
    #[must_use]
    pub fn now(&self) -> Duration {
        (self.read)()
    }
}

impl fmt::Debug for ObsClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsClock")
            .field("now", &self.now())
            .finish()
    }
}

impl Default for ObsClock {
    fn default() -> Self {
        ObsClock::wall()
    }
}

/// One observability context: a span tracer, a metrics registry, and a
/// flight-recorder journal sharing a clock. Cheap to clone; clones
/// share state.
#[derive(Debug, Clone)]
pub struct Observer {
    /// Hierarchical span tracer.
    pub tracer: Tracer,
    /// Named metrics registry.
    pub registry: Registry,
    journal: Journal,
}

impl Observer {
    /// An enabled observer reading timestamps from `clock`. The journal
    /// stays disabled — event recording is strictly opt-in (see
    /// [`Observer::with_journal`]).
    #[must_use]
    pub fn new(clock: ObsClock) -> Self {
        Observer {
            tracer: Tracer::new(clock),
            registry: Registry::new(),
            journal: Journal::disabled(),
        }
    }

    /// An enabled observer that additionally records flight-recorder
    /// events (spans mirror into the journal as begin/end pairs).
    #[must_use]
    pub fn with_journal(clock: ObsClock) -> Self {
        let journal = Journal::new(clock.clone());
        Observer {
            tracer: Tracer::with_journal(clock, journal.clone()),
            registry: Registry::new(),
            journal,
        }
    }

    /// An observer that records nothing: spans are no-ops (the registry
    /// still works — counters are too cheap to be worth gating).
    #[must_use]
    pub fn disabled() -> Self {
        Observer {
            tracer: Tracer::disabled(),
            registry: Registry::new(),
            journal: Journal::disabled(),
        }
    }

    /// The flight-recorder handle. Disabled unless the observer was
    /// built with [`Observer::with_journal`]; emitting through a
    /// disabled journal costs one branch.
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new(ObsClock::wall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn wall_clock_is_monotonic() {
        let c = ObsClock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn from_fn_reads_the_given_source() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        let c = ObsClock::from_fn(move || Duration::from_nanos(t.load(Ordering::SeqCst)));
        assert_eq!(c.now(), Duration::ZERO);
        ticks.store(42, Ordering::SeqCst);
        assert_eq!(c.now(), Duration::from_nanos(42));
    }

    #[test]
    fn frozen_clock_never_advances() {
        let c = ObsClock::frozen();
        assert_eq!(c.now(), Duration::ZERO);
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn observer_clones_share_state() {
        let obs = Observer::new(ObsClock::frozen());
        let clone = obs.clone();
        clone.registry.counter("x").add(3);
        assert_eq!(obs.registry.counter("x").get(), 3);
        let _g = clone.tracer.span("root");
        drop(_g);
        assert_eq!(obs.tracer.records().len(), 1);
    }

    #[test]
    fn disabled_observer_records_no_spans() {
        let obs = Observer::disabled();
        {
            let _g = obs.tracer.span("invisible");
        }
        assert!(obs.tracer.records().is_empty());
    }
}
