//! The wire protocol: length-prefixed JSON frames, tagged
//! request/response objects, and their hand-written codecs.
//!
//! # Framing
//!
//! Every message is one frame: a little-endian `u32` byte length
//! followed by that many bytes of UTF-8 JSON. [`write_frame`] /
//! [`read_frame`] implement it over any `Write`/`Read`.
//!
//! # Schema evolution
//!
//! Objects are tagged with a `"type"` field. Decoders read only the
//! fields they know and ignore everything else, so the protocol can
//! evolve **additively**: new fields and new message types never break
//! an old peer's ability to parse what it understands. The committed
//! fixtures under `tests/goldens/wire/` pin today's encodings the same
//! way the `legacy_pre_*.json` report fixtures pin the report schema.

use serde::{Serialize, Value};

use crate::json::{self, get, get_array, get_str, get_u64};

/// Protocol revision spoken by this build. Bumped only for additive
/// changes; peers accept any `protocol >= 1` hello.
pub const PROTOCOL_VERSION: u64 = 1;

/// Frames larger than this are rejected as corrupt rather than
/// allocated (64 MiB — far above any legitimate message).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// A wire-level failure: framing, JSON, or schema.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket/pipe failure.
    Io(std::io::Error),
    /// The frame payload was not valid JSON.
    Json(json::JsonError),
    /// The JSON did not shape up as any known message.
    Schema(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "wire i/o failure: {e}"),
            ProtoError::Json(e) => write!(f, "wire frame is not JSON: {e}"),
            ProtoError::Schema(msg) => write!(f, "unintelligible message: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Json(e) => Some(e),
            ProtoError::Schema(_) => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Underlying write failures.
pub fn write_frame(w: &mut dyn std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Underlying read failures, EOF mid-frame, or an implausible length
/// prefix (> [`MAX_FRAME_BYTES`]).
pub fn read_frame(r: &mut dyn std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Lowercase-hex encoding for payload bytes on the wire.
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[usize::from(b >> 4)] as char);
        out.push(DIGITS[usize::from(b & 0xf)] as char);
    }
    out
}

/// Decodes [`hex_encode`]'s output.
///
/// # Errors
///
/// A human-readable message for odd length or non-hex digits.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("hex payload has odd length {}", s.len()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = hex_digit(pair[0])?;
        let lo = hex_digit(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_digit(b: u8) -> Result<u8, String> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        other => Err(format!("invalid hex digit {:?}", other as char)),
    }
}

/// A stored object reference: `name@version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRef {
    /// Checkpoint name.
    pub name: String,
    /// Checkpoint version.
    pub version: u64,
}

impl ObjectRef {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_owned(), Value::String(self.name.clone())),
            ("version".to_owned(), Value::UInt(self.version)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ProtoError> {
        Ok(ObjectRef {
            name: get_str(v, "name")
                .ok_or_else(|| schema("object ref missing `name`"))?
                .to_owned(),
            version: get_u64(v, "version").ok_or_else(|| schema("object ref missing `version`"))?,
        })
    }
}

/// Everything a client can ask the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session opener; the server answers with [`Response::HelloOk`].
    Hello {
        /// Client identity used for fair queuing.
        client: String,
        /// Protocol revision the client speaks.
        protocol: u64,
    },
    /// Store a checkpoint payload as `name@version` (job-queued).
    Ingest {
        /// Checkpoint name.
        name: String,
        /// Checkpoint version.
        version: u64,
        /// Store chunk size for this object.
        chunk_bytes: u64,
        /// Raw payload bytes, hex-encoded.
        data: String,
    },
    /// Compare two stored objects (job-queued).
    Compare {
        /// Left-hand object.
        left: ObjectRef,
        /// Right-hand object.
        right: ObjectRef,
    },
    /// Compare many runs against one baseline as a scheduled batch
    /// (job-queued).
    CompareMany {
        /// The shared baseline.
        baseline: ObjectRef,
        /// The runs, each compared against the baseline.
        runs: Vec<ObjectRef>,
    },
    /// Reconstruct a stored object's bytes (job-queued).
    Materialize {
        /// Checkpoint name.
        name: String,
        /// Checkpoint version.
        version: u64,
    },
    /// Query a job. With `wait`, the server answers only once the job
    /// is terminal.
    Status {
        /// Job id from [`Response::Accepted`].
        job: u64,
        /// Block until the job completes or fails.
        wait: bool,
    },
    /// Stream a finished job's flight-recorder events
    /// ([`Response::Event`] frames) followed by [`Response::Done`].
    Watch {
        /// Job id from [`Response::Accepted`].
        job: u64,
    },
    /// Take one telemetry sample right now and answer with a
    /// [`Response::Telemetry`] frame (rendering — JSON or Prometheus
    /// text — is the client's concern).
    Metrics,
    /// Stream telemetry snapshots — the retained history first, then
    /// live samples as they land — as [`Response::Telemetry`] frames
    /// followed by a terminal [`Response::TelemetryEnd`].
    SubscribeTelemetry {
        /// Stop after this many snapshots; `0` streams until the
        /// daemon shuts down.
        max: u64,
    },
    /// Ask the daemon to drain in-flight jobs and exit.
    Shutdown,
}

impl Request {
    /// The `"type"` tag this request serializes under.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ingest { .. } => "ingest",
            Request::Compare { .. } => "compare",
            Request::CompareMany { .. } => "compare_many",
            Request::Materialize { .. } => "materialize",
            Request::Status { .. } => "status",
            Request::Watch { .. } => "watch",
            Request::Metrics => "metrics",
            Request::SubscribeTelemetry { .. } => "subscribe_telemetry",
            Request::Shutdown => "shutdown",
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on bad JSON or an unknown/missing shape.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let v = parse_payload(payload)?;
        let tag = get_str(&v, "type").ok_or_else(|| schema("request missing `type`"))?;
        match tag {
            "hello" => Ok(Request::Hello {
                client: get_str(&v, "client")
                    .ok_or_else(|| schema("hello missing `client`"))?
                    .to_owned(),
                protocol: get_u64(&v, "protocol").unwrap_or(PROTOCOL_VERSION),
            }),
            "ingest" => Ok(Request::Ingest {
                name: req_str(&v, "name")?,
                version: req_u64(&v, "version")?,
                chunk_bytes: req_u64(&v, "chunk_bytes")?,
                data: req_str(&v, "data")?,
            }),
            "compare" => Ok(Request::Compare {
                left: ObjectRef::from_value(
                    get(&v, "left").ok_or_else(|| schema("compare missing `left`"))?,
                )?,
                right: ObjectRef::from_value(
                    get(&v, "right").ok_or_else(|| schema("compare missing `right`"))?,
                )?,
            }),
            "compare_many" => {
                let baseline = ObjectRef::from_value(
                    get(&v, "baseline").ok_or_else(|| schema("compare_many missing `baseline`"))?,
                )?;
                let runs = get_array(&v, "runs")
                    .ok_or_else(|| schema("compare_many missing `runs`"))?
                    .iter()
                    .map(ObjectRef::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::CompareMany { baseline, runs })
            }
            "materialize" => Ok(Request::Materialize {
                name: req_str(&v, "name")?,
                version: req_u64(&v, "version")?,
            }),
            "status" => Ok(Request::Status {
                job: req_u64(&v, "job")?,
                wait: matches!(get(&v, "wait"), Some(Value::Bool(true))),
            }),
            "watch" => Ok(Request::Watch {
                job: req_u64(&v, "job")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "subscribe_telemetry" => Ok(Request::SubscribeTelemetry {
                max: get_u64(&v, "max").unwrap_or(0),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(schema(format!("unknown request type `{other}`"))),
        }
    }
}

// The vendored derive handles named-field structs only, so the tagged
// enums flatten by hand (the same pattern as `obs::Event`).
impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut fields = vec![(
            "type".to_owned(),
            Value::String(self.type_name().to_owned()),
        )];
        match self {
            Request::Hello { client, protocol } => {
                fields.push(("client".to_owned(), Value::String(client.clone())));
                fields.push(("protocol".to_owned(), Value::UInt(*protocol)));
            }
            Request::Ingest {
                name,
                version,
                chunk_bytes,
                data,
            } => {
                fields.push(("name".to_owned(), Value::String(name.clone())));
                fields.push(("version".to_owned(), Value::UInt(*version)));
                fields.push(("chunk_bytes".to_owned(), Value::UInt(*chunk_bytes)));
                fields.push(("data".to_owned(), Value::String(data.clone())));
            }
            Request::Compare { left, right } => {
                fields.push(("left".to_owned(), left.to_value()));
                fields.push(("right".to_owned(), right.to_value()));
            }
            Request::CompareMany { baseline, runs } => {
                fields.push(("baseline".to_owned(), baseline.to_value()));
                fields.push((
                    "runs".to_owned(),
                    Value::Array(runs.iter().map(ObjectRef::to_value).collect()),
                ));
            }
            Request::Materialize { name, version } => {
                fields.push(("name".to_owned(), Value::String(name.clone())));
                fields.push(("version".to_owned(), Value::UInt(*version)));
            }
            Request::Status { job, wait } => {
                fields.push(("job".to_owned(), Value::UInt(*job)));
                fields.push(("wait".to_owned(), Value::Bool(*wait)));
            }
            Request::Watch { job } => {
                fields.push(("job".to_owned(), Value::UInt(*job)));
            }
            Request::Metrics => {}
            Request::SubscribeTelemetry { max } => {
                fields.push(("max".to_owned(), Value::UInt(*max)));
            }
            Request::Shutdown => {}
        }
        Value::Object(fields)
    }
}

/// Lifecycle of a queued job as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is attached.
    Done,
    /// Failed; the error message is attached.
    Failed,
}

impl JobState {
    /// Wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Parses the wire spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }

    /// Whether the job will never change state again.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session accepted.
    HelloOk {
        /// Server software name.
        server: String,
        /// Protocol revision the server speaks.
        protocol: u64,
        /// Admission-control bound on in-flight jobs.
        queue_capacity: u64,
    },
    /// The job was admitted to the queue.
    Accepted {
        /// Its id, for `status`/`watch`.
        job: u64,
    },
    /// Admission control refused the job — backpressure, retry later.
    Rejected {
        /// Why (queue full, shutting down, …).
        reason: String,
    },
    /// A job's current state; `result`/`error` attached when terminal.
    Status {
        /// Job id.
        job: u64,
        /// Current lifecycle state.
        state: JobState,
        /// The job's result document (ingest stats, compare report,
        /// …) when `state` is `done`.
        result: Option<Value>,
        /// The failure message when `state` is `failed`.
        error: Option<String>,
    },
    /// One flight-recorder event from a watched job's execution.
    Event {
        /// Job id.
        job: u64,
        /// Event sequence number within the job's journal.
        seq: u64,
        /// Event timestamp on the job's deterministic timeline, ns.
        ts_ns: u64,
        /// Journal lane.
        lane: String,
        /// Event `type` tag (e.g. `chunk_read`, `kernel`).
        kind: String,
    },
    /// Terminal frame of a `watch` stream.
    Done {
        /// Job id.
        job: u64,
        /// Final state ([`JobState::Done`] or [`JobState::Failed`]).
        state: JobState,
        /// Journal ledger of the job's execution:
        /// `emitted == written + dropped`, always balanced.
        events_emitted: u64,
        /// Events retained and streamed.
        events_written: u64,
        /// Events evicted under the capacity bound.
        events_dropped: u64,
    },
    /// One telemetry snapshot — the answer to `metrics` and each
    /// element of a `subscribe_telemetry` stream.
    Telemetry {
        /// The serialized `TelemetrySnapshot` document (kept as a
        /// value so old clients pass unknown fields through).
        snapshot: Value,
    },
    /// Terminal frame of a `subscribe_telemetry` stream.
    TelemetryEnd {
        /// Snapshots streamed before the stream ended.
        snapshots: u64,
    },
    /// A request-level failure (unknown job, bad payload, …).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// The `"type"` tag this response serializes under.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Response::HelloOk { .. } => "hello_ok",
            Response::Accepted { .. } => "accepted",
            Response::Rejected { .. } => "rejected",
            Response::Status { .. } => "status",
            Response::Event { .. } => "event",
            Response::Done { .. } => "done",
            Response::Telemetry { .. } => "telemetry",
            Response::TelemetryEnd { .. } => "telemetry_end",
            Response::Error { .. } => "error",
        }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on bad JSON or an unknown/missing shape.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let v = parse_payload(payload)?;
        let tag = get_str(&v, "type").ok_or_else(|| schema("response missing `type`"))?;
        match tag {
            "hello_ok" => Ok(Response::HelloOk {
                server: req_str(&v, "server")?,
                protocol: req_u64(&v, "protocol")?,
                queue_capacity: get_u64(&v, "queue_capacity").unwrap_or(0),
            }),
            "accepted" => Ok(Response::Accepted {
                job: req_u64(&v, "job")?,
            }),
            "rejected" => Ok(Response::Rejected {
                reason: req_str(&v, "reason")?,
            }),
            "status" => {
                let state = get_str(&v, "state")
                    .and_then(JobState::parse)
                    .ok_or_else(|| schema("status missing `state`"))?;
                Ok(Response::Status {
                    job: req_u64(&v, "job")?,
                    state,
                    result: get(&v, "result").cloned(),
                    error: get_str(&v, "error").map(str::to_owned),
                })
            }
            "event" => Ok(Response::Event {
                job: req_u64(&v, "job")?,
                seq: req_u64(&v, "seq")?,
                ts_ns: req_u64(&v, "ts_ns")?,
                lane: req_str(&v, "lane")?,
                kind: req_str(&v, "kind")?,
            }),
            "done" => {
                let state = get_str(&v, "state")
                    .and_then(JobState::parse)
                    .ok_or_else(|| schema("done missing `state`"))?;
                Ok(Response::Done {
                    job: req_u64(&v, "job")?,
                    state,
                    events_emitted: get_u64(&v, "events_emitted").unwrap_or(0),
                    events_written: get_u64(&v, "events_written").unwrap_or(0),
                    events_dropped: get_u64(&v, "events_dropped").unwrap_or(0),
                })
            }
            "telemetry" => Ok(Response::Telemetry {
                snapshot: get(&v, "snapshot")
                    .cloned()
                    .ok_or_else(|| schema("telemetry missing `snapshot`"))?,
            }),
            "telemetry_end" => Ok(Response::TelemetryEnd {
                snapshots: get_u64(&v, "snapshots").unwrap_or(0),
            }),
            "error" => Ok(Response::Error {
                message: req_str(&v, "message")?,
            }),
            other => Err(schema(format!("unknown response type `{other}`"))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut fields = vec![(
            "type".to_owned(),
            Value::String(self.type_name().to_owned()),
        )];
        match self {
            Response::HelloOk {
                server,
                protocol,
                queue_capacity,
            } => {
                fields.push(("server".to_owned(), Value::String(server.clone())));
                fields.push(("protocol".to_owned(), Value::UInt(*protocol)));
                fields.push(("queue_capacity".to_owned(), Value::UInt(*queue_capacity)));
            }
            Response::Accepted { job } => {
                fields.push(("job".to_owned(), Value::UInt(*job)));
            }
            Response::Rejected { reason } => {
                fields.push(("reason".to_owned(), Value::String(reason.clone())));
            }
            Response::Status {
                job,
                state,
                result,
                error,
            } => {
                fields.push(("job".to_owned(), Value::UInt(*job)));
                fields.push(("state".to_owned(), Value::String(state.as_str().to_owned())));
                if let Some(result) = result {
                    fields.push(("result".to_owned(), result.clone()));
                }
                if let Some(error) = error {
                    fields.push(("error".to_owned(), Value::String(error.clone())));
                }
            }
            Response::Event {
                job,
                seq,
                ts_ns,
                lane,
                kind,
            } => {
                fields.push(("job".to_owned(), Value::UInt(*job)));
                fields.push(("seq".to_owned(), Value::UInt(*seq)));
                fields.push(("ts_ns".to_owned(), Value::UInt(*ts_ns)));
                fields.push(("lane".to_owned(), Value::String(lane.clone())));
                fields.push(("kind".to_owned(), Value::String(kind.clone())));
            }
            Response::Done {
                job,
                state,
                events_emitted,
                events_written,
                events_dropped,
            } => {
                fields.push(("job".to_owned(), Value::UInt(*job)));
                fields.push(("state".to_owned(), Value::String(state.as_str().to_owned())));
                fields.push(("events_emitted".to_owned(), Value::UInt(*events_emitted)));
                fields.push(("events_written".to_owned(), Value::UInt(*events_written)));
                fields.push(("events_dropped".to_owned(), Value::UInt(*events_dropped)));
            }
            Response::Telemetry { snapshot } => {
                fields.push(("snapshot".to_owned(), snapshot.clone()));
            }
            Response::TelemetryEnd { snapshots } => {
                fields.push(("snapshots".to_owned(), Value::UInt(*snapshots)));
            }
            Response::Error { message } => {
                fields.push(("message".to_owned(), Value::String(message.clone())));
            }
        }
        Value::Object(fields)
    }
}

/// Serializes any protocol message to its frame payload bytes.
#[must_use]
pub fn encode(msg: &impl Serialize) -> Vec<u8> {
    serde_json::to_string(msg).unwrap_or_default().into_bytes()
}

fn parse_payload(payload: &[u8]) -> Result<Value, ProtoError> {
    let text = std::str::from_utf8(payload).map_err(|_| schema("frame payload is not UTF-8"))?;
    json::parse(text).map_err(ProtoError::Json)
}

fn schema(msg: impl Into<String>) -> ProtoError {
    ProtoError::Schema(msg.into())
}

fn req_str(v: &Value, key: &str) -> Result<String, ProtoError> {
    get_str(v, key)
        .map(str::to_owned)
        .ok_or_else(|| schema(format!("missing string field `{key}`")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, ProtoError> {
    get_u64(v, key).ok_or_else(|| schema(format!("missing integer field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_round_trips_through_its_frame() {
        let reqs = vec![
            Request::Hello {
                client: "c1".into(),
                protocol: PROTOCOL_VERSION,
            },
            Request::Ingest {
                name: "run".into(),
                version: 3,
                chunk_bytes: 4096,
                data: hex_encode(&[0xde, 0xad, 0xbe, 0xef]),
            },
            Request::Compare {
                left: ObjectRef {
                    name: "a".into(),
                    version: 1,
                },
                right: ObjectRef {
                    name: "b".into(),
                    version: 2,
                },
            },
            Request::CompareMany {
                baseline: ObjectRef {
                    name: "base".into(),
                    version: 1,
                },
                runs: vec![
                    ObjectRef {
                        name: "r1".into(),
                        version: 1,
                    },
                    ObjectRef {
                        name: "r2".into(),
                        version: 1,
                    },
                ],
            },
            Request::Materialize {
                name: "run".into(),
                version: 3,
            },
            Request::Status { job: 7, wait: true },
            Request::Watch { job: 7 },
            Request::Metrics,
            Request::SubscribeTelemetry { max: 4 },
            Request::SubscribeTelemetry { max: 0 },
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode(&req);
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn every_response_round_trips_through_its_frame() {
        let resps = vec![
            Response::HelloOk {
                server: "reprocmp-server".into(),
                protocol: 1,
                queue_capacity: 64,
            },
            Response::Accepted { job: 9 },
            Response::Rejected {
                reason: "queue full".into(),
            },
            Response::Status {
                job: 9,
                state: JobState::Done,
                result: Some(Value::Object(vec![("bytes".to_owned(), Value::UInt(4096))])),
                error: None,
            },
            Response::Status {
                job: 9,
                state: JobState::Failed,
                result: None,
                error: Some("no such object".into()),
            },
            Response::Event {
                job: 9,
                seq: 0,
                ts_ns: 1200,
                lane: "main".into(),
                kind: "chunk_read".into(),
            },
            Response::Done {
                job: 9,
                state: JobState::Done,
                events_emitted: 10,
                events_written: 10,
                events_dropped: 0,
            },
            Response::Telemetry {
                snapshot: Value::Object(vec![
                    ("schema".to_owned(), Value::UInt(1)),
                    ("seq".to_owned(), Value::UInt(12)),
                ]),
            },
            Response::TelemetryEnd { snapshots: 12 },
            Response::Error {
                message: "unknown job 4".into(),
            },
        ];
        for resp in resps {
            let bytes = encode(&resp);
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn framing_round_trips_and_rejects_implausible_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        let mut bad = std::io::Cursor::new((MAX_FRAME_BYTES + 1).to_le_bytes().to_vec());
        assert!(read_frame(&mut bad).is_err(), "oversized length prefix");
        let mut torn = std::io::Cursor::new(vec![8, 0, 0, 0, 1, 2]);
        assert!(read_frame(&mut torn).is_err(), "EOF mid-frame");
    }

    #[test]
    fn hex_codec_round_trips_and_rejects_junk() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex digit");
    }

    #[test]
    fn unknown_fields_are_ignored_additively() {
        let doc = br#"{"type":"accepted","job":3,"added_in_v2":{"deep":[1,2,3]}}"#;
        assert_eq!(
            Response::decode(doc).unwrap(),
            Response::Accepted { job: 3 }
        );
    }
}
