//! Comparison-as-a-service: a long-running daemon that owns the
//! capture [`ChunkStore`] and serves ingest/compare/materialize jobs
//! to many concurrent clients.
//!
//! # Architecture
//!
//! ```text
//!  clients ──frames──▶ transport ──▶ dispatch ──▶ JobQueue (DRR +
//!   (TCP /              (one loop     (proto)      admission control)
//!    in-process)         per conn)                      │ pop
//!                                                       ▼
//!                                                  worker pool
//!                                                       │ execute_spec
//!                                                       ▼
//!                                     ChunkStore + CompareEngine
//!                                     (exclusive advisory lock)
//! ```
//!
//! * [`proto`] — the length-prefixed JSON wire protocol, evolvable
//!   additively (decoders ignore unknown fields);
//! * [`queue`] — deficit-round-robin fair queuing with a hard
//!   admission bound (backpressure instead of unbounded backlog);
//! * [`server`] — the daemon: exclusive store ownership, the worker
//!   pool, and the deterministic per-job execution path
//!   ([`execute_spec`]) shared with the offline oracle;
//! * [`transport`] — TCP and in-process connection plumbing feeding
//!   one dispatch loop;
//! * [`client`] — the typed client library the CLI verbs build on.
//!
//! # The concurrency-equivalence oracle
//!
//! The crate's headline guarantee, proven by `tests/server_oracle.rs`:
//! any mix of concurrent clients produces **byte-identical** job
//! results to the same jobs run serially offline, because every job
//! executes on its own simulated timeline with its own journal and
//! cache, against a store whose contents are the only shared state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod proto;
pub mod queue;
pub mod server;
pub mod transport;

pub use client::{
    ClientError, ClientResult, RemoteStatus, ServerClient, ServerInfo, WatchSummary, WatchedEvent,
};
pub use proto::{JobState, ObjectRef, ProtoError, Request, Response, PROTOCOL_VERSION};
pub use queue::{AdmitError, JobQueue, QueueStats, QueuedJob};
pub use server::{
    execute_spec, JobOutcome, JobSpec, JobStatus, Server, ServerConfig, ServerError, ServerResult,
};
pub use transport::{pair, serve_connection, ChannelConn, Conn, TcpConn, TcpTransport};

#[doc(no_inline)]
pub use reprocmp_store::ChunkStore;
