//! Transports and the per-connection dispatch loop.
//!
//! Two interchangeable transports carry the framed protocol:
//!
//! * **TCP** ([`TcpTransport`]) — the real daemon surface, one handler
//!   thread per accepted connection;
//! * **in-process** ([`pair`]) — two channel-backed [`Conn`] halves,
//!   letting tests drive many concurrent "clients" against one daemon
//!   without sockets (and deterministically, since nothing crosses the
//!   kernel).
//!
//! Both feed the same [`serve_connection`] loop, so the oracle suite
//! exercises the exact dispatch path production traffic takes.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use serde::Serialize;

use crate::proto::{encode, read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use crate::queue::AdmitError;
use crate::server::{JobSpec, Server};

/// A bidirectional frame pipe: one payload per send/recv.
pub trait Conn: Send {
    /// Sends one frame payload.
    ///
    /// # Errors
    ///
    /// Underlying transport failures (peer gone, socket error).
    fn send(&mut self, payload: &[u8]) -> std::io::Result<()>;

    /// Receives one frame payload; `Ok(None)` when the peer hung up
    /// cleanly.
    ///
    /// # Errors
    ///
    /// Underlying transport failures or torn frames.
    fn recv(&mut self) -> std::io::Result<Option<Vec<u8>>>;
}

/// [`Conn`] over a TCP stream using the length-prefixed framing.
#[derive(Debug)]
pub struct TcpConn {
    stream: TcpStream,
}

impl TcpConn {
    /// Wraps a connected stream.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        TcpConn { stream }
    }

    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(TcpConn {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl Conn for TcpConn {
    fn send(&mut self, payload: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    fn recv(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.stream)
    }
}

impl Read for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// One half of an in-process connection (see [`pair`]).
#[derive(Debug)]
pub struct ChannelConn {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// An in-process connection: two [`ChannelConn`] halves whose sends
/// arrive at the other half's recv, mimicking a socket without one.
#[must_use]
pub fn pair() -> (ChannelConn, ChannelConn) {
    let (a_tx, a_rx) = channel::unbounded();
    let (b_tx, b_rx) = channel::unbounded();
    (
        ChannelConn { tx: a_tx, rx: b_rx },
        ChannelConn { tx: b_tx, rx: a_rx },
    )
}

impl Conn for ChannelConn {
    fn send(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer disconnected"))
    }

    fn recv(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        match self.rx.recv() {
            Ok(payload) => Ok(Some(payload)),
            Err(_) => Ok(None), // peer dropped its half: clean EOF
        }
    }
}

/// Serves one connection until the peer hangs up: decode each request,
/// dispatch against `server`, answer with one or more response frames.
/// Never panics on hostile input — malformed frames get a typed
/// `error` response (or close the connection on framing corruption).
///
/// # Errors
///
/// Transport-level failures only; protocol-level problems are answered
/// in-band.
pub fn serve_connection(server: &Server, conn: &mut dyn Conn) -> std::io::Result<()> {
    // Fair-queuing identity until (and unless) the client says hello.
    let mut client = String::from("anonymous");
    while let Some(payload) = conn.recv()? {
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                conn.send(&encode(&Response::Error {
                    message: e.to_string(),
                }))?;
                continue;
            }
        };
        match request {
            Request::Hello {
                client: name,
                protocol: _,
            } => {
                client = name;
                conn.send(&encode(&Response::HelloOk {
                    server: "reprocmp-server".to_owned(),
                    protocol: PROTOCOL_VERSION,
                    queue_capacity: server.queue().capacity() as u64,
                }))?;
            }
            Request::Status { job, wait } => {
                let status = if wait {
                    server.wait(job)
                } else {
                    server.status(job)
                };
                let response = match status {
                    Some(s) => Response::Status {
                        job,
                        state: s.state,
                        result: s.result,
                        error: s.error,
                    },
                    None => Response::Error {
                        message: format!("unknown job {job}"),
                    },
                };
                conn.send(&encode(&response))?;
            }
            Request::Watch { job } => match server.job_journal(job) {
                Some((events, ledger)) => {
                    for event in &events {
                        conn.send(&encode(&Response::Event {
                            job,
                            seq: event.seq,
                            ts_ns: event.ts_ns(),
                            lane: event.lane.clone(),
                            kind: event.kind.type_name().to_owned(),
                        }))?;
                    }
                    let state = server
                        .status(job)
                        .map_or(crate::proto::JobState::Done, |s| s.state);
                    conn.send(&encode(&Response::Done {
                        job,
                        state,
                        events_emitted: ledger.events_emitted,
                        events_written: ledger.events_written,
                        events_dropped: ledger.events_dropped,
                    }))?;
                }
                None => {
                    conn.send(&encode(&Response::Error {
                        message: format!("unknown job {job}"),
                    }))?;
                }
            },
            Request::Metrics => {
                let snapshot = server.sample_telemetry_now();
                conn.send(&encode(&Response::Telemetry {
                    snapshot: snapshot.to_value(),
                }))?;
            }
            Request::SubscribeTelemetry { max } => {
                // Stream the retained ring first, then live samples as
                // they land; `max == 0` runs until daemon shutdown. The
                // terminal `telemetry_end` frame is guaranteed even on
                // drain, so subscribers never hang on a stopping daemon.
                let mut sent: u64 = 0;
                let mut last_seq: u64 = 0;
                'stream: loop {
                    let batch = server.wait_telemetry_after(last_seq);
                    if batch.is_empty() {
                        break; // daemon stopping: no more samples will land
                    }
                    for snapshot in batch {
                        last_seq = snapshot.seq;
                        conn.send(&encode(&Response::Telemetry {
                            snapshot: snapshot.to_value(),
                        }))?;
                        sent += 1;
                        if max != 0 && sent >= max {
                            break 'stream;
                        }
                    }
                }
                conn.send(&encode(&Response::TelemetryEnd { snapshots: sent }))?;
            }
            Request::Shutdown => {
                // Ack first, then flag the daemon: the accept loop
                // drains in-flight jobs before exiting.
                conn.send(&encode(&Response::Accepted { job: 0 }))?;
                server.request_stop();
            }
            job_request => {
                let response = match JobSpec::from_request(&job_request)
                    .expect("non-session verbs carry a job spec")
                {
                    Ok(spec) => match server.submit(&client, spec) {
                        Ok(job) => Response::Accepted { job },
                        Err(e @ AdmitError::Backpressure { .. })
                        | Err(e @ AdmitError::ShuttingDown) => Response::Rejected {
                            reason: e.to_string(),
                        },
                    },
                    Err(message) => Response::Error {
                        message: format!("bad job payload: {message}"),
                    },
                };
                conn.send(&encode(&response))?;
            }
        }
    }
    Ok(())
}

/// The TCP accept loop: binds, serves until a client sends `shutdown`
/// (or [`Server::request_stop`] fires), then drains the daemon.
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds; `127.0.0.1:0` picks an ephemeral port (see
    /// [`TcpTransport::addr`]).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts and serves connections until the server's stop flag is
    /// raised, then gracefully shuts the daemon down (drain + join).
    ///
    /// # Errors
    ///
    /// Listener-level failures; per-connection errors only drop that
    /// connection.
    pub fn run(&self, server: &Arc<Server>) -> std::io::Result<()> {
        // Non-blocking accept so the loop can observe the stop flag
        // without needing a wake-up connection.
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut streams: Vec<TcpStream> = Vec::new();
        while !server.stop_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        streams.push(clone);
                    }
                    let server = Arc::clone(server);
                    handlers.push(std::thread::spawn(move || {
                        let mut conn = TcpConn::new(stream);
                        let _ = serve_connection(&server, &mut conn);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain the daemon BEFORE joining handlers: blocked `status
        // --wait` / `watch` / telemetry subscribers need in-flight jobs
        // to finish (and the stop flag to propagate) so they can send
        // their terminal frames instead of deadlocking the join below.
        server.shutdown();
        // EOF-unblock handlers idling in `recv` on a quiet connection;
        // half-close only, so pending responses still flush out.
        for stream in &streams {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_carries_frames_both_ways_and_signals_eof() {
        let (mut a, mut b) = pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some(&b"ping"[..]));
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some(&b"pong"[..]));
        drop(a);
        assert_eq!(b.recv().unwrap(), None, "peer drop is clean EOF");
    }
}
