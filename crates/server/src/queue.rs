//! The admission-controlled, deficit-round-robin job queue.
//!
//! # Admission control
//!
//! The queue bounds *in-flight* jobs — queued **plus** executing —
//! at a fixed capacity. [`JobQueue::enqueue`] never blocks: when the
//! bound is reached it returns [`AdmitError::Backpressure`]
//! immediately, and the client retries (the wire layer surfaces it as
//! a `rejected` frame). A job stops counting against the bound only
//! when a worker calls [`JobQueue::finish`] after executing it, so
//! capacity is a true concurrency/backlog bound, not just a buffer
//! size. Once admitted, a job is *never* dropped: it is handed to
//! exactly one [`JobQueue::pop`] caller, even across shutdown (drain
//! semantics).
//!
//! # Fairness: deficit round robin
//!
//! Each client has its own FIFO; active clients sit in a round-robin
//! ring. On each visit to the ring head the client's *deficit* grows
//! by one quantum; jobs are served while the head job's cost fits the
//! deficit, then the client rotates to the tail. Costs let one
//! client's huge ingests coexist with another's cheap compares: the
//! big job waits, accumulating quantum, while small jobs from other
//! clients keep flowing — classic DRR, so each client's long-run
//! share of service is cost-proportional and, with equal costs, the
//! pop order is an exact round robin (the oracle suite proves both).
//!
//! All waiting/serving bookkeeping uses logical *ticks* (one per pop)
//! rather than wall time, so fairness properties are deterministic
//! and provable under any thread interleaving.

use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};

/// Why [`JobQueue::enqueue`] refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The in-flight bound is reached; retry after jobs finish.
    Backpressure {
        /// Jobs currently in flight (queued + executing).
        in_flight: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The queue is shutting down; no new jobs are admitted.
    ShuttingDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Backpressure {
                in_flight,
                capacity,
            } => write!(
                f,
                "queue full: {in_flight}/{capacity} jobs in flight; retry later"
            ),
            AdmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// One admitted job as handed to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// The id the caller supplied at enqueue.
    pub id: u64,
    /// Owning client (fairness key).
    pub client: String,
    /// DRR cost charged for this job.
    pub cost: u64,
    /// Pop tick at which the job was admitted (ticks advance one per
    /// pop), for wait accounting.
    pub enqueued_tick: u64,
    /// Pop tick at which the job was served.
    pub served_tick: u64,
}

#[derive(Debug, Default)]
struct ClientLane {
    jobs: VecDeque<(u64, u64, u64)>, // (id, cost, enqueued_tick)
    deficit: u64,
    /// Whether the current head visit already granted this lane its
    /// quantum (cleared when the lane rotates away).
    charged: bool,
}

#[derive(Debug)]
struct QueueState {
    lanes: BTreeMap<String, ClientLane>,
    ring: VecDeque<String>,
    in_flight: usize,
    queued: usize,
    ticks: u64,
    admitted: u64,
    refused: u64,
    shutting_down: bool,
}

/// A point-in-time reading of the queue's pressure counters, taken
/// atomically under the queue lock (the telemetry sampler's view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// The admission bound.
    pub capacity: usize,
    /// Jobs admitted but not yet served.
    pub queued: usize,
    /// Jobs counting against the bound (queued + executing).
    pub in_flight: usize,
    /// Jobs admitted since the queue was created (monotonic).
    pub admitted: u64,
    /// Jobs refused — backpressure or shutdown — since creation
    /// (monotonic).
    pub refused: u64,
    /// Whether admission has stopped.
    pub shutting_down: bool,
}

/// The shared queue. All methods take `&self`; share behind an `Arc`.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    wake: Condvar,
    capacity: usize,
    quantum: u64,
}

impl JobQueue {
    /// A queue admitting at most `capacity` in-flight jobs, serving
    /// `quantum` cost units per client per round-robin visit.
    #[must_use]
    pub fn new(capacity: usize, quantum: u64) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: BTreeMap::new(),
                ring: VecDeque::new(),
                in_flight: 0,
                queued: 0,
                ticks: 0,
                admitted: 0,
                refused: 0,
                shutting_down: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            quantum: quantum.max(1),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently counting against the bound (queued + executing).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// Admits one job for `client`, or refuses without blocking.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Backpressure`] at the in-flight bound;
    /// [`AdmitError::ShuttingDown`] after [`JobQueue::shutdown`].
    pub fn enqueue(&self, client: &str, id: u64, cost: u64) -> Result<(), AdmitError> {
        let mut s = self.state.lock();
        if s.shutting_down {
            s.refused += 1;
            return Err(AdmitError::ShuttingDown);
        }
        if s.in_flight >= self.capacity {
            s.refused += 1;
            return Err(AdmitError::Backpressure {
                in_flight: s.in_flight,
                capacity: self.capacity,
            });
        }
        s.in_flight += 1;
        s.queued += 1;
        s.admitted += 1;
        let tick = s.ticks;
        let lane = s.lanes.entry(client.to_owned()).or_default();
        let was_idle = lane.jobs.is_empty();
        lane.jobs.push_back((id, cost.max(1), tick));
        if was_idle {
            s.ring.push_back(client.to_owned());
        }
        drop(s);
        self.wake.notify_one();
        Ok(())
    }

    /// Serves the next job by DRR order, blocking while the queue is
    /// empty. Returns `None` only when the queue is shut down *and*
    /// fully drained — an admitted job is never dropped.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut s = self.state.lock();
        loop {
            if let Some(job) = Self::pop_locked(&mut s, self.quantum) {
                return Some(job);
            }
            if s.shutting_down {
                return None;
            }
            self.wake.wait(&mut s);
        }
    }

    /// Non-blocking [`JobQueue::pop`]: `None` when nothing is queued
    /// right now (regardless of shutdown state).
    pub fn try_pop(&self) -> Option<QueuedJob> {
        Self::pop_locked(&mut self.state.lock(), self.quantum)
    }

    fn pop_locked(s: &mut QueueState, quantum: u64) -> Option<QueuedJob> {
        // Each ring visit grants at most one quantum; with every lane
        // gaining `quantum ≥ 1` per visit, any finite-cost head job is
        // eventually served — no starvation, no deadlock.
        loop {
            let client = s.ring.front()?.clone();
            let lane = s.lanes.get_mut(&client).expect("ring lanes exist");
            if lane.jobs.is_empty() {
                // Exhausted lanes leave the ring and forfeit their
                // leftover deficit (keeping it would let an idle
                // client burst later — that's credit for *not*
                // queuing, the opposite of fairness).
                lane.deficit = 0;
                lane.charged = false;
                s.ring.pop_front();
                continue;
            }
            if !lane.charged {
                lane.deficit = lane.deficit.saturating_add(quantum);
                lane.charged = true;
            }
            let (_, cost, _) = *lane.jobs.front().expect("non-empty");
            if lane.deficit >= cost {
                let (id, cost, enqueued_tick) = lane.jobs.pop_front().expect("non-empty");
                lane.deficit -= cost;
                if lane.jobs.is_empty() {
                    lane.deficit = 0;
                    lane.charged = false;
                    s.ring.pop_front();
                }
                s.queued -= 1;
                let served_tick = s.ticks;
                s.ticks += 1;
                return Some(QueuedJob {
                    id,
                    client,
                    cost,
                    enqueued_tick,
                    served_tick,
                });
            }
            // Head job doesn't fit the deficit yet: rotate, keep the
            // accumulated deficit, and re-charge on the next visit.
            lane.charged = false;
            s.ring.rotate_left(1);
        }
    }

    /// Marks one served job as executed, releasing its admission slot.
    pub fn finish(&self) {
        let mut s = self.state.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        drop(s);
        // Admission headroom opened; nothing waits on it internally,
        // but poppers blocked on an empty queue are unaffected.
    }

    /// Stops admission. Already-admitted jobs keep flowing to poppers;
    /// once the backlog is drained, [`JobQueue::pop`] returns `None`.
    pub fn shutdown(&self) {
        self.state.lock().shutting_down = true;
        self.wake.notify_all();
    }

    /// Whether [`JobQueue::shutdown`] was called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.lock().shutting_down
    }

    /// Jobs admitted but not yet served.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.state.lock().queued
    }

    /// All pressure counters in one consistent reading.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let s = self.state.lock();
        QueueStats {
            capacity: self.capacity,
            queued: s.queued,
            in_flight: s.in_flight,
            admitted: s.admitted,
            refused: s.refused,
            shutting_down: s.shutting_down,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_cost_jobs_are_served_in_exact_round_robin() {
        let q = JobQueue::new(1024, 4);
        // Three clients, four jobs each, all enqueued before any pop.
        for c in ["a", "b", "c"] {
            for j in 0..4u64 {
                q.enqueue(c, j, 4).unwrap();
            }
        }
        let mut order = Vec::new();
        while let Some(job) = q.try_pop() {
            order.push((job.client, job.id));
            q.finish();
        }
        assert_eq!(
            order,
            vec![
                ("a".to_owned(), 0),
                ("b".to_owned(), 0),
                ("c".to_owned(), 0),
                ("a".to_owned(), 1),
                ("b".to_owned(), 1),
                ("c".to_owned(), 1),
                ("a".to_owned(), 2),
                ("b".to_owned(), 2),
                ("c".to_owned(), 2),
                ("a".to_owned(), 3),
                ("b".to_owned(), 3),
                ("c".to_owned(), 3),
            ]
        );
    }

    #[test]
    fn expensive_job_accumulates_quantum_while_cheap_jobs_flow() {
        let q = JobQueue::new(1024, 2);
        q.enqueue("big", 0, 6).unwrap(); // needs 3 ring visits
        for j in 0..4u64 {
            q.enqueue("small", j, 1).unwrap();
        }
        let mut order = Vec::new();
        while let Some(job) = q.try_pop() {
            order.push((job.client, job.id));
        }
        // `big` is served after enough visits, not starved and not
        // hogging: smalls interleave ahead of it.
        let big_pos = order.iter().position(|(c, _)| c == "big").unwrap();
        assert!(big_pos >= 2, "big waits for deficit: {order:?}");
        assert_eq!(order.len(), 5, "nothing dropped");
    }

    #[test]
    fn backpressure_at_capacity_and_release_on_finish() {
        let q = JobQueue::new(2, 1);
        q.enqueue("a", 0, 1).unwrap();
        q.enqueue("a", 1, 1).unwrap();
        assert!(matches!(
            q.enqueue("a", 2, 1),
            Err(AdmitError::Backpressure {
                in_flight: 2,
                capacity: 2
            })
        ));
        let job = q.try_pop().unwrap();
        assert_eq!(job.id, 0);
        // Still in flight until finished: admission stays closed.
        assert!(q.enqueue("a", 2, 1).is_err());
        q.finish();
        q.enqueue("a", 2, 1).unwrap();
    }

    #[test]
    fn stats_count_admissions_and_refusals() {
        let q = JobQueue::new(2, 1);
        q.enqueue("a", 0, 1).unwrap();
        q.enqueue("a", 1, 1).unwrap();
        let _ = q.enqueue("a", 2, 1); // backpressure
        let s = q.stats();
        assert_eq!((s.admitted, s.refused), (2, 1));
        assert_eq!((s.queued, s.in_flight), (2, 2));
        assert!(!s.shutting_down);
        q.shutdown();
        let _ = q.enqueue("a", 3, 1); // refused: shutting down
        let s = q.stats();
        assert_eq!((s.admitted, s.refused), (2, 2));
        assert!(s.shutting_down);
    }

    #[test]
    fn shutdown_drains_admitted_jobs_then_returns_none() {
        let q = JobQueue::new(8, 1);
        for j in 0..3u64 {
            q.enqueue("a", j, 1).unwrap();
        }
        q.shutdown();
        assert!(matches!(
            q.enqueue("a", 9, 1),
            Err(AdmitError::ShuttingDown)
        ));
        let mut served = Vec::new();
        while let Some(job) = q.pop() {
            served.push(job.id);
        }
        assert_eq!(served, vec![0, 1, 2], "drained in order, none dropped");
    }
}
