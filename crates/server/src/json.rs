//! A JSON *decoder* producing the vendored [`serde::Value`] tree.
//!
//! The offline stand-in `serde`/`serde_json` crates are serialize-only
//! (see `vendor/README.md`), so the wire protocol hand-rolls the read
//! side here: a strict recursive-descent parser whose output is the
//! same [`Value`] tree [`serde_json::to_string`] consumes, making
//! encode → decode a lossless round trip for everything the protocol
//! emits. Numbers parse to `UInt` when they are non-negative integers
//! that fit `u64`, to `Int` for other integers, and to `Float`
//! otherwise — mirroring what the serializer produces for Rust's
//! unsigned/signed/float primitives.

use serde::Value;

/// A decode failure, with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Field lookup on an [`Value::Object`]; `None` for absent fields or
/// non-objects (unknown-field tolerance falls out of only ever asking
/// for the fields we know).
#[must_use]
pub fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// String field accessor.
#[must_use]
pub fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match get(v, key)? {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Unsigned-integer field accessor (accepts `UInt` and non-negative
/// `Int`).
#[must_use]
pub fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match get(v, key)? {
        Value::UInt(n) => Some(*n),
        Value::Int(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

/// Array field accessor.
#[must_use]
pub fn get_array<'a>(v: &'a Value, key: &str) -> Option<&'a [Value]> {
    match get(v, key)? {
        Value::Array(items) => Some(items.as_slice()),
        _ => None,
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next delimiter in
                    // one scan. `"` and `\` are ASCII, so they can never
                    // appear mid-sequence in UTF-8 and the run is a
                    // valid &str slice (input is a &str by construction)
                    // — validating per scalar instead would make large
                    // strings (hex payloads) quadratic to parse.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape (the caller has
    /// already consumed the `u`).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if !text.starts_with('-') {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::UInt(n));
                }
            } else if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    /// Wraps a raw value so the serialize-only stand-ins accept it.
    struct Shim(Value);
    impl Serialize for Shim {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    fn round_trip(v: Value) {
        let text = serde_json::to_string(&Shim(v.clone())).unwrap();
        assert_eq!(parse(&text).unwrap(), v, "round trip of {text}");
        let pretty = serde_json::to_string_pretty(&Shim(v.clone())).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v, "pretty round trip");
    }

    #[test]
    fn encode_decode_round_trips_the_full_value_space() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::UInt(u64::MAX));
        round_trip(Value::Int(-42));
        round_trip(Value::Float(1.5));
        round_trip(Value::String("hello \"world\"\n\t\\ μ∀".to_owned()));
        round_trip(Value::Array(vec![
            Value::UInt(1),
            Value::Null,
            Value::Array(vec![]),
        ]));
        round_trip(Value::Object(vec![
            ("a".to_owned(), Value::UInt(7)),
            (
                "nested".to_owned(),
                Value::Object(vec![("k".to_owned(), Value::String(String::new()))]),
            ),
            ("list".to_owned(), Value::Array(vec![Value::Bool(false)])),
        ]));
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "nul",
            "01x",
            "\"abc",
            "{\"a\" 1}",
            "[1] extra",
            "\"\\q\"",
            "-",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors_tolerate_unknown_and_missing_fields() {
        let v = parse(r#"{"type":"hello","protocol":1,"future_field":{"x":[1,2]}}"#).unwrap();
        assert_eq!(get_str(&v, "type"), Some("hello"));
        assert_eq!(get_u64(&v, "protocol"), Some(1));
        assert!(get(&v, "absent").is_none());
        assert!(get_str(&v, "protocol").is_none(), "type-mismatch is None");
    }
}
