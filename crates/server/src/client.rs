//! The client library: a typed session over any [`Conn`].
//!
//! One [`ServerClient`] wraps one connection: it speaks the hello
//! handshake, submits jobs, polls or waits on status, and consumes
//! watch streams. The CLI verbs (`submit`, `status`, `watch`) and the
//! test harnesses are both built on it, over TCP and in-process
//! transports alike.

use std::net::SocketAddr;

use serde::Value;

use crate::proto::{encode, hex_encode, JobState, ObjectRef, Request, Response, PROTOCOL_VERSION};
use crate::transport::{Conn, TcpConn};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's frame didn't decode.
    Proto(crate::proto::ProtoError),
    /// Admission control refused the job — retry after backoff.
    Rejected {
        /// The server's stated reason.
        reason: String,
    },
    /// The server answered with an `error` frame.
    Server {
        /// The server's message.
        message: String,
    },
    /// The server hung up mid-conversation.
    Disconnected,
    /// The server answered with a frame the call didn't expect.
    UnexpectedResponse {
        /// The frame's `type` tag.
        got: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client transport failure: {e}"),
            ClientError::Proto(e) => write!(f, "client protocol failure: {e}"),
            ClientError::Rejected { reason } => write!(f, "job rejected: {reason}"),
            ClientError::Server { message } => write!(f, "server error: {message}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::UnexpectedResponse { got } => {
                write!(f, "unexpected `{got}` response")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<crate::proto::ProtoError> for ClientError {
    fn from(e: crate::proto::ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// What the server said hello back with.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Server software name.
    pub server: String,
    /// Protocol revision it speaks.
    pub protocol: u64,
    /// Its admission-control bound.
    pub queue_capacity: u64,
}

/// A job's status as seen over the wire.
#[derive(Debug, Clone)]
pub struct RemoteStatus {
    /// Job id.
    pub job: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Result document when done.
    pub result: Option<Value>,
    /// Failure message when failed.
    pub error: Option<String>,
}

/// One streamed flight-recorder event from a watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchedEvent {
    /// Sequence number within the job's journal.
    pub seq: u64,
    /// Timestamp on the job's deterministic timeline, ns.
    pub ts_ns: u64,
    /// Journal lane.
    pub lane: String,
    /// Event kind tag.
    pub kind: String,
}

/// The terminal frame of a watch stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchSummary {
    /// Final job state.
    pub state: JobState,
    /// Journal ledger: emitted.
    pub events_emitted: u64,
    /// Journal ledger: written (retained + streamed).
    pub events_written: u64,
    /// Journal ledger: dropped under the capacity bound.
    pub events_dropped: u64,
}

/// A typed session over one connection.
pub struct ServerClient {
    conn: Box<dyn Conn>,
    info: ServerInfo,
}

impl std::fmt::Debug for ServerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerClient")
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

impl ServerClient {
    /// Opens a session over `conn`, identifying as `client` for fair
    /// queuing.
    ///
    /// # Errors
    ///
    /// Transport or handshake failures.
    pub fn over(mut conn: Box<dyn Conn>, client: &str) -> ClientResult<Self> {
        conn.send(&encode(&Request::Hello {
            client: client.to_owned(),
            protocol: PROTOCOL_VERSION,
        }))?;
        let payload = conn.recv()?.ok_or(ClientError::Disconnected)?;
        match Response::decode(&payload)? {
            Response::HelloOk {
                server,
                protocol,
                queue_capacity,
            } => Ok(ServerClient {
                conn,
                info: ServerInfo {
                    server,
                    protocol,
                    queue_capacity,
                },
            }),
            Response::Error { message } => Err(ClientError::Server { message }),
            other => Err(ClientError::UnexpectedResponse {
                got: other.type_name(),
            }),
        }
    }

    /// Connects a TCP session to `addr` as `client`.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect(addr: SocketAddr, client: &str) -> ClientResult<Self> {
        Self::over(Box::new(TcpConn::connect(addr)?), client)
    }

    /// The hello answer this session opened with.
    #[must_use]
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    fn call(&mut self, req: &Request) -> ClientResult<Response> {
        self.conn.send(&encode(req))?;
        let payload = self.conn.recv()?.ok_or(ClientError::Disconnected)?;
        Ok(Response::decode(&payload)?)
    }

    fn submit(&mut self, req: &Request) -> ClientResult<u64> {
        match self.call(req)? {
            Response::Accepted { job } => Ok(job),
            Response::Rejected { reason } => Err(ClientError::Rejected { reason }),
            Response::Error { message } => Err(ClientError::Server { message }),
            other => Err(ClientError::UnexpectedResponse {
                got: other.type_name(),
            }),
        }
    }

    /// Submits an ingest job; the payload travels hex-encoded.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] under backpressure (retryable);
    /// transport failures.
    pub fn ingest(
        &mut self,
        name: &str,
        version: u64,
        chunk_bytes: u64,
        data: &[u8],
    ) -> ClientResult<u64> {
        self.submit(&Request::Ingest {
            name: name.to_owned(),
            version,
            chunk_bytes,
            data: hex_encode(data),
        })
    }

    /// Submits a pairwise compare job.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::ingest`].
    pub fn compare(&mut self, left: ObjectRef, right: ObjectRef) -> ClientResult<u64> {
        self.submit(&Request::Compare { left, right })
    }

    /// Submits a batch compare job.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::ingest`].
    pub fn compare_many(&mut self, baseline: ObjectRef, runs: Vec<ObjectRef>) -> ClientResult<u64> {
        self.submit(&Request::CompareMany { baseline, runs })
    }

    /// Submits a materialize job.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::ingest`].
    pub fn materialize(&mut self, name: &str, version: u64) -> ClientResult<u64> {
        self.submit(&Request::Materialize {
            name: name.to_owned(),
            version,
        })
    }

    /// Queries a job's status; with `wait` the server holds the reply
    /// until the job is terminal (no client-side polling).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown jobs; transport failures.
    pub fn status(&mut self, job: u64, wait: bool) -> ClientResult<RemoteStatus> {
        match self.call(&Request::Status { job, wait })? {
            Response::Status {
                job,
                state,
                result,
                error,
            } => Ok(RemoteStatus {
                job,
                state,
                result,
                error,
            }),
            Response::Error { message } => Err(ClientError::Server { message }),
            other => Err(ClientError::UnexpectedResponse {
                got: other.type_name(),
            }),
        }
    }

    /// Blocks until `job` is terminal and returns its final status.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::status`].
    pub fn wait(&mut self, job: u64) -> ClientResult<RemoteStatus> {
        self.status(job, true)
    }

    /// Streams a job's flight-recorder events (blocking until the job
    /// is terminal), returning them with the terminal ledger summary.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::status`].
    pub fn watch(&mut self, job: u64) -> ClientResult<(Vec<WatchedEvent>, WatchSummary)> {
        self.conn.send(&encode(&Request::Watch { job }))?;
        let mut events = Vec::new();
        loop {
            let payload = self.conn.recv()?.ok_or(ClientError::Disconnected)?;
            match Response::decode(&payload)? {
                Response::Event {
                    seq,
                    ts_ns,
                    lane,
                    kind,
                    ..
                } => events.push(WatchedEvent {
                    seq,
                    ts_ns,
                    lane,
                    kind,
                }),
                Response::Done {
                    state,
                    events_emitted,
                    events_written,
                    events_dropped,
                    ..
                } => {
                    return Ok((
                        events,
                        WatchSummary {
                            state,
                            events_emitted,
                            events_written,
                            events_dropped,
                        },
                    ))
                }
                Response::Error { message } => return Err(ClientError::Server { message }),
                other => {
                    return Err(ClientError::UnexpectedResponse {
                        got: other.type_name(),
                    })
                }
            }
        }
    }

    /// Fetches one telemetry snapshot taken right now, as the raw
    /// decoded JSON value (pass it to
    /// `reprocmp_obs::telemetry::TelemetrySnapshot::from_value` for the
    /// typed view, or render it with `prometheus_text`).
    ///
    /// # Errors
    ///
    /// Transport failures; unexpected frames.
    pub fn metrics(&mut self) -> ClientResult<Value> {
        match self.call(&Request::Metrics)? {
            Response::Telemetry { snapshot } => Ok(snapshot),
            Response::Error { message } => Err(ClientError::Server { message }),
            other => Err(ClientError::UnexpectedResponse {
                got: other.type_name(),
            }),
        }
    }

    /// Subscribes to the telemetry stream: the retained history first,
    /// then live samples, until `max` snapshots arrived (`0` = until
    /// the daemon shuts down). Returns the raw snapshot values in
    /// arrival order once the terminal `telemetry_end` frame lands.
    ///
    /// # Errors
    ///
    /// Transport failures; unexpected frames.
    pub fn subscribe_telemetry(&mut self, max: u64) -> ClientResult<Vec<Value>> {
        self.conn
            .send(&encode(&Request::SubscribeTelemetry { max }))?;
        let mut snapshots = Vec::new();
        loop {
            let payload = self.conn.recv()?.ok_or(ClientError::Disconnected)?;
            match Response::decode(&payload)? {
                Response::Telemetry { snapshot } => snapshots.push(snapshot),
                Response::TelemetryEnd { .. } => return Ok(snapshots),
                Response::Error { message } => return Err(ClientError::Server { message }),
                other => {
                    return Err(ClientError::UnexpectedResponse {
                        got: other.type_name(),
                    })
                }
            }
        }
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::Accepted { .. } => Ok(()),
            Response::Error { message } => Err(ClientError::Server { message }),
            other => Err(ClientError::UnexpectedResponse {
                got: other.type_name(),
            }),
        }
    }
}
