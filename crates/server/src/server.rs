//! The daemon: exclusive store ownership, a bounded worker pool
//! draining the DRR queue, and per-job deterministic execution.
//!
//! # Determinism under concurrency
//!
//! Every job — whichever worker runs it, however clients interleave —
//! executes on a **fresh** `Timeline::sim(SimClock::new())` with a
//! fresh flight-recorder journal and (for batches) a fresh
//! [`MetaCache`]. All modeled costs are charged against the job's own
//! virtual clock and the engine's deterministic device/compute
//! models, so the resulting report depends only on *(store contents,
//! job spec, engine config)* — never on wall time, worker identity,
//! or what other jobs are running. [`execute_spec`] is `pub` for
//! exactly this reason: the oracle suite replays every job offline
//! and serially through the same function and asserts byte-identical
//! results.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use reprocmp_core::{BatchConfig, CheckpointSource, CompareEngine, EngineConfig, MetaCache};
use reprocmp_io::{SimClock, Timeline};
use reprocmp_obs::{Event, JournalLedger, Observer};
use reprocmp_store::{real_fs, ChunkStore, StoreConfig, StoreError, StoreFs};
use serde::{Serialize, Value};

use crate::proto::{hex_decode, hex_encode, JobState, ObjectRef, Request};
use crate::queue::{AdmitError, JobQueue};

/// Daemon-level failures.
#[derive(Debug)]
pub enum ServerError {
    /// Opening or locking the store failed.
    Store(StoreError),
    /// Socket plumbing failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Store(e) => write!(f, "server store error: {e}"),
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Store(e) => Some(e),
            ServerError::Io(e) => Some(e),
        }
    }
}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Result alias for daemon operations.
pub type ServerResult<T> = Result<T, ServerError>;

/// Daemon tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Store root the daemon claims exclusively for its lifetime.
    pub store_root: PathBuf,
    /// Owner tag written into the store's advisory lock file.
    pub owner: String,
    /// Comparison-engine chunk size.
    pub chunk_bytes: usize,
    /// Comparison error bound ε.
    pub error_bound: f64,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission bound on in-flight jobs (queued + executing).
    pub queue_capacity: usize,
    /// DRR quantum, in cost units (one unit ≈ one cheap job; ingests
    /// are charged by payload size).
    pub quantum: u64,
    /// The filesystem seam the daemon's store mutates through — the
    /// real filesystem in production, a crash-injecting [`CrashFs`]
    /// in the shutdown torture sweep.
    ///
    /// [`CrashFs`]: reprocmp_store::CrashFs
    pub fs: Arc<dyn StoreFs>,
}

impl ServerConfig {
    /// Defaults rooted at `store_root`: 4 KiB chunks, ε = 1e-5, two
    /// workers, 64 in-flight jobs, a quantum of 8.
    #[must_use]
    pub fn rooted_at(store_root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            store_root: store_root.into(),
            owner: format!("reprocmp-server pid={}", std::process::id()),
            chunk_bytes: 4096,
            error_bound: 1e-5,
            workers: 2,
            queue_capacity: 64,
            quantum: 8,
            fs: real_fs(),
        }
    }
}

/// One job's lifecycle record in the daemon's table.
#[derive(Debug)]
struct JobRecord {
    client: String,
    verb: &'static str,
    state: JobState,
    spec: Option<JobSpec>,
    result: Option<Value>,
    error: Option<String>,
    events: Vec<Event>,
    ledger: Option<JournalLedger>,
}

/// A queued unit of work, decoupled from the wire encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Store `data` as `name@version`.
    Ingest {
        /// Checkpoint name.
        name: String,
        /// Checkpoint version.
        version: u64,
        /// Store chunk size.
        chunk_bytes: usize,
        /// Raw payload bytes.
        data: Vec<u8>,
    },
    /// Compare two stored objects.
    Compare {
        /// Left-hand object.
        left: ObjectRef,
        /// Right-hand object.
        right: ObjectRef,
    },
    /// Batch-compare runs against a baseline.
    CompareMany {
        /// The shared baseline.
        baseline: ObjectRef,
        /// The runs.
        runs: Vec<ObjectRef>,
    },
    /// Reconstruct a stored object's bytes.
    Materialize {
        /// Checkpoint name.
        name: String,
        /// Checkpoint version.
        version: u64,
    },
}

impl JobSpec {
    /// Builds the spec for a job-carrying request; `None` for session
    /// and control verbs.
    #[must_use]
    pub fn from_request(req: &Request) -> Option<Result<JobSpec, String>> {
        match req {
            Request::Ingest {
                name,
                version,
                chunk_bytes,
                data,
            } => Some(hex_decode(data).map(|bytes| JobSpec::Ingest {
                name: name.clone(),
                version: *version,
                chunk_bytes: usize::try_from(*chunk_bytes).unwrap_or(usize::MAX),
                data: bytes,
            })),
            Request::Compare { left, right } => Some(Ok(JobSpec::Compare {
                left: left.clone(),
                right: right.clone(),
            })),
            Request::CompareMany { baseline, runs } => Some(Ok(JobSpec::CompareMany {
                baseline: baseline.clone(),
                runs: runs.clone(),
            })),
            Request::Materialize { name, version } => Some(Ok(JobSpec::Materialize {
                name: name.clone(),
                version: *version,
            })),
            _ => None,
        }
    }

    /// The wire verb, for status displays.
    #[must_use]
    pub fn verb(&self) -> &'static str {
        match self {
            JobSpec::Ingest { .. } => "ingest",
            JobSpec::Compare { .. } => "compare",
            JobSpec::CompareMany { .. } => "compare_many",
            JobSpec::Materialize { .. } => "materialize",
        }
    }

    /// DRR cost: cheap verbs cost 1; ingests are charged one unit per
    /// 64 KiB of payload so bulk uploads cannot crowd out compares.
    #[must_use]
    pub fn cost(&self) -> u64 {
        match self {
            JobSpec::Ingest { data, .. } => 1 + (data.len() as u64) / (64 * 1024),
            _ => 1,
        }
    }
}

/// What one executed job produced (also the offline oracle's output).
#[derive(Debug)]
pub struct JobOutcome {
    /// The result document (`Err` carries the failure message).
    pub result: Result<Value, String>,
    /// The job's flight-recorder events, in sequence order.
    pub events: Vec<Event>,
    /// The journal's exact emitted/written/dropped ledger.
    pub ledger: JournalLedger,
}

/// Executes one job spec against `store` with `engine`, on a fresh
/// deterministic timeline — the single execution path shared by the
/// daemon's workers and the oracle suite's offline serial replay.
#[must_use]
pub fn execute_spec(store: &ChunkStore, engine: &CompareEngine, spec: &JobSpec) -> JobOutcome {
    let timeline = Timeline::sim(SimClock::new());
    let obs = Observer::with_journal(timeline.obs_clock());
    let result = run_spec(store, engine, spec, &timeline, &obs);
    JobOutcome {
        result,
        events: obs.journal().events(),
        ledger: obs.journal().ledger(),
    }
}

fn run_spec(
    store: &ChunkStore,
    engine: &CompareEngine,
    spec: &JobSpec,
    timeline: &Timeline,
    obs: &Observer,
) -> Result<Value, String> {
    match spec {
        JobSpec::Ingest {
            name,
            version,
            chunk_bytes,
            data,
        } => {
            // Capture-side metadata is built at ingest (when the
            // payload is valid f32s), so compare jobs later use the
            // stored tree verbatim — the capture profile in their
            // reports stays zero, exactly like the offline path.
            let meta = if !data.is_empty() && data.len().is_multiple_of(4) {
                let values: Vec<f32> = data
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect();
                engine.encode_metadata(&values)
            } else {
                Vec::new()
            };
            let stats = store
                .ingest(
                    name,
                    *version,
                    &[("data", data.as_slice())],
                    *chunk_bytes,
                    &meta,
                )
                .map_err(|e| e.to_string())?;
            // The wire result exposes the dedup ledger, not physical
            // placement: the pack id is allocated in execution order,
            // so keeping it would make the report depend on how
            // concurrent jobs interleaved — exactly what the
            // equivalence oracle forbids.
            let Value::Object(fields) = stats.to_value() else {
                unreachable!("IngestStats serializes as an object");
            };
            Ok(Value::Object(
                fields.into_iter().filter(|(k, _)| k != "pack").collect(),
            ))
        }
        JobSpec::Compare { left, right } => {
            let a = CheckpointSource::from_store(store, &left.name, left.version, engine)
                .map_err(|e| e.to_string())?;
            let b = CheckpointSource::from_store(store, &right.name, right.version, engine)
                .map_err(|e| e.to_string())?;
            let report = engine
                .compare_observed(&a, &b, timeline, obs)
                .map_err(|e| e.to_string())?;
            Ok(report.to_value())
        }
        JobSpec::CompareMany { baseline, runs } => {
            let base =
                CheckpointSource::from_store(store, &baseline.name, baseline.version, engine)
                    .map_err(|e| e.to_string())?;
            let sources = runs
                .iter()
                .map(|r| CheckpointSource::from_store(store, &r.name, r.version, engine))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| e.to_string())?;
            // A fresh cache per job: byte-identity with the offline
            // replay must not depend on which jobs ran earlier.
            let mut cache = MetaCache::new();
            let report = engine
                .compare_many_observed(
                    &base,
                    &sources,
                    timeline,
                    obs,
                    &BatchConfig::default(),
                    &mut cache,
                )
                .map_err(|e| e.to_string())?;
            Ok(report.to_value())
        }
        JobSpec::Materialize { name, version } => {
            let bytes = store
                .materialize(name, *version)
                .map_err(|e| e.to_string())?;
            Ok(Value::Object(vec![
                ("name".to_owned(), Value::String(name.clone())),
                ("version".to_owned(), Value::UInt(*version)),
                ("bytes".to_owned(), Value::UInt(bytes.len() as u64)),
                ("data".to_owned(), Value::String(hex_encode(&bytes))),
            ]))
        }
    }
}

#[derive(Debug, Default)]
struct JobTable {
    jobs: Mutex<HashMap<u64, JobRecord>>,
    changed: Condvar,
}

/// A point-in-time job status snapshot (what `status` answers with).
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub job: u64,
    /// Owning client.
    pub client: String,
    /// The verb being executed.
    pub verb: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Result document when done.
    pub result: Option<Value>,
    /// Failure message when failed.
    pub error: Option<String>,
}

/// The daemon. Owns the store exclusively (advisory lock) for its
/// lifetime; dropping it shuts down gracefully and releases the lock.
#[derive(Debug)]
pub struct Server {
    store: Arc<ChunkStore>,
    engine: Arc<CompareEngine>,
    queue: Arc<JobQueue>,
    jobs: Arc<JobTable>,
    next_job: Mutex<u64>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
    stop_requested: Arc<(Mutex<bool>, Condvar)>,
}

impl Server {
    /// Opens the store exclusively and starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] (via [`ServerError::Store`]) when
    /// another daemon owns the store; other store-open failures.
    pub fn start(config: ServerConfig) -> ServerResult<Self> {
        let store = Arc::new(ChunkStore::open_with(
            &config.store_root,
            StoreConfig::with_fs(Arc::clone(&config.fs)).exclusive(config.owner.clone()),
        )?);
        let engine = Arc::new(CompareEngine::new(EngineConfig {
            chunk_bytes: config.chunk_bytes,
            error_bound: config.error_bound,
            ..EngineConfig::default()
        }));
        let queue = Arc::new(JobQueue::new(config.queue_capacity, config.quantum));
        let jobs = Arc::new(JobTable::default());
        let mut workers = Vec::new();
        for _ in 0..config.workers.max(1) {
            let store = Arc::clone(&store);
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let jobs = Arc::clone(&jobs);
            workers.push(std::thread::spawn(move || {
                worker_loop(&store, &engine, &queue, &jobs);
            }));
        }
        Ok(Server {
            store,
            engine,
            queue,
            jobs,
            next_job: Mutex::new(1),
            workers: Mutex::new(workers),
            config,
            stop_requested: Arc::new((Mutex::new(false), Condvar::new())),
        })
    }

    /// The daemon's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The store the daemon owns (shared read access for e.g. stats).
    #[must_use]
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// The engine jobs execute with.
    #[must_use]
    pub fn engine(&self) -> &Arc<CompareEngine> {
        &self.engine
    }

    /// The job queue (exposed for queue-level tests and stats).
    #[must_use]
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// Submits one job for `client` through admission control.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] when the queue refuses it (backpressure or
    /// shutdown); the job was *not* recorded.
    pub fn submit(&self, client: &str, spec: JobSpec) -> Result<u64, AdmitError> {
        let id = {
            let mut next = self.next_job.lock();
            let id = *next;
            *next += 1;
            id
        };
        let cost = spec.cost();
        {
            let mut jobs = self.jobs.jobs.lock();
            jobs.insert(
                id,
                JobRecord {
                    client: client.to_owned(),
                    verb: spec.verb(),
                    state: JobState::Queued,
                    spec: Some(spec),
                    result: None,
                    error: None,
                    events: Vec::new(),
                    ledger: None,
                },
            );
        }
        match self.queue.enqueue(client, id, cost) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Not admitted ⇒ not a job: drop the record so the
                // "accepted jobs are never dropped" invariant stays
                // crisp (rejected ≠ accepted-then-lost).
                self.jobs.jobs.lock().remove(&id);
                Err(e)
            }
        }
    }

    /// A job's current status, or `None` for an unknown id.
    #[must_use]
    pub fn status(&self, job: u64) -> Option<JobStatus> {
        let jobs = self.jobs.jobs.lock();
        jobs.get(&job).map(|r| JobStatus {
            job,
            client: r.client.clone(),
            verb: r.verb,
            state: r.state,
            result: r.result.clone(),
            error: r.error.clone(),
        })
    }

    /// Blocks until `job` reaches a terminal state; `None` for an
    /// unknown id.
    #[must_use]
    pub fn wait(&self, job: u64) -> Option<JobStatus> {
        let mut jobs = self.jobs.jobs.lock();
        loop {
            match jobs.get(&job) {
                None => return None,
                Some(r) if r.state.is_terminal() => {
                    return Some(JobStatus {
                        job,
                        client: r.client.clone(),
                        verb: r.verb,
                        state: r.state,
                        result: r.result.clone(),
                        error: r.error.clone(),
                    })
                }
                Some(_) => self.jobs.changed.wait(&mut jobs),
            }
        }
    }

    /// A terminal job's flight-recorder events and journal ledger
    /// (blocks until terminal); `None` for an unknown id.
    #[must_use]
    pub fn job_journal(&self, job: u64) -> Option<(Vec<Event>, JournalLedger)> {
        self.wait(job)?;
        let jobs = self.jobs.jobs.lock();
        let r = jobs.get(&job)?;
        Some((r.events.clone(), r.ledger?))
    }

    /// Flags that a client asked the daemon to exit; [`Server::serve`]
    /// loops observe it. (Job draining happens in
    /// [`Server::shutdown`].)
    pub fn request_stop(&self) {
        let (flag, cvar) = &*self.stop_requested;
        *flag.lock() = true;
        cvar.notify_all();
    }

    /// Whether [`Server::request_stop`] was called.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        *self.stop_requested.0.lock()
    }

    /// Blocks until [`Server::request_stop`] is called.
    pub fn wait_for_stop(&self) {
        let (flag, cvar) = &*self.stop_requested;
        let mut stopped = flag.lock();
        while !*stopped {
            cvar.wait(&mut stopped);
        }
    }

    /// Graceful shutdown: admission closes immediately, every already
    /// admitted job is executed to completion, workers drain and join.
    /// Idempotent. The store lock is released when the server is
    /// dropped.
    pub fn shutdown(&self) {
        self.queue.shutdown();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        self.request_stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(store: &ChunkStore, engine: &CompareEngine, queue: &JobQueue, jobs: &JobTable) {
    while let Some(job) = queue.pop() {
        let spec = {
            let mut table = jobs.jobs.lock();
            let record = table.get_mut(&job.id).expect("queued jobs are recorded");
            record.state = JobState::Running;
            record.spec.take().expect("spec present until execution")
        };
        jobs.changed.notify_all();

        let outcome = execute_spec(store, engine, &spec);

        {
            let mut table = jobs.jobs.lock();
            let record = table.get_mut(&job.id).expect("running jobs are recorded");
            match outcome.result {
                Ok(value) => {
                    record.state = JobState::Done;
                    record.result = Some(value);
                }
                Err(message) => {
                    record.state = JobState::Failed;
                    record.error = Some(message);
                }
            }
            record.events = outcome.events;
            record.ledger = Some(outcome.ledger);
        }
        jobs.changed.notify_all();
        queue.finish();
    }
}
