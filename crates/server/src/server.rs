//! The daemon: exclusive store ownership, a bounded worker pool
//! draining the DRR queue, and per-job deterministic execution.
//!
//! # Determinism under concurrency
//!
//! Every job — whichever worker runs it, however clients interleave —
//! executes on a **fresh** `Timeline::sim(SimClock::new())` with a
//! fresh flight-recorder journal and (for batches) a fresh
//! [`MetaCache`]. All modeled costs are charged against the job's own
//! virtual clock and the engine's deterministic device/compute
//! models, so the resulting report depends only on *(store contents,
//! job spec, engine config)* — never on wall time, worker identity,
//! or what other jobs are running. [`execute_spec`] is `pub` for
//! exactly this reason: the oracle suite replays every job offline
//! and serially through the same function and asserts byte-identical
//! results.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use reprocmp_core::{BatchConfig, CheckpointSource, CompareEngine, EngineConfig, MetaCache};
use reprocmp_io::{MutationKind, SimClock, Timeline};
use reprocmp_obs::telemetry::{JobStateCounts, QueueTelemetry, StoreTelemetry, WorkerTelemetry};
use reprocmp_obs::{
    Event, JournalLedger, ObsClock, Observer, Registry, Sampler, TelemetryRing, TelemetrySnapshot,
    TELEMETRY_SCHEMA_VERSION,
};
use reprocmp_store::{real_fs, ChunkStore, StoreConfig, StoreError, StoreFs};
use serde::{Serialize, Value};

use crate::proto::{hex_decode, hex_encode, JobState, ObjectRef, Request};
use crate::queue::{AdmitError, JobQueue};

/// Daemon-level failures.
#[derive(Debug)]
pub enum ServerError {
    /// Opening or locking the store failed.
    Store(StoreError),
    /// Socket plumbing failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Store(e) => write!(f, "server store error: {e}"),
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Store(e) => Some(e),
            ServerError::Io(e) => Some(e),
        }
    }
}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Result alias for daemon operations.
pub type ServerResult<T> = Result<T, ServerError>;

/// Daemon tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Store root the daemon claims exclusively for its lifetime.
    pub store_root: PathBuf,
    /// Owner tag written into the store's advisory lock file.
    pub owner: String,
    /// Comparison-engine chunk size.
    pub chunk_bytes: usize,
    /// Comparison error bound ε.
    pub error_bound: f64,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission bound on in-flight jobs (queued + executing).
    pub queue_capacity: usize,
    /// DRR quantum, in cost units (one unit ≈ one cheap job; ingests
    /// are charged by payload size).
    pub quantum: u64,
    /// The filesystem seam the daemon's store mutates through — the
    /// real filesystem in production, a crash-injecting [`CrashFs`]
    /// in the shutdown torture sweep.
    ///
    /// [`CrashFs`]: reprocmp_store::CrashFs
    pub fs: Arc<dyn StoreFs>,
    /// Clock the telemetry plane stamps and paces samples with — wall
    /// time in production, a manual clock in tests so sampled series
    /// are byte-reproducible.
    pub telemetry_clock: ObsClock,
    /// Background sampling cadence. [`Duration::ZERO`] disables the
    /// sampling thread; explicit `metrics` requests still sample.
    pub telemetry_cadence: Duration,
    /// Snapshots the in-memory telemetry ring retains (and the number
    /// of `telemetry.jsonl` lines replayed into it at startup).
    pub telemetry_retention: usize,
}

impl ServerConfig {
    /// Defaults rooted at `store_root`: 4 KiB chunks, ε = 1e-5, two
    /// workers, 64 in-flight jobs, a quantum of 8, telemetry sampled
    /// every 100 ms on a wall clock with 256 snapshots retained.
    #[must_use]
    pub fn rooted_at(store_root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            store_root: store_root.into(),
            owner: format!("reprocmp-server pid={}", std::process::id()),
            chunk_bytes: 4096,
            error_bound: 1e-5,
            workers: 2,
            queue_capacity: 64,
            quantum: 8,
            fs: real_fs(),
            telemetry_clock: ObsClock::wall(),
            telemetry_cadence: Duration::from_millis(100),
            telemetry_retention: 256,
        }
    }
}

/// One job's lifecycle record in the daemon's table.
#[derive(Debug)]
struct JobRecord {
    client: String,
    verb: &'static str,
    state: JobState,
    spec: Option<JobSpec>,
    result: Option<Value>,
    error: Option<String>,
    events: Vec<Event>,
    ledger: Option<JournalLedger>,
}

/// A queued unit of work, decoupled from the wire encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Store `data` as `name@version`.
    Ingest {
        /// Checkpoint name.
        name: String,
        /// Checkpoint version.
        version: u64,
        /// Store chunk size.
        chunk_bytes: usize,
        /// Raw payload bytes.
        data: Vec<u8>,
    },
    /// Compare two stored objects.
    Compare {
        /// Left-hand object.
        left: ObjectRef,
        /// Right-hand object.
        right: ObjectRef,
    },
    /// Batch-compare runs against a baseline.
    CompareMany {
        /// The shared baseline.
        baseline: ObjectRef,
        /// The runs.
        runs: Vec<ObjectRef>,
    },
    /// Reconstruct a stored object's bytes.
    Materialize {
        /// Checkpoint name.
        name: String,
        /// Checkpoint version.
        version: u64,
    },
}

impl JobSpec {
    /// Builds the spec for a job-carrying request; `None` for session
    /// and control verbs.
    #[must_use]
    pub fn from_request(req: &Request) -> Option<Result<JobSpec, String>> {
        match req {
            Request::Ingest {
                name,
                version,
                chunk_bytes,
                data,
            } => Some(hex_decode(data).map(|bytes| JobSpec::Ingest {
                name: name.clone(),
                version: *version,
                chunk_bytes: usize::try_from(*chunk_bytes).unwrap_or(usize::MAX),
                data: bytes,
            })),
            Request::Compare { left, right } => Some(Ok(JobSpec::Compare {
                left: left.clone(),
                right: right.clone(),
            })),
            Request::CompareMany { baseline, runs } => Some(Ok(JobSpec::CompareMany {
                baseline: baseline.clone(),
                runs: runs.clone(),
            })),
            Request::Materialize { name, version } => Some(Ok(JobSpec::Materialize {
                name: name.clone(),
                version: *version,
            })),
            _ => None,
        }
    }

    /// The wire verb, for status displays.
    #[must_use]
    pub fn verb(&self) -> &'static str {
        match self {
            JobSpec::Ingest { .. } => "ingest",
            JobSpec::Compare { .. } => "compare",
            JobSpec::CompareMany { .. } => "compare_many",
            JobSpec::Materialize { .. } => "materialize",
        }
    }

    /// DRR cost: cheap verbs cost 1; ingests are charged one unit per
    /// 64 KiB of payload so bulk uploads cannot crowd out compares.
    #[must_use]
    pub fn cost(&self) -> u64 {
        match self {
            JobSpec::Ingest { data, .. } => 1 + (data.len() as u64) / (64 * 1024),
            _ => 1,
        }
    }
}

/// What one executed job produced (also the offline oracle's output).
#[derive(Debug)]
pub struct JobOutcome {
    /// The result document (`Err` carries the failure message).
    pub result: Result<Value, String>,
    /// The job's flight-recorder events, in sequence order.
    pub events: Vec<Event>,
    /// The journal's exact emitted/written/dropped ledger.
    pub ledger: JournalLedger,
}

/// Executes one job spec against `store` with `engine`, on a fresh
/// deterministic timeline — the single execution path shared by the
/// daemon's workers and the oracle suite's offline serial replay.
#[must_use]
pub fn execute_spec(store: &ChunkStore, engine: &CompareEngine, spec: &JobSpec) -> JobOutcome {
    let timeline = Timeline::sim(SimClock::new());
    let obs = Observer::with_journal(timeline.obs_clock());
    let result = run_spec(store, engine, spec, &timeline, &obs);
    JobOutcome {
        result,
        events: obs.journal().events(),
        ledger: obs.journal().ledger(),
    }
}

fn run_spec(
    store: &ChunkStore,
    engine: &CompareEngine,
    spec: &JobSpec,
    timeline: &Timeline,
    obs: &Observer,
) -> Result<Value, String> {
    match spec {
        JobSpec::Ingest {
            name,
            version,
            chunk_bytes,
            data,
        } => {
            // Capture-side metadata is built at ingest (when the
            // payload is valid f32s), so compare jobs later use the
            // stored tree verbatim — the capture profile in their
            // reports stays zero, exactly like the offline path.
            let meta = if !data.is_empty() && data.len().is_multiple_of(4) {
                let values: Vec<f32> = data
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect();
                engine.encode_metadata(&values)
            } else {
                Vec::new()
            };
            let stats = store
                .ingest(
                    name,
                    *version,
                    &[("data", data.as_slice())],
                    *chunk_bytes,
                    &meta,
                )
                .map_err(|e| e.to_string())?;
            // The wire result exposes the dedup ledger, not physical
            // placement: the pack id is allocated in execution order,
            // so keeping it would make the report depend on how
            // concurrent jobs interleaved — exactly what the
            // equivalence oracle forbids.
            let Value::Object(fields) = stats.to_value() else {
                unreachable!("IngestStats serializes as an object");
            };
            Ok(Value::Object(
                fields.into_iter().filter(|(k, _)| k != "pack").collect(),
            ))
        }
        JobSpec::Compare { left, right } => {
            let a = CheckpointSource::from_store(store, &left.name, left.version, engine)
                .map_err(|e| e.to_string())?;
            let b = CheckpointSource::from_store(store, &right.name, right.version, engine)
                .map_err(|e| e.to_string())?;
            let report = engine
                .compare_observed(&a, &b, timeline, obs)
                .map_err(|e| e.to_string())?;
            Ok(report.to_value())
        }
        JobSpec::CompareMany { baseline, runs } => {
            let base =
                CheckpointSource::from_store(store, &baseline.name, baseline.version, engine)
                    .map_err(|e| e.to_string())?;
            let sources = runs
                .iter()
                .map(|r| CheckpointSource::from_store(store, &r.name, r.version, engine))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| e.to_string())?;
            // A fresh cache per job: byte-identity with the offline
            // replay must not depend on which jobs ran earlier.
            let mut cache = MetaCache::new();
            let report = engine
                .compare_many_observed(
                    &base,
                    &sources,
                    timeline,
                    obs,
                    &BatchConfig::default(),
                    &mut cache,
                )
                .map_err(|e| e.to_string())?;
            Ok(report.to_value())
        }
        JobSpec::Materialize { name, version } => {
            let bytes = store
                .materialize(name, *version)
                .map_err(|e| e.to_string())?;
            Ok(Value::Object(vec![
                ("name".to_owned(), Value::String(name.clone())),
                ("version".to_owned(), Value::UInt(*version)),
                ("bytes".to_owned(), Value::UInt(bytes.len() as u64)),
                ("data".to_owned(), Value::String(hex_encode(&bytes))),
            ]))
        }
    }
}

#[derive(Debug, Default)]
struct JobTable {
    jobs: Mutex<HashMap<u64, JobRecord>>,
    changed: Condvar,
}

/// One worker thread's cumulative activity counters, read lock-free by
/// the telemetry sampler.
#[derive(Debug, Default)]
struct WorkerSlot {
    jobs: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

/// Aggregate flight-recorder ledger across all executed jobs.
#[derive(Debug, Default)]
struct JournalTotals {
    emitted: AtomicU64,
    written: AtomicU64,
    dropped: AtomicU64,
}

impl JournalTotals {
    fn add(&self, ledger: JournalLedger) {
        self.emitted
            .fetch_add(ledger.events_emitted, Ordering::Relaxed);
        self.written
            .fetch_add(ledger.events_written, Ordering::Relaxed);
        self.dropped
            .fetch_add(ledger.events_dropped, Ordering::Relaxed);
    }

    fn snapshot(&self) -> JournalLedger {
        JournalLedger {
            events_emitted: self.emitted.load(Ordering::Relaxed),
            events_written: self.written.load(Ordering::Relaxed),
            events_dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Ring + sequence counter behind one lock, so a pushed snapshot and
/// its seq are always consistent.
#[derive(Debug)]
struct TelemetryState {
    ring: TelemetryRing,
    next_seq: u64,
}

/// Everything one telemetry sample reads, shared by the server's
/// handle, its workers, and the background sampling loop.
#[derive(Debug)]
struct TelemetryCtx {
    queue: Arc<JobQueue>,
    jobs: Arc<JobTable>,
    store: Arc<ChunkStore>,
    workers: Vec<WorkerSlot>,
    journal_totals: JournalTotals,
    registry: Registry,
    clock: ObsClock,
    fs: Arc<dyn StoreFs>,
    jsonl_path: PathBuf,
    shared: (Mutex<TelemetryState>, Condvar),
}

impl TelemetryCtx {
    /// Takes one sample: reads every counter, assigns the next seq,
    /// pushes into the ring, appends the JSONL line through the store's
    /// filesystem seam, and wakes subscribers.
    fn sample_now(&self) -> TelemetrySnapshot {
        let qs = self.queue.stats();
        let mut jobs = JobStateCounts::default();
        for r in self.jobs.jobs.lock().values() {
            match r.state {
                JobState::Queued => jobs.queued += 1,
                JobState::Running => jobs.running += 1,
                JobState::Done => jobs.done += 1,
                JobState::Failed => jobs.failed += 1,
            }
        }
        let st = self.store.stats();
        let mut snap = TelemetrySnapshot {
            schema: TELEMETRY_SCHEMA_VERSION,
            seq: 0,
            ts_ns: u64::try_from(self.clock.now().as_nanos()).unwrap_or(u64::MAX),
            queue: QueueTelemetry {
                capacity: qs.capacity as u64,
                queued: qs.queued as u64,
                in_flight: qs.in_flight as u64,
                admitted: qs.admitted,
                refused: qs.refused,
                shutting_down: qs.shutting_down,
            },
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| WorkerTelemetry {
                    worker: i as u64,
                    jobs_executed: w.jobs.load(Ordering::Relaxed),
                    busy_ns: w.busy_ns.load(Ordering::Relaxed),
                    idle_ns: w.idle_ns.load(Ordering::Relaxed),
                })
                .collect(),
            jobs,
            store: StoreTelemetry {
                objects: st.objects,
                packs: st.packs,
                bytes_logical: st.bytes_logical,
                bytes_physical: st.bytes_physical,
                bytes_deduped: st.bytes_deduped,
                bytes_garbage: st.bytes_garbage,
                pack_file_bytes: st.pack_file_bytes,
            },
            journal: self.journal_totals.snapshot(),
            registry: self.registry.snapshot(),
        };
        let (lock, cvar) = &self.shared;
        let mut state = lock.lock();
        snap.seq = state.next_seq;
        state.next_seq += 1;
        state.ring.push(snap.clone());
        let mut line = snap.to_json_line();
        line.push('\n');
        // Best-effort persistence: a full disk must not take down the
        // sampling plane (the in-memory ring stays authoritative).
        let _ = self.fs.append(
            &self.jsonl_path,
            line.as_bytes(),
            MutationKind::JournalAppend,
        );
        drop(state);
        cvar.notify_all();
        snap
    }
}

/// A point-in-time job status snapshot (what `status` answers with).
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub job: u64,
    /// Owning client.
    pub client: String,
    /// The verb being executed.
    pub verb: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Result document when done.
    pub result: Option<Value>,
    /// Failure message when failed.
    pub error: Option<String>,
}

/// The daemon. Owns the store exclusively (advisory lock) for its
/// lifetime; dropping it shuts down gracefully and releases the lock.
#[derive(Debug)]
pub struct Server {
    store: Arc<ChunkStore>,
    engine: Arc<CompareEngine>,
    queue: Arc<JobQueue>,
    jobs: Arc<JobTable>,
    next_job: Mutex<u64>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
    stop_requested: Arc<(Mutex<bool>, Condvar)>,
    telemetry: Arc<TelemetryCtx>,
    sampler_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Opens the store exclusively and starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] (via [`ServerError::Store`]) when
    /// another daemon owns the store; other store-open failures.
    pub fn start(config: ServerConfig) -> ServerResult<Self> {
        let store = Arc::new(ChunkStore::open_with(
            &config.store_root,
            StoreConfig::with_fs(Arc::clone(&config.fs)).exclusive(config.owner.clone()),
        )?);
        let engine = Arc::new(CompareEngine::new(EngineConfig {
            chunk_bytes: config.chunk_bytes,
            error_bound: config.error_bound,
            ..EngineConfig::default()
        }));
        let queue = Arc::new(JobQueue::new(config.queue_capacity, config.quantum));
        let jobs = Arc::new(JobTable::default());

        // Replay persisted telemetry history (reads bypass the
        // mutation seam, like every other store read) so the ring —
        // and the seq counter — survive daemon restarts.
        let jsonl_path = config.store_root.join("telemetry.jsonl");
        let mut ring = TelemetryRing::new(config.telemetry_retention);
        let mut next_seq = 1;
        if let Ok(text) = std::fs::read_to_string(&jsonl_path) {
            for line in text.lines() {
                // A torn final line (crash mid-append) parses as an
                // error and is simply skipped.
                let Ok(value) = crate::json::parse(line) else {
                    continue;
                };
                let Ok(snap) = TelemetrySnapshot::from_value(&value) else {
                    continue;
                };
                next_seq = next_seq.max(snap.seq + 1);
                ring.push(snap);
            }
        }
        let telemetry = Arc::new(TelemetryCtx {
            queue: Arc::clone(&queue),
            jobs: Arc::clone(&jobs),
            store: Arc::clone(&store),
            workers: (0..config.workers.max(1))
                .map(|_| WorkerSlot::default())
                .collect(),
            journal_totals: JournalTotals::default(),
            registry: Registry::new(),
            clock: config.telemetry_clock.clone(),
            fs: Arc::clone(&config.fs),
            jsonl_path,
            shared: (
                Mutex::new(TelemetryState { ring, next_seq }),
                Condvar::new(),
            ),
        });

        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let store = Arc::clone(&store);
            let engine = Arc::clone(&engine);
            let telemetry = Arc::clone(&telemetry);
            workers.push(std::thread::spawn(move || {
                worker_loop(&store, &engine, &telemetry, i);
            }));
        }

        let stop_requested = Arc::new((Mutex::new(false), Condvar::new()));
        let sampler_thread = if config.telemetry_cadence.is_zero() {
            None
        } else {
            let telemetry = Arc::clone(&telemetry);
            let stop = Arc::clone(&stop_requested);
            let mut sampler =
                Sampler::new(config.telemetry_clock.clone(), config.telemetry_cadence);
            // Poll at the cadence, capped at 5 ms so manual-clock tests
            // that advance time between polls see prompt samples.
            let poll = config.telemetry_cadence.min(Duration::from_millis(5));
            Some(std::thread::spawn(move || loop {
                if sampler.poll().is_some() {
                    telemetry.sample_now();
                }
                let (flag, cvar) = &*stop;
                let mut stopped = flag.lock();
                if *stopped {
                    return;
                }
                let _ = cvar.wait_for(&mut stopped, poll);
                if *stopped {
                    return;
                }
            }))
        };

        Ok(Server {
            store,
            engine,
            queue,
            jobs,
            next_job: Mutex::new(1),
            workers: Mutex::new(workers),
            config,
            stop_requested,
            telemetry,
            sampler_thread: Mutex::new(sampler_thread),
        })
    }

    /// The daemon's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The store the daemon owns (shared read access for e.g. stats).
    #[must_use]
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// The engine jobs execute with.
    #[must_use]
    pub fn engine(&self) -> &Arc<CompareEngine> {
        &self.engine
    }

    /// The job queue (exposed for queue-level tests and stats).
    #[must_use]
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// Submits one job for `client` through admission control.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] when the queue refuses it (backpressure or
    /// shutdown); the job was *not* recorded.
    pub fn submit(&self, client: &str, spec: JobSpec) -> Result<u64, AdmitError> {
        let id = {
            let mut next = self.next_job.lock();
            let id = *next;
            *next += 1;
            id
        };
        let cost = spec.cost();
        {
            let mut jobs = self.jobs.jobs.lock();
            jobs.insert(
                id,
                JobRecord {
                    client: client.to_owned(),
                    verb: spec.verb(),
                    state: JobState::Queued,
                    spec: Some(spec),
                    result: None,
                    error: None,
                    events: Vec::new(),
                    ledger: None,
                },
            );
        }
        match self.queue.enqueue(client, id, cost) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Not admitted ⇒ not a job: drop the record so the
                // "accepted jobs are never dropped" invariant stays
                // crisp (rejected ≠ accepted-then-lost).
                self.jobs.jobs.lock().remove(&id);
                Err(e)
            }
        }
    }

    /// A job's current status, or `None` for an unknown id.
    #[must_use]
    pub fn status(&self, job: u64) -> Option<JobStatus> {
        let jobs = self.jobs.jobs.lock();
        jobs.get(&job).map(|r| JobStatus {
            job,
            client: r.client.clone(),
            verb: r.verb,
            state: r.state,
            result: r.result.clone(),
            error: r.error.clone(),
        })
    }

    /// Blocks until `job` reaches a terminal state; `None` for an
    /// unknown id.
    #[must_use]
    pub fn wait(&self, job: u64) -> Option<JobStatus> {
        let mut jobs = self.jobs.jobs.lock();
        loop {
            match jobs.get(&job) {
                None => return None,
                Some(r) if r.state.is_terminal() => {
                    return Some(JobStatus {
                        job,
                        client: r.client.clone(),
                        verb: r.verb,
                        state: r.state,
                        result: r.result.clone(),
                        error: r.error.clone(),
                    })
                }
                Some(_) => self.jobs.changed.wait(&mut jobs),
            }
        }
    }

    /// A terminal job's flight-recorder events and journal ledger
    /// (blocks until terminal); `None` for an unknown id.
    #[must_use]
    pub fn job_journal(&self, job: u64) -> Option<(Vec<Event>, JournalLedger)> {
        self.wait(job)?;
        let jobs = self.jobs.jobs.lock();
        let r = jobs.get(&job)?;
        Some((r.events.clone(), r.ledger?))
    }

    /// Takes one telemetry sample right now — regardless of cadence —
    /// recording it in the ring, the JSONL sink, and every subscriber's
    /// stream. This is what the `metrics` wire verb answers with.
    #[must_use]
    pub fn sample_telemetry_now(&self) -> TelemetrySnapshot {
        self.telemetry.sample_now()
    }

    /// The retained telemetry history, oldest first.
    #[must_use]
    pub fn telemetry_history(&self) -> Vec<TelemetrySnapshot> {
        self.telemetry.shared.0.lock().ring.snapshots()
    }

    /// Blocks until at least one snapshot with `seq > after` exists,
    /// then returns all of them (oldest first). Returns an empty vec
    /// once [`Server::request_stop`] was called and nothing newer will
    /// ever arrive — the subscriber's signal to send its terminal
    /// frame.
    #[must_use]
    pub fn wait_telemetry_after(&self, after: u64) -> Vec<TelemetrySnapshot> {
        let (lock, cvar) = &self.telemetry.shared;
        let mut state = lock.lock();
        loop {
            let fresh: Vec<TelemetrySnapshot> = state
                .ring
                .snapshots()
                .into_iter()
                .filter(|s| s.seq > after)
                .collect();
            if !fresh.is_empty() {
                return fresh;
            }
            if self.stop_requested() {
                return Vec::new();
            }
            cvar.wait(&mut state);
        }
    }

    /// Flags that a client asked the daemon to exit; [`Server::serve`]
    /// loops observe it. (Job draining happens in
    /// [`Server::shutdown`].)
    pub fn request_stop(&self) {
        let (flag, cvar) = &*self.stop_requested;
        *flag.lock() = true;
        cvar.notify_all();
        // Wake telemetry subscribers so their streams can terminate.
        // Briefly taking the telemetry lock fences against a waiter
        // that read the stop flag as false but hasn't parked yet.
        let (lock, tcvar) = &self.telemetry.shared;
        drop(lock.lock());
        tcvar.notify_all();
    }

    /// Whether [`Server::request_stop`] was called.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        *self.stop_requested.0.lock()
    }

    /// Blocks until [`Server::request_stop`] is called.
    pub fn wait_for_stop(&self) {
        let (flag, cvar) = &*self.stop_requested;
        let mut stopped = flag.lock();
        while !*stopped {
            cvar.wait(&mut stopped);
        }
    }

    /// Graceful shutdown: admission closes immediately, every already
    /// admitted job is executed to completion, workers drain and join.
    /// Idempotent. The store lock is released when the server is
    /// dropped.
    pub fn shutdown(&self) {
        self.queue.shutdown();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        self.request_stop();
        if let Some(t) = self.sampler_thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(store: &ChunkStore, engine: &CompareEngine, ctx: &TelemetryCtx, worker: usize) {
    let slot = &ctx.workers[worker];
    let jobs = &*ctx.jobs;
    let queue = &*ctx.queue;
    // Daemon-lifetime metrics: deterministic given the executed job
    // set (counts and costs, never wall time), so sampled registries
    // are reproducible under manual clocks.
    let done_counter = ctx.registry.counter("jobs.done");
    let failed_counter = ctx.registry.counter("jobs.failed");
    let cost_hist = ctx.registry.histogram("job.cost");
    let events_hist = ctx.registry.histogram("job.events");
    loop {
        let idle_from = ctx.clock.now();
        let Some(job) = queue.pop() else { break };
        let busy_from = ctx.clock.now();
        slot.idle_ns.fetch_add(
            u64::try_from(busy_from.saturating_sub(idle_from).as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        let spec = {
            let mut table = jobs.jobs.lock();
            let record = table.get_mut(&job.id).expect("queued jobs are recorded");
            record.state = JobState::Running;
            record.spec.take().expect("spec present until execution")
        };
        jobs.changed.notify_all();

        let outcome = execute_spec(store, engine, &spec);

        ctx.journal_totals.add(outcome.ledger);
        cost_hist.record(job.cost);
        events_hist.record(outcome.ledger.events_emitted);
        {
            let mut table = jobs.jobs.lock();
            let record = table.get_mut(&job.id).expect("running jobs are recorded");
            match outcome.result {
                Ok(value) => {
                    record.state = JobState::Done;
                    record.result = Some(value);
                    done_counter.inc();
                }
                Err(message) => {
                    record.state = JobState::Failed;
                    record.error = Some(message);
                    failed_counter.inc();
                }
            }
            record.events = outcome.events;
            record.ledger = Some(outcome.ledger);
        }
        jobs.changed.notify_all();
        slot.jobs.fetch_add(1, Ordering::Relaxed);
        slot.busy_ns.fetch_add(
            u64::try_from(ctx.clock.now().saturating_sub(busy_from).as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        queue.finish();
    }
}
