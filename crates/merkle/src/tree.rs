//! The flattened Merkle tree and its data-parallel construction.

use reprocmp_device::{Device, Workload};
use reprocmp_hash::{ChunkHasher, Digest128};
use reprocmp_obs::{PhaseCost, StageBreakdown};
use std::time::{Duration, Instant};

/// A complete binary Merkle tree stored as a flat array.
///
/// Leaves are padded up to the next power of two with
/// [`Digest128::ZERO`] sentinels so every interior node has exactly two
/// children; node `i`'s children are `2i+1` and `2i+2`, its parent
/// `(i-1)/2`. Level `l` (root = level 0) spans indices
/// `2^l - 1 .. 2^(l+1) - 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct MerkleTree {
    nodes: Vec<Digest128>,
    leaf_count: usize,
    chunk_bytes: usize,
    data_len: u64,
    error_bound: f64,
}

impl MerkleTree {
    /// Builds a tree from pre-computed leaf digests.
    ///
    /// `chunk_bytes`, `data_len` and `error_bound` are recorded so two
    /// trees can be checked for comparability. Interior levels are each
    /// computed as one parallel kernel on `device`, bottom-up.
    ///
    /// # Panics
    ///
    /// If `leaves` is empty or `chunk_bytes` is zero.
    #[must_use]
    pub fn from_leaves(
        leaves: Vec<Digest128>,
        chunk_bytes: usize,
        data_len: u64,
        error_bound: f64,
        device: &Device,
    ) -> Self {
        assert!(!leaves.is_empty(), "a tree needs at least one leaf");
        assert!(chunk_bytes > 0, "chunk_bytes must be non-zero");
        let leaf_count = leaves.len();
        let padded = leaf_count.next_power_of_two();
        let total = 2 * padded - 1;
        let mut nodes = vec![Digest128::ZERO; total];

        // Install leaves at the bottom level.
        let leaf_base = padded - 1;
        nodes[leaf_base..leaf_base + leaf_count].copy_from_slice(&leaves);

        // Build interior levels bottom-up; one kernel per level, nodes
        // within a level independent.
        let mut level_width = padded / 2;
        while level_width >= 1 {
            let base = level_width - 1;
            let (uppers, lowers) = nodes.split_at_mut(base + level_width);
            let parents = &mut uppers[base..];
            let children_base = base + level_width; // index of first child in `nodes`
            let lowers_ref: &[Digest128] = lowers;
            // Hash bytes: each parent reads 32 bytes, writes 16.
            let w = Workload::new((level_width * 48) as u64, (level_width * 32) as u64);
            device_level(
                device,
                parents,
                lowers_ref,
                children_base,
                base + level_width,
                w,
            );
            if level_width == 1 {
                break;
            }
            level_width /= 2;
        }

        MerkleTree {
            nodes,
            leaf_count,
            chunk_bytes,
            data_len,
            error_bound,
        }
    }

    /// Hashes `data` in `chunk_bytes`-sized chunks (chunk length in
    /// floats is `chunk_bytes / 4`) and builds the tree, leaf hashing
    /// running as one parallel kernel.
    ///
    /// # Panics
    ///
    /// If `data` is empty or `chunk_bytes < 4`.
    #[must_use]
    pub fn build_from_f32(
        data: &[f32],
        chunk_bytes: usize,
        hasher: &ChunkHasher,
        device: &Device,
    ) -> Self {
        assert!(!data.is_empty(), "cannot build a tree over no data");
        assert!(chunk_bytes >= 4, "chunk must hold at least one f32");
        let floats_per_chunk = chunk_bytes / 4;
        let n_chunks = data.len().div_ceil(floats_per_chunk);

        // Leaf kernel: quantize + hash each chunk. Charged as one pass
        // over the data plus ~10 scalar ops per byte — the cost of
        // quantization and seed-chained Murmur3F rounds, which is what
        // makes serial CPU hashing run at a fraction of a GB/s while a
        // GPU hashing thousands of chunks concurrently stays
        // bandwidth-bound (the paper's Figure 8 gap).
        let w = Workload::new((data.len() * 4) as u64, (data.len() * 40) as u64);
        let leaves = device.parallel_map(n_chunks, w, |i| {
            let lo = i * floats_per_chunk;
            let hi = ((i + 1) * floats_per_chunk).min(data.len());
            let mut scratch = Vec::new();
            hasher.hash_chunk_with_scratch(&data[lo..hi], &mut scratch)
        });

        Self::from_leaves(
            leaves,
            chunk_bytes,
            (data.len() * 4) as u64,
            hasher.quantizer().bound(),
            device,
        )
    }

    /// Like [`MerkleTree::build_from_f32`], but runs quantization, leaf
    /// hashing, and level building as *separate* kernels and returns
    /// a [`StageBreakdown`] attributing time, bytes, and operations to
    /// each capture phase. The resulting tree is bit-identical to the
    /// fused builder's (quantize-then-hash commutes with fusing).
    ///
    /// Phase times come from the device's modeled-time accumulator when
    /// the device has a timing model — a deterministic sum of kernel
    /// charges — and from the wall clock otherwise.
    ///
    /// # Panics
    ///
    /// If `data` is empty or `chunk_bytes < 4`.
    #[must_use]
    pub fn build_from_f32_profiled(
        data: &[f32],
        chunk_bytes: usize,
        hasher: &ChunkHasher,
        device: &Device,
    ) -> (Self, StageBreakdown) {
        assert!(!data.is_empty(), "cannot build a tree over no data");
        assert!(chunk_bytes >= 4, "chunk must hold at least one f32");
        let floats_per_chunk = chunk_bytes / 4;
        let n_chunks = data.len().div_ceil(floats_per_chunk);
        let data_bytes = (data.len() * 4) as u64;

        // Phase 1 — quantize every chunk onto the ε-grid. One pass over
        // the floats, ~10 scalar ops per byte (cast, scale, floor).
        let w_quant = Workload::new(data_bytes, data_bytes.saturating_mul(10));
        let (codes, quantize_time) = measured(device, || {
            device.parallel_map(n_chunks, w_quant, |i| {
                let lo = i * floats_per_chunk;
                let hi = ((i + 1) * floats_per_chunk).min(data.len());
                let mut bytes = Vec::new();
                hasher
                    .quantizer()
                    .quantize_to_bytes(&data[lo..hi], &mut bytes);
                bytes
            })
        });
        let code_bytes: u64 = codes.iter().map(|c| c.len() as u64).sum();

        // Phase 2 — block-chained hashing of the quantized codes, the
        // Murmur3F rounds that dominate capture (paper Figure 8).
        let w_hash = Workload::new(data_bytes, data_bytes.saturating_mul(30));
        let codes_ref = &codes;
        let (leaves, leaf_hash_time) = measured(device, || {
            device.parallel_map(n_chunks, w_hash, |i| {
                hasher.hash_quantized_bytes(&codes_ref[i])
            })
        });

        // Phase 3 — interior levels, bottom-up.
        let (tree, level_build_time) = measured(device, || {
            Self::from_leaves(
                leaves,
                chunk_bytes,
                data_bytes,
                hasher.quantizer().bound(),
                device,
            )
        });

        let interior_nodes = (tree.node_count() - tree.leaf_count().next_power_of_two()) as u64;
        let profile = StageBreakdown {
            quantize: PhaseCost::new(quantize_time, data_bytes, data.len() as u64),
            leaf_hash: PhaseCost::new(leaf_hash_time, code_bytes, n_chunks as u64),
            level_build: PhaseCost::new(
                level_build_time,
                tree.metadata_bytes() as u64,
                interior_nodes,
            ),
            ..StageBreakdown::default()
        };
        (tree, profile)
    }

    /// The root digest — a single value summarizing the checkpoint
    /// within the error bound.
    #[must_use]
    pub fn root(&self) -> Digest128 {
        self.nodes[0]
    }

    /// Number of real (unpadded) leaves, i.e. chunks.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Number of leaf slots after power-of-two padding.
    #[must_use]
    pub fn padded_leaf_count(&self) -> usize {
        self.nodes.len().div_ceil(2)
    }

    /// Total node count in the flat array.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Levels in the tree (a single-leaf tree has one level).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.padded_leaf_count().trailing_zeros() as usize + 1
    }

    /// The digest of node `index` in flat order.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    #[must_use]
    pub fn node(&self, index: usize) -> Digest128 {
        self.nodes[index]
    }

    /// The digest of real leaf `i` (chunk `i`).
    ///
    /// # Panics
    ///
    /// If `i >= leaf_count()`.
    #[must_use]
    pub fn leaf(&self, i: usize) -> Digest128 {
        assert!(i < self.leaf_count, "leaf index out of range");
        self.nodes[self.leaf_base() + i]
    }

    /// Flat index of the first leaf slot.
    #[must_use]
    pub fn leaf_base(&self) -> usize {
        self.padded_leaf_count() - 1
    }

    /// Flat index range of level `l` (root is level 0).
    ///
    /// # Panics
    ///
    /// If `l >= levels()`.
    #[must_use]
    pub fn level_range(&self, l: usize) -> std::ops::Range<usize> {
        assert!(l < self.levels(), "level out of range");
        let width = 1usize << l;
        (width - 1)..(2 * width - 1)
    }

    /// The chunk size in bytes the leaves were hashed with.
    #[must_use]
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Original checkpoint payload length in bytes.
    #[must_use]
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// The absolute error bound the leaf digests encode.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// Metadata footprint in bytes when serialized (digests only).
    #[must_use]
    pub fn metadata_bytes(&self) -> usize {
        self.nodes.len() * 16
    }

    /// Immutable access to the flat node array.
    #[must_use]
    pub fn nodes(&self) -> &[Digest128] {
        &self.nodes
    }

    /// Reconstructs a tree from its parts; used by deserialization.
    /// Verifies the node-count/leaf-count relationship.
    pub(crate) fn from_parts(
        nodes: Vec<Digest128>,
        leaf_count: usize,
        chunk_bytes: usize,
        data_len: u64,
        error_bound: f64,
    ) -> Option<Self> {
        let padded = leaf_count.checked_next_power_of_two()?;
        let expected = padded.checked_mul(2)?.checked_sub(1)?;
        if leaf_count == 0 || nodes.len() != expected {
            return None;
        }
        Some(MerkleTree {
            nodes,
            leaf_count,
            chunk_bytes,
            data_len,
            error_bound,
        })
    }

    /// Replaces leaf `i`'s digest and recomputes its root path —
    /// `O(log n)` instead of a full rebuild. This is the incremental
    /// capture path: an application that knows which chunks it dirtied
    /// since the last checkpoint updates only those leaves.
    ///
    /// # Panics
    ///
    /// If `i >= leaf_count()`.
    pub fn update_leaf(&mut self, i: usize, digest: Digest128) {
        assert!(i < self.leaf_count, "leaf index out of range");
        let mut idx = self.leaf_base() + i;
        self.nodes[idx] = digest;
        while idx > 0 {
            idx = (idx - 1) / 2;
            self.nodes[idx] = Digest128::combine(self.nodes[2 * idx + 1], self.nodes[2 * idx + 2]);
        }
    }

    /// Re-hashes the chunks covering `values[dirty]` and updates their
    /// leaves. `values` must be the full payload this tree describes
    /// and `hasher` must match the tree's chunking and bound.
    ///
    /// # Panics
    ///
    /// If the payload length disagrees with the tree, the hasher's
    /// bound disagrees, or the range is out of bounds.
    pub fn update_region(
        &mut self,
        values: &[f32],
        dirty: std::ops::Range<usize>,
        hasher: &ChunkHasher,
    ) {
        assert_eq!(
            (values.len() * 4) as u64,
            self.data_len,
            "payload length does not match the tree"
        );
        assert_eq!(
            hasher.quantizer().bound(),
            self.error_bound,
            "hasher bound does not match the tree"
        );
        assert!(dirty.end <= values.len(), "dirty range out of bounds");
        if dirty.is_empty() {
            return;
        }
        let values_per_chunk = self.chunk_bytes / 4;
        let first = dirty.start / values_per_chunk;
        let last = (dirty.end - 1) / values_per_chunk;
        let mut scratch = Vec::new();
        for chunk in first..=last {
            let lo = chunk * values_per_chunk;
            let hi = (lo + values_per_chunk).min(values.len());
            let digest = hasher.hash_chunk_with_scratch(&values[lo..hi], &mut scratch);
            self.update_leaf(chunk, digest);
        }
    }

    /// True when two trees may be compared node-for-node: same leaf
    /// geometry, chunking, payload size, and error bound.
    #[must_use]
    pub fn comparable(&self, other: &MerkleTree) -> bool {
        self.leaf_count == other.leaf_count
            && self.chunk_bytes == other.chunk_bytes
            && self.data_len == other.data_len
            && self.error_bound == other.error_bound
    }
}

/// Times `f` on the device's modeled clock when it has a timing model
/// (a deterministic sum of kernel charges), falling back to wall time
/// on unmodeled devices.
fn measured<T>(device: &Device, f: impl FnOnce() -> T) -> (T, Duration) {
    let wall = Instant::now();
    let modeled_before = device.modeled_time();
    let out = f();
    let modeled = device.modeled_time().saturating_sub(modeled_before);
    let time = if modeled > Duration::ZERO {
        modeled
    } else {
        wall.elapsed()
    };
    (out, time)
}

/// Runs one interior level as a device kernel. `parents` is the level
/// being written; the children of parent slot `j` (flat index `base+j`)
/// live at flat indices `2(base+j)+1` and `2(base+j)+2`, both inside
/// `lowers` which starts at flat index `lowers_base`.
fn device_level(
    device: &Device,
    parents: &mut [Digest128],
    lowers: &[Digest128],
    _children_base: usize,
    lowers_base: usize,
    workload: Workload,
) {
    let base = lowers_base - parents.len(); // flat index of parents[0]
    let computed = device.parallel_map(parents.len(), workload, |j| {
        let flat = base + j;
        let left = lowers[2 * flat + 1 - lowers_base];
        let right = lowers[2 * flat + 2 - lowers_base];
        Digest128::combine(left, right)
    });
    parents.copy_from_slice(&computed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprocmp_hash::Quantizer;

    fn hasher(bound: f64) -> ChunkHasher {
        ChunkHasher::new(Quantizer::new(bound).unwrap())
    }

    fn data(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin() * 10.0).collect()
    }

    #[test]
    fn profiled_build_is_bit_identical_to_fused_build() {
        let d = data(4096);
        let h = hasher(1e-5);
        let dev = Device::host_serial();
        let fused = MerkleTree::build_from_f32(&d, 128, &h, &dev);
        let (split, profile) = MerkleTree::build_from_f32_profiled(&d, 128, &h, &dev);
        assert_eq!(fused, split);
        // 4096 floats, 128-byte chunks → 128 chunks of 32 floats.
        assert_eq!(profile.quantize.bytes, 4096 * 4);
        assert_eq!(profile.quantize.ops, 4096);
        assert_eq!(profile.leaf_hash.bytes, 4096 * 8, "8-byte codes");
        assert_eq!(profile.leaf_hash.ops, 128);
        assert_eq!(profile.level_build.bytes, split.metadata_bytes() as u64);
        assert_eq!(
            profile.level_build.ops, 127,
            "interior nodes of a 128-leaf tree"
        );
        // Compare-side phases are untouched by capture.
        assert!(profile.bfs.is_zero());
        assert!(profile.stage2_stream.is_zero());
        assert!(profile.verify.is_zero());
    }

    #[test]
    fn profiled_build_times_are_modeled_and_deterministic() {
        let d = data(5000);
        let h = hasher(1e-6);
        let run = || {
            let dev = Device::sim_gpu();
            MerkleTree::build_from_f32_profiled(&d, 256, &h, &dev).1
        };
        let (p1, p2) = (run(), run());
        assert_eq!(p1, p2, "modeled phase times are exact, not wall-clock");
        assert!(p1.quantize.time > Duration::ZERO);
        assert!(p1.leaf_hash.time > Duration::ZERO);
        assert!(p1.level_build.time > Duration::ZERO);
        assert_eq!(
            p1.capture_time(),
            p1.quantize.time + p1.leaf_hash.time + p1.level_build.time
        );
    }

    #[test]
    fn profiled_build_on_unmodeled_device_reports_wall_time() {
        let d = data(1024);
        let (_, profile) =
            MerkleTree::build_from_f32_profiled(&d, 64, &hasher(1e-4), &Device::host_serial());
        // No model → wall-clock fallback; elapsed time is positive but
        // nothing else can be asserted portably.
        assert!(profile.capture_time() > Duration::ZERO);
    }

    #[test]
    fn serial_and_parallel_builds_agree() {
        let d = data(10_000);
        let h = hasher(1e-5);
        let a = MerkleTree::build_from_f32(&d, 256, &h, &Device::host_serial());
        let b = MerkleTree::build_from_f32(&d, 256, &h, &Device::host_parallel(8));
        assert_eq!(a, b);
    }

    #[test]
    fn geometry_non_power_of_two_leaves() {
        let d = data(1000); // 1000 floats, 64B chunks = 16 floats -> 63 chunks
        let h = hasher(1e-4);
        let t = MerkleTree::build_from_f32(&d, 64, &h, &Device::host_serial());
        assert_eq!(t.leaf_count(), 63);
        assert_eq!(t.padded_leaf_count(), 64);
        assert_eq!(t.node_count(), 127);
        assert_eq!(t.levels(), 7);
        assert_eq!(t.level_range(0), 0..1);
        assert_eq!(t.level_range(6), 63..127);
    }

    #[test]
    fn single_chunk_tree() {
        let d = data(8);
        let h = hasher(1e-4);
        let t = MerkleTree::build_from_f32(&d, 4096, &h, &Device::host_serial());
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.levels(), 1);
        assert_eq!(t.root(), t.leaf(0));
    }

    #[test]
    fn root_changes_when_any_chunk_changes() {
        let d = data(4096);
        let h = hasher(1e-5);
        let base = MerkleTree::build_from_f32(&d, 128, &h, &Device::host_serial());
        for &victim in &[0usize, 1000, 4095] {
            let mut d2 = d.clone();
            d2[victim] += 1.0;
            let t2 = MerkleTree::build_from_f32(&d2, 128, &h, &Device::host_serial());
            assert_ne!(base.root(), t2.root(), "victim {victim}");
        }
    }

    #[test]
    fn within_bound_noise_keeps_root_with_high_probability() {
        // Noise an order of magnitude under the bound: most values stay
        // in their grid cell; with a coarse bound the roots match.
        let d: Vec<f32> = (0..4096).map(|i| (i / 7) as f32).collect();
        let h = hasher(1e-2);
        let noisy: Vec<f32> = d.iter().map(|&x| x + 1e-4).collect();
        let a = MerkleTree::build_from_f32(&d, 128, &h, &Device::host_serial());
        let b = MerkleTree::build_from_f32(&noisy, 128, &h, &Device::host_serial());
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn parent_child_relation_holds_everywhere() {
        let d = data(2048);
        let h = hasher(1e-5);
        let t = MerkleTree::build_from_f32(&d, 64, &h, &Device::host_parallel(4));
        for i in 0..t.leaf_base() {
            let expect = Digest128::combine(t.node(2 * i + 1), t.node(2 * i + 2));
            assert_eq!(t.node(i), expect, "node {i}");
        }
    }

    #[test]
    fn leaves_match_direct_chunk_hashing() {
        let d = data(777);
        let h = hasher(1e-6);
        let t = MerkleTree::build_from_f32(&d, 100, &h, &Device::host_serial());
        let leaves = h.hash_leaves(&d, 25); // 100 bytes = 25 floats
        assert_eq!(t.leaf_count(), leaves.len());
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(t.leaf(i), *leaf, "leaf {i}");
        }
    }

    #[test]
    fn metadata_is_small_relative_to_data() {
        // ~7 GB checkpoint with 4 KB chunks gives ~55 MB metadata in the
        // paper; same ratio here at scale-down: 4 MB data, 4 KB chunks.
        let d = data(1 << 20); // 4 MiB of f32
        let h = hasher(1e-5);
        let t = MerkleTree::build_from_f32(&d, 4096, &h, &Device::host_parallel(4));
        let ratio = t.metadata_bytes() as f64 / (d.len() * 4) as f64;
        assert!(ratio < 0.01, "metadata ratio {ratio}");
    }

    #[test]
    fn comparable_checks_all_fields() {
        let d = data(512);
        let t1 = MerkleTree::build_from_f32(&d, 64, &hasher(1e-5), &Device::host_serial());
        let t2 = MerkleTree::build_from_f32(&d, 64, &hasher(1e-5), &Device::host_serial());
        let t3 = MerkleTree::build_from_f32(&d, 128, &hasher(1e-5), &Device::host_serial());
        let t4 = MerkleTree::build_from_f32(&d, 64, &hasher(1e-4), &Device::host_serial());
        assert!(t1.comparable(&t2));
        assert!(!t1.comparable(&t3));
        assert!(!t1.comparable(&t4));
    }

    #[test]
    fn sim_gpu_build_matches_host_and_accrues_modeled_time() {
        let d = data(8192);
        let h = hasher(1e-5);
        let gpu = Device::sim_gpu();
        let t_gpu = MerkleTree::build_from_f32(&d, 256, &h, &gpu);
        let t_host = MerkleTree::build_from_f32(&d, 256, &h, &Device::host_serial());
        assert_eq!(t_gpu, t_host);
        assert!(gpu.modeled_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        let mut d = data(5_000);
        let h = hasher(1e-5);
        let dev = Device::host_serial();
        let mut t = MerkleTree::build_from_f32(&d, 128, &h, &dev);

        // Dirty three disjoint regions, as an application would.
        for (lo, hi) in [(0usize, 40usize), (2_000, 2_100), (4_990, 5_000)] {
            for v in &mut d[lo..hi] {
                *v += 3.0;
            }
            t.update_region(&d, lo..hi, &h);
        }
        let rebuilt = MerkleTree::build_from_f32(&d, 128, &h, &dev);
        assert_eq!(t, rebuilt, "incremental path must equal full rebuild");
    }

    #[test]
    fn update_single_leaf_refreshes_root_path_only() {
        let d = data(2_048);
        let h = hasher(1e-5);
        let dev = Device::host_serial();
        let mut t = MerkleTree::build_from_f32(&d, 64, &h, &dev);
        let before = t.clone();

        let new_digest = h.hash_chunk(&[9.0; 16]);
        t.update_leaf(5, new_digest);
        assert_eq!(t.leaf(5), new_digest);
        assert_ne!(t.root(), before.root());
        // Unrelated leaves untouched.
        assert_eq!(t.leaf(0), before.leaf(0));
        assert_eq!(t.leaf(100), before.leaf(100));
    }

    #[test]
    fn empty_dirty_range_is_a_no_op() {
        let d = data(1_000);
        let h = hasher(1e-5);
        let mut t = MerkleTree::build_from_f32(&d, 64, &h, &Device::host_serial());
        let before = t.clone();
        t.update_region(&d, 500..500, &h);
        assert_eq!(t, before);
    }

    #[test]
    #[should_panic(expected = "hasher bound")]
    fn update_with_wrong_bound_panics() {
        let d = data(256);
        let mut t = MerkleTree::build_from_f32(&d, 64, &hasher(1e-5), &Device::host_serial());
        t.update_region(&d, 0..10, &hasher(1e-4));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_leaves_panics() {
        let _ = MerkleTree::from_leaves(Vec::new(), 64, 0, 1e-5, &Device::host_serial());
    }
}
