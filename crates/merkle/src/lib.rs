//! GPU-style flattened Merkle trees over error-bounded chunk hashes.
//!
//! A checkpoint's *compact metadata* is a complete binary tree whose
//! leaves are the error-bounded digests of its chunks and whose interior
//! nodes hash their two children ([`reprocmp_hash::Digest128::combine`]).
//! The tree is stored as a flat array — Merkle trees here never change
//! shape after construction, and flat indexing (`parent = (i-1)/2`,
//! `children = 2i+1, 2i+2`) turns every level into one data-parallel
//! kernel with a single synchronization between levels, exactly the
//! paper's Kokkos formulation.
//!
//! Comparison ([`compare::compare_trees`]) is a level-synchronous
//! breadth-first search that *starts in the middle of the tree* (at the
//! first level wide enough to occupy every execution lane) and prunes
//! any subtree whose two root digests agree — the digests' conservative
//! construction guarantees no difference above the error bound hides in
//! a pruned subtree.
//!
//! # Example
//!
//! ```
//! use reprocmp_device::Device;
//! use reprocmp_hash::{ChunkHasher, Quantizer};
//! use reprocmp_merkle::{compare_trees, MerkleTree};
//!
//! let hasher = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
//! let dev = Device::host_serial();
//!
//! let run1: Vec<f32> = (0..4096).map(|i| (i as f32).cos()).collect();
//! let mut run2 = run1.clone();
//! run2[3000] += 0.5; // diverges in chunk 3000*4/1024 = 11
//!
//! let a = MerkleTree::build_from_f32(&run1, 1024, &hasher, &dev);
//! let b = MerkleTree::build_from_f32(&run2, 1024, &hasher, &dev);
//! let outcome = compare_trees(&a, &b, &dev, 4).unwrap();
//! assert_eq!(outcome.mismatched_leaves, vec![11]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod compare;
pub mod serial;
pub mod tree;

pub use compare::{
    compare_subtree, compare_trees, compare_trees_traced, start_level_for, CompareOutcome,
    SubtreeOutcome, TreeCompareError,
};
pub use serial::{decode_tree, encode_tree, TreeCodecError};
pub use tree::MerkleTree;
