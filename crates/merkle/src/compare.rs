//! Level-synchronous breadth-first tree comparison with pruning.
//!
//! Starting at the root wastes parallel lanes: the top levels have fewer
//! nodes than the device has threads. The paper therefore starts the
//! search *in the middle of the tree* — at the first level whose width
//! is at least the device's concurrency — comparing every node of that
//! level in one kernel. From there:
//!
//! * matching nodes prune their whole subtree (the conservative hash
//!   guarantees nothing above the bound hides below them);
//! * mismatching nodes enqueue their children;
//! * the frontier advances one level per kernel until the leaves.
//!
//! Mismatched *leaves* are the output: the set of chunks that stage two
//! must stream back from the PFS and verify element-wise.

use reprocmp_device::{Device, Workload};
use reprocmp_obs::{PhaseCost, Tracer};

use crate::tree::MerkleTree;

/// Why two trees could not be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeCompareError {
    /// Trees disagree in leaf count, chunk size, payload size, or error
    /// bound; node-for-node comparison would be meaningless.
    IncompatibleShape {
        /// Geometry of the first tree, `(leaves, chunk_bytes, data_len)`.
        a: (usize, usize, u64),
        /// Geometry of the second tree.
        b: (usize, usize, u64),
    },
}

impl std::fmt::Display for TreeCompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeCompareError::IncompatibleShape { a, b } => write!(
                f,
                "trees are not comparable: {a:?} vs {b:?} (leaves, chunk bytes, data len)"
            ),
        }
    }
}

impl std::error::Error for TreeCompareError {}

/// The result of a pruning BFS over two trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompareOutcome {
    /// Chunk indices whose leaf digests differ — stage two's work list.
    pub mismatched_leaves: Vec<usize>,
    /// Total node pairs whose digests were compared.
    pub nodes_visited: usize,
    /// Levels the BFS descended through (including the start level).
    pub levels_descended: usize,
    /// Frontier nodes that matched, each pruning a whole subtree.
    pub pruned_subtrees: usize,
}

impl CompareOutcome {
    /// True when the two checkpoints agree everywhere within the bound
    /// (up to hash false positives, which are zero here by definition —
    /// an empty mismatch list needs no verification at all).
    #[must_use]
    pub fn identical(&self) -> bool {
        self.mismatched_leaves.is_empty()
    }

    /// Bytes and ops this BFS moved, as a [`PhaseCost`] with the given
    /// time (the caller owns the clock that timed the walk): 32 digest
    /// bytes read per node pair visited, one comparison op each.
    #[must_use]
    pub fn phase_cost(&self, time: std::time::Duration) -> PhaseCost {
        PhaseCost::new(
            time,
            (self.nodes_visited * 32) as u64,
            self.nodes_visited as u64,
        )
    }
}

/// Compares two trees with a pruning BFS starting mid-tree.
///
/// `lane_hint` is the concurrency the start level should saturate; pass
/// [`Device::concurrent_kernel_threads`] for fidelity with the paper (a
/// GPU wants tens of thousands of lanes busy) or a small number to
/// start near the root.
///
/// # Errors
///
/// [`TreeCompareError::IncompatibleShape`] when the trees cannot be
/// compared node-for-node.
pub fn compare_trees(
    a: &MerkleTree,
    b: &MerkleTree,
    device: &Device,
    lane_hint: usize,
) -> Result<CompareOutcome, TreeCompareError> {
    compare_trees_traced(a, b, device, lane_hint, &Tracer::disabled())
}

/// [`compare_trees`] with tracing: the walk runs under a
/// `stage1.bfs` span with one `stage1.level{n}` child span per level
/// kernel, stamped on the tracer's clock. A disabled tracer makes this
/// identical to the untraced call.
///
/// # Errors
///
/// [`TreeCompareError::IncompatibleShape`] when the trees cannot be
/// compared node-for-node.
pub fn compare_trees_traced(
    a: &MerkleTree,
    b: &MerkleTree,
    device: &Device,
    lane_hint: usize,
    tracer: &Tracer,
) -> Result<CompareOutcome, TreeCompareError> {
    let _bfs_span = tracer.span("stage1.bfs");
    if !a.comparable(b) {
        return Err(TreeCompareError::IncompatibleShape {
            a: (a.leaf_count(), a.chunk_bytes(), a.data_len()),
            b: (b.leaf_count(), b.chunk_bytes(), b.data_len()),
        });
    }

    let levels = a.levels();
    let leaf_level = levels - 1;
    let start_level = start_level_for(levels, lane_hint.max(1));

    let mut outcome = CompareOutcome::default();
    // Frontier of flat node indices still in question.
    let mut frontier: Vec<usize> = a.level_range(start_level).collect();

    for level in start_level..levels {
        if frontier.is_empty() {
            break;
        }
        let _level_span = tracer.span(format!("stage1.level{level}"));
        outcome.levels_descended += 1;
        outcome.nodes_visited += frontier.len();

        // One kernel: compare every frontier pair. 32 bytes read per
        // node pair, one comparison op.
        let w = Workload::new((frontier.len() * 32) as u64, frontier.len() as u64);
        let frontier_ref = &frontier;
        let mismatch: Vec<bool> = device.parallel_map(frontier.len(), w, |i| {
            let idx = frontier_ref[i];
            a.node(idx) != b.node(idx)
        });

        let mut next = Vec::new();
        let leaf_base = a.leaf_base();
        for (i, &idx) in frontier.iter().enumerate() {
            if !mismatch[i] {
                outcome.pruned_subtrees += 1;
                continue;
            }
            if level == leaf_level {
                let leaf_index = idx - leaf_base;
                // Padded sentinel leaves are identical by construction,
                // so a mismatching leaf is always a real chunk.
                debug_assert!(leaf_index < a.leaf_count());
                outcome.mismatched_leaves.push(leaf_index);
            } else {
                next.push(2 * idx + 1);
                next.push(2 * idx + 2);
            }
        }
        frontier = next;
    }

    outcome.mismatched_leaves.sort_unstable();
    Ok(outcome)
}

/// The result of resolving one mismatching subtree pair with
/// [`compare_subtree`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubtreeOutcome {
    /// Mismatched leaf offsets *relative to the subtree's leftmost leaf
    /// slot*, sorted ascending. Relative offsets are what makes the
    /// result reusable: any other tree pair whose node digests equal
    /// this pair's at the same height has the same mismatch set, no
    /// matter where the subtree sits in the full tree.
    pub rel_mismatched: Vec<u32>,
    /// Node pairs compared strictly *below* the subtree root (the root
    /// pair itself is counted by whoever walked the frontier that
    /// reached it).
    pub nodes_visited: usize,
}

/// Resolves one subtree pair: a pruning BFS restricted to the subtree
/// rooted at flat node index `root_idx`, returning mismatched leaf
/// offsets relative to the subtree's leftmost leaf slot.
///
/// This is the metadata cache's resolution path: the scheduler walks
/// each job's start-level frontier, and every mismatching frontier pair
/// it has not seen before is resolved once with this function and
/// memoized by `(digest_a, digest_b, height)`. Visiting exactly the
/// nodes the full [`compare_trees`] BFS would visit inside this subtree
/// keeps the cached and uncached node-visit accounting in exact
/// correspondence (`uncached visits == cached visits + saved visits`).
/// Each call is serial; batch parallelism comes from resolving many
/// distinct subtrees concurrently.
///
/// Both trees must be [`MerkleTree::comparable`] and `root_idx` must be
/// a valid node index in both; an equal pair yields an empty outcome.
#[must_use]
pub fn compare_subtree(a: &MerkleTree, b: &MerkleTree, root_idx: usize) -> SubtreeOutcome {
    debug_assert!(a.comparable(b), "compare_subtree on incomparable trees");
    let levels = a.levels();
    let leaf_level = levels - 1;
    let root_level = usize::try_from((root_idx as u64 + 1).ilog2()).expect("level fits usize");
    let leaf_base = a.leaf_base();

    let mut out = SubtreeOutcome::default();
    if root_level == leaf_level {
        // The "subtree" is a single leaf pair. Padded sentinel leaves
        // are identical by construction, so a mismatching leaf is a
        // real chunk.
        if a.node(root_idx) != b.node(root_idx) {
            out.rel_mismatched.push(0);
        }
        return out;
    }

    // Leftmost leaf slot under the root, in padded-leaf coordinates.
    let mut first = root_idx;
    for _ in root_level..leaf_level {
        first = 2 * first + 1;
    }
    let first_leaf_slot = first - leaf_base;

    if a.node(root_idx) == b.node(root_idx) {
        return out;
    }
    let mut frontier = vec![2 * root_idx + 1, 2 * root_idx + 2];
    for level in (root_level + 1)..levels {
        if frontier.is_empty() {
            break;
        }
        out.nodes_visited += frontier.len();
        let mut next = Vec::new();
        for &idx in &frontier {
            if a.node(idx) == b.node(idx) {
                continue;
            }
            if level == leaf_level {
                let rel = idx - leaf_base - first_leaf_slot;
                debug_assert!(idx - leaf_base < a.leaf_count());
                out.rel_mismatched
                    .push(u32::try_from(rel).expect("subtree width fits u32"));
            } else {
                next.push(2 * idx + 1);
                next.push(2 * idx + 2);
            }
        }
        frontier = next;
    }
    out.rel_mismatched.sort_unstable();
    out
}

/// The first level (from the root) whose width is at least `lanes`,
/// clamped to the leaf level. This is where the pruning BFS starts
/// (see the module docs) and where the batch scheduler takes its
/// cacheable frontier.
#[must_use]
pub fn start_level_for(levels: usize, lanes: usize) -> usize {
    let leaf_level = levels - 1;
    for l in 0..levels {
        if (1usize << l) >= lanes {
            return l.min(leaf_level);
        }
    }
    leaf_level
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprocmp_device::Device;
    use reprocmp_hash::{ChunkHasher, Quantizer};

    fn hasher(bound: f64) -> ChunkHasher {
        ChunkHasher::new(Quantizer::new(bound).unwrap())
    }

    fn tree(data: &[f32], chunk_bytes: usize, bound: f64) -> MerkleTree {
        MerkleTree::build_from_f32(data, chunk_bytes, &hasher(bound), &Device::host_serial())
    }

    fn base_data(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.11).cos() * 3.0).collect()
    }

    /// Reference: brute-force leaf scan.
    fn leaf_scan(a: &MerkleTree, b: &MerkleTree) -> Vec<usize> {
        (0..a.leaf_count())
            .filter(|&i| a.leaf(i) != b.leaf(i))
            .collect()
    }

    #[test]
    fn identical_trees_prune_everything_at_start_level() {
        let d = base_data(4096);
        let a = tree(&d, 128, 1e-5);
        let b = tree(&d, 128, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 8).unwrap();
        assert!(out.identical());
        assert_eq!(out.levels_descended, 1);
        assert_eq!(out.nodes_visited, 8);
        assert_eq!(out.pruned_subtrees, 8);
    }

    #[test]
    fn finds_exactly_the_changed_chunks() {
        let d = base_data(8192);
        let mut d2 = d.clone();
        // chunk_bytes 256 = 64 floats per chunk; change floats in chunks 3, 64, 100.
        d2[3 * 64 + 5] += 1.0;
        d2[64 * 64] += 1.0;
        d2[100 * 64 + 63] += 1.0;
        let a = tree(&d, 256, 1e-5);
        let b = tree(&d2, 256, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_parallel(4), 16).unwrap();
        assert_eq!(out.mismatched_leaves, vec![3, 64, 100]);
        assert_eq!(out.mismatched_leaves, leaf_scan(&a, &b));
    }

    #[test]
    fn bfs_agrees_with_leaf_scan_for_all_lane_hints() {
        let d = base_data(5000);
        let mut d2 = d.clone();
        for i in (0..5000).step_by(997) {
            d2[i] += 0.7;
        }
        let a = tree(&d, 100, 1e-6);
        let b = tree(&d2, 100, 1e-6);
        let expect = leaf_scan(&a, &b);
        for lanes in [1, 2, 7, 64, 1_000_000] {
            let out = compare_trees(&a, &b, &Device::host_serial(), lanes).unwrap();
            assert_eq!(out.mismatched_leaves, expect, "lanes={lanes}");
        }
    }

    #[test]
    fn pruning_visits_far_fewer_nodes_than_full_scan_when_localized() {
        let d = base_data(1 << 16); // 65536 floats, 64B chunks -> 4096 leaves
        let mut d2 = d.clone();
        d2[12345] += 2.0; // one chunk differs
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d2, 64, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 32).unwrap();
        assert_eq!(out.mismatched_leaves.len(), 1);
        // Start level width 32, then one path down ~7 more levels of 2.
        assert!(
            out.nodes_visited < 64,
            "visited {} nodes out of {}",
            out.nodes_visited,
            a.node_count()
        );
    }

    #[test]
    fn all_chunks_differing_visits_whole_subtree_below_start() {
        let d = base_data(1024);
        let d2: Vec<f32> = d.iter().map(|&x| x + 1.0).collect();
        let a = tree(&d, 16, 1e-5); // 4 floats per chunk -> 256 leaves
        let b = tree(&d2, 16, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 1).unwrap();
        assert_eq!(out.mismatched_leaves.len(), 256);
        assert_eq!(out.pruned_subtrees, 0);
    }

    #[test]
    fn incompatible_shapes_error() {
        let d = base_data(1024);
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d, 128, 1e-5);
        let err = compare_trees(&a, &b, &Device::host_serial(), 4).unwrap_err();
        assert!(matches!(err, TreeCompareError::IncompatibleShape { .. }));
        assert!(err.to_string().contains("not comparable"));
    }

    #[test]
    fn different_bounds_are_incomparable() {
        let d = base_data(1024);
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d, 64, 1e-4);
        assert!(compare_trees(&a, &b, &Device::host_serial(), 4).is_err());
    }

    #[test]
    fn start_level_selection() {
        // 5 levels: widths 1,2,4,8,16.
        assert_eq!(start_level_for(5, 1), 0);
        assert_eq!(start_level_for(5, 2), 1);
        assert_eq!(start_level_for(5, 5), 3);
        assert_eq!(start_level_for(5, 16), 4);
        assert_eq!(start_level_for(5, 1_000), 4); // clamped to leaves
        assert_eq!(start_level_for(1, 64), 0); // single-node tree
    }

    #[test]
    fn single_leaf_trees_compare() {
        let a = tree(&[1.0, 2.0], 4096, 1e-5);
        let mut big = vec![1.0f32, 2.0];
        big[1] += 1.0;
        let b = tree(&big, 4096, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 128).unwrap();
        assert_eq!(out.mismatched_leaves, vec![0]);
    }

    #[test]
    fn traced_bfs_emits_one_level_span_per_descent() {
        use reprocmp_obs::{ObsClock, Tracer};
        let d = base_data(4096);
        let mut d2 = d.clone();
        d2[1000] += 1.0;
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d2, 64, 1e-5);
        let tracer = Tracer::new(ObsClock::wall());
        let out = compare_trees_traced(&a, &b, &Device::host_serial(), 8, &tracer).unwrap();
        let recs = tracer.records();
        assert_eq!(recs[0].name, "stage1.bfs");
        assert_eq!(recs[0].parent, None);
        let levels: Vec<&str> = recs[1..].iter().map(|r| r.name.as_str()).collect();
        assert_eq!(levels.len(), out.levels_descended);
        assert!(levels[0].starts_with("stage1.level"));
        assert!(
            recs[1..].iter().all(|r| r.parent == Some(0)),
            "levels nest under bfs"
        );
        // Untraced call returns the same outcome.
        assert_eq!(
            out,
            compare_trees(&a, &b, &Device::host_serial(), 8).unwrap()
        );
        // Phase-cost accounting covers every visited node pair.
        let cost = out.phase_cost(std::time::Duration::from_secs(1));
        assert_eq!(cost.ops, out.nodes_visited as u64);
        assert_eq!(cost.bytes, (out.nodes_visited * 32) as u64);
    }

    /// Walking the start-level frontier by hand and resolving each
    /// mismatching pair with `compare_subtree` reproduces the full BFS
    /// exactly: same leaves, and frontier width + subtree visits equals
    /// the BFS visit count. This is the correspondence the batch
    /// scheduler's cache accounting relies on.
    #[test]
    fn subtree_resolution_matches_full_bfs() {
        let d = base_data(6000);
        let mut d2 = d.clone();
        for i in (0..6000).step_by(463) {
            d2[i] += 0.9;
        }
        let a = tree(&d, 80, 1e-5); // 20 floats per chunk -> 300 leaves
        let b = tree(&d2, 80, 1e-5);
        for lanes in [1, 4, 32, 512] {
            let full = compare_trees(&a, &b, &Device::host_serial(), lanes).unwrap();
            let start = start_level_for(a.levels(), lanes);
            let leaf_base = a.leaf_base();
            let mut leaves = Vec::new();
            let mut visits = 0usize;
            for idx in a.level_range(start) {
                visits += 1;
                let out = compare_subtree(&a, &b, idx);
                visits += out.nodes_visited;
                let first = {
                    let mut i = idx;
                    while i < leaf_base {
                        i = 2 * i + 1;
                    }
                    i - leaf_base
                };
                leaves.extend(out.rel_mismatched.iter().map(|&r| first + r as usize));
            }
            leaves.sort_unstable();
            assert_eq!(leaves, full.mismatched_leaves, "lanes={lanes}");
            assert_eq!(visits, full.nodes_visited, "lanes={lanes}");
        }
    }

    #[test]
    fn subtree_on_equal_pair_is_empty() {
        let d = base_data(512);
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d, 64, 1e-5);
        let out = compare_subtree(&a, &b, 0);
        assert_eq!(out, SubtreeOutcome::default());
    }

    #[test]
    fn sim_gpu_compare_matches_serial() {
        let d = base_data(4096);
        let mut d2 = d.clone();
        d2[100] += 1.0;
        d2[4000] += 1.0;
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d2, 64, 1e-5);
        let gpu = Device::sim_gpu();
        let out_gpu = compare_trees(&a, &b, &gpu, gpu.concurrent_kernel_threads()).unwrap();
        let out_ser = compare_trees(&a, &b, &Device::host_serial(), 1).unwrap();
        assert_eq!(out_gpu.mismatched_leaves, out_ser.mismatched_leaves);
    }
}
