//! Level-synchronous breadth-first tree comparison with pruning.
//!
//! Starting at the root wastes parallel lanes: the top levels have fewer
//! nodes than the device has threads. The paper therefore starts the
//! search *in the middle of the tree* — at the first level whose width
//! is at least the device's concurrency — comparing every node of that
//! level in one kernel. From there:
//!
//! * matching nodes prune their whole subtree (the conservative hash
//!   guarantees nothing above the bound hides below them);
//! * mismatching nodes enqueue their children;
//! * the frontier advances one level per kernel until the leaves.
//!
//! Mismatched *leaves* are the output: the set of chunks that stage two
//! must stream back from the PFS and verify element-wise.

use reprocmp_device::{Device, Workload};
use reprocmp_obs::{PhaseCost, Tracer};

use crate::tree::MerkleTree;

/// Why two trees could not be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeCompareError {
    /// Trees disagree in leaf count, chunk size, payload size, or error
    /// bound; node-for-node comparison would be meaningless.
    IncompatibleShape {
        /// Geometry of the first tree, `(leaves, chunk_bytes, data_len)`.
        a: (usize, usize, u64),
        /// Geometry of the second tree.
        b: (usize, usize, u64),
    },
}

impl std::fmt::Display for TreeCompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeCompareError::IncompatibleShape { a, b } => write!(
                f,
                "trees are not comparable: {a:?} vs {b:?} (leaves, chunk bytes, data len)"
            ),
        }
    }
}

impl std::error::Error for TreeCompareError {}

/// The result of a pruning BFS over two trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompareOutcome {
    /// Chunk indices whose leaf digests differ — stage two's work list.
    pub mismatched_leaves: Vec<usize>,
    /// Total node pairs whose digests were compared.
    pub nodes_visited: usize,
    /// Levels the BFS descended through (including the start level).
    pub levels_descended: usize,
    /// Frontier nodes that matched, each pruning a whole subtree.
    pub pruned_subtrees: usize,
}

impl CompareOutcome {
    /// True when the two checkpoints agree everywhere within the bound
    /// (up to hash false positives, which are zero here by definition —
    /// an empty mismatch list needs no verification at all).
    #[must_use]
    pub fn identical(&self) -> bool {
        self.mismatched_leaves.is_empty()
    }

    /// Bytes and ops this BFS moved, as a [`PhaseCost`] with the given
    /// time (the caller owns the clock that timed the walk): 32 digest
    /// bytes read per node pair visited, one comparison op each.
    #[must_use]
    pub fn phase_cost(&self, time: std::time::Duration) -> PhaseCost {
        PhaseCost::new(
            time,
            (self.nodes_visited * 32) as u64,
            self.nodes_visited as u64,
        )
    }
}

/// Compares two trees with a pruning BFS starting mid-tree.
///
/// `lane_hint` is the concurrency the start level should saturate; pass
/// [`Device::concurrent_kernel_threads`] for fidelity with the paper (a
/// GPU wants tens of thousands of lanes busy) or a small number to
/// start near the root.
///
/// # Errors
///
/// [`TreeCompareError::IncompatibleShape`] when the trees cannot be
/// compared node-for-node.
pub fn compare_trees(
    a: &MerkleTree,
    b: &MerkleTree,
    device: &Device,
    lane_hint: usize,
) -> Result<CompareOutcome, TreeCompareError> {
    compare_trees_traced(a, b, device, lane_hint, &Tracer::disabled())
}

/// [`compare_trees`] with tracing: the walk runs under a
/// `stage1.bfs` span with one `stage1.level{n}` child span per level
/// kernel, stamped on the tracer's clock. A disabled tracer makes this
/// identical to the untraced call.
///
/// # Errors
///
/// [`TreeCompareError::IncompatibleShape`] when the trees cannot be
/// compared node-for-node.
pub fn compare_trees_traced(
    a: &MerkleTree,
    b: &MerkleTree,
    device: &Device,
    lane_hint: usize,
    tracer: &Tracer,
) -> Result<CompareOutcome, TreeCompareError> {
    let _bfs_span = tracer.span("stage1.bfs");
    if !a.comparable(b) {
        return Err(TreeCompareError::IncompatibleShape {
            a: (a.leaf_count(), a.chunk_bytes(), a.data_len()),
            b: (b.leaf_count(), b.chunk_bytes(), b.data_len()),
        });
    }

    let levels = a.levels();
    let leaf_level = levels - 1;
    let start_level = start_level_for(levels, lane_hint.max(1));

    let mut outcome = CompareOutcome::default();
    // Frontier of flat node indices still in question.
    let mut frontier: Vec<usize> = a.level_range(start_level).collect();

    for level in start_level..levels {
        if frontier.is_empty() {
            break;
        }
        let _level_span = tracer.span(format!("stage1.level{level}"));
        outcome.levels_descended += 1;
        outcome.nodes_visited += frontier.len();

        // One kernel: compare every frontier pair. 32 bytes read per
        // node pair, one comparison op.
        let w = Workload::new((frontier.len() * 32) as u64, frontier.len() as u64);
        let frontier_ref = &frontier;
        let mismatch: Vec<bool> = device.parallel_map(frontier.len(), w, |i| {
            let idx = frontier_ref[i];
            a.node(idx) != b.node(idx)
        });

        let mut next = Vec::new();
        let leaf_base = a.leaf_base();
        for (i, &idx) in frontier.iter().enumerate() {
            if !mismatch[i] {
                outcome.pruned_subtrees += 1;
                continue;
            }
            if level == leaf_level {
                let leaf_index = idx - leaf_base;
                // Padded sentinel leaves are identical by construction,
                // so a mismatching leaf is always a real chunk.
                debug_assert!(leaf_index < a.leaf_count());
                outcome.mismatched_leaves.push(leaf_index);
            } else {
                next.push(2 * idx + 1);
                next.push(2 * idx + 2);
            }
        }
        frontier = next;
    }

    outcome.mismatched_leaves.sort_unstable();
    Ok(outcome)
}

/// The first level (from the root) whose width is at least `lanes`,
/// clamped to the leaf level.
fn start_level_for(levels: usize, lanes: usize) -> usize {
    let leaf_level = levels - 1;
    for l in 0..levels {
        if (1usize << l) >= lanes {
            return l.min(leaf_level);
        }
    }
    leaf_level
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprocmp_device::Device;
    use reprocmp_hash::{ChunkHasher, Quantizer};

    fn hasher(bound: f64) -> ChunkHasher {
        ChunkHasher::new(Quantizer::new(bound).unwrap())
    }

    fn tree(data: &[f32], chunk_bytes: usize, bound: f64) -> MerkleTree {
        MerkleTree::build_from_f32(data, chunk_bytes, &hasher(bound), &Device::host_serial())
    }

    fn base_data(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.11).cos() * 3.0).collect()
    }

    /// Reference: brute-force leaf scan.
    fn leaf_scan(a: &MerkleTree, b: &MerkleTree) -> Vec<usize> {
        (0..a.leaf_count())
            .filter(|&i| a.leaf(i) != b.leaf(i))
            .collect()
    }

    #[test]
    fn identical_trees_prune_everything_at_start_level() {
        let d = base_data(4096);
        let a = tree(&d, 128, 1e-5);
        let b = tree(&d, 128, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 8).unwrap();
        assert!(out.identical());
        assert_eq!(out.levels_descended, 1);
        assert_eq!(out.nodes_visited, 8);
        assert_eq!(out.pruned_subtrees, 8);
    }

    #[test]
    fn finds_exactly_the_changed_chunks() {
        let d = base_data(8192);
        let mut d2 = d.clone();
        // chunk_bytes 256 = 64 floats per chunk; change floats in chunks 3, 64, 100.
        d2[3 * 64 + 5] += 1.0;
        d2[64 * 64] += 1.0;
        d2[100 * 64 + 63] += 1.0;
        let a = tree(&d, 256, 1e-5);
        let b = tree(&d2, 256, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_parallel(4), 16).unwrap();
        assert_eq!(out.mismatched_leaves, vec![3, 64, 100]);
        assert_eq!(out.mismatched_leaves, leaf_scan(&a, &b));
    }

    #[test]
    fn bfs_agrees_with_leaf_scan_for_all_lane_hints() {
        let d = base_data(5000);
        let mut d2 = d.clone();
        for i in (0..5000).step_by(997) {
            d2[i] += 0.7;
        }
        let a = tree(&d, 100, 1e-6);
        let b = tree(&d2, 100, 1e-6);
        let expect = leaf_scan(&a, &b);
        for lanes in [1, 2, 7, 64, 1_000_000] {
            let out = compare_trees(&a, &b, &Device::host_serial(), lanes).unwrap();
            assert_eq!(out.mismatched_leaves, expect, "lanes={lanes}");
        }
    }

    #[test]
    fn pruning_visits_far_fewer_nodes_than_full_scan_when_localized() {
        let d = base_data(1 << 16); // 65536 floats, 64B chunks -> 4096 leaves
        let mut d2 = d.clone();
        d2[12345] += 2.0; // one chunk differs
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d2, 64, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 32).unwrap();
        assert_eq!(out.mismatched_leaves.len(), 1);
        // Start level width 32, then one path down ~7 more levels of 2.
        assert!(
            out.nodes_visited < 64,
            "visited {} nodes out of {}",
            out.nodes_visited,
            a.node_count()
        );
    }

    #[test]
    fn all_chunks_differing_visits_whole_subtree_below_start() {
        let d = base_data(1024);
        let d2: Vec<f32> = d.iter().map(|&x| x + 1.0).collect();
        let a = tree(&d, 16, 1e-5); // 4 floats per chunk -> 256 leaves
        let b = tree(&d2, 16, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 1).unwrap();
        assert_eq!(out.mismatched_leaves.len(), 256);
        assert_eq!(out.pruned_subtrees, 0);
    }

    #[test]
    fn incompatible_shapes_error() {
        let d = base_data(1024);
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d, 128, 1e-5);
        let err = compare_trees(&a, &b, &Device::host_serial(), 4).unwrap_err();
        assert!(matches!(err, TreeCompareError::IncompatibleShape { .. }));
        assert!(err.to_string().contains("not comparable"));
    }

    #[test]
    fn different_bounds_are_incomparable() {
        let d = base_data(1024);
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d, 64, 1e-4);
        assert!(compare_trees(&a, &b, &Device::host_serial(), 4).is_err());
    }

    #[test]
    fn start_level_selection() {
        // 5 levels: widths 1,2,4,8,16.
        assert_eq!(start_level_for(5, 1), 0);
        assert_eq!(start_level_for(5, 2), 1);
        assert_eq!(start_level_for(5, 5), 3);
        assert_eq!(start_level_for(5, 16), 4);
        assert_eq!(start_level_for(5, 1_000), 4); // clamped to leaves
        assert_eq!(start_level_for(1, 64), 0); // single-node tree
    }

    #[test]
    fn single_leaf_trees_compare() {
        let a = tree(&[1.0, 2.0], 4096, 1e-5);
        let mut big = vec![1.0f32, 2.0];
        big[1] += 1.0;
        let b = tree(&big, 4096, 1e-5);
        let out = compare_trees(&a, &b, &Device::host_serial(), 128).unwrap();
        assert_eq!(out.mismatched_leaves, vec![0]);
    }

    #[test]
    fn traced_bfs_emits_one_level_span_per_descent() {
        use reprocmp_obs::{ObsClock, Tracer};
        let d = base_data(4096);
        let mut d2 = d.clone();
        d2[1000] += 1.0;
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d2, 64, 1e-5);
        let tracer = Tracer::new(ObsClock::wall());
        let out = compare_trees_traced(&a, &b, &Device::host_serial(), 8, &tracer).unwrap();
        let recs = tracer.records();
        assert_eq!(recs[0].name, "stage1.bfs");
        assert_eq!(recs[0].parent, None);
        let levels: Vec<&str> = recs[1..].iter().map(|r| r.name.as_str()).collect();
        assert_eq!(levels.len(), out.levels_descended);
        assert!(levels[0].starts_with("stage1.level"));
        assert!(
            recs[1..].iter().all(|r| r.parent == Some(0)),
            "levels nest under bfs"
        );
        // Untraced call returns the same outcome.
        assert_eq!(
            out,
            compare_trees(&a, &b, &Device::host_serial(), 8).unwrap()
        );
        // Phase-cost accounting covers every visited node pair.
        let cost = out.phase_cost(std::time::Duration::from_secs(1));
        assert_eq!(cost.ops, out.nodes_visited as u64);
        assert_eq!(cost.bytes, (out.nodes_visited * 32) as u64);
    }

    #[test]
    fn sim_gpu_compare_matches_serial() {
        let d = base_data(4096);
        let mut d2 = d.clone();
        d2[100] += 1.0;
        d2[4000] += 1.0;
        let a = tree(&d, 64, 1e-5);
        let b = tree(&d2, 64, 1e-5);
        let gpu = Device::sim_gpu();
        let out_gpu = compare_trees(&a, &b, &gpu, gpu.concurrent_kernel_threads()).unwrap();
        let out_ser = compare_trees(&a, &b, &Device::host_serial(), 1).unwrap();
        assert_eq!(out_gpu.mismatched_leaves, out_ser.mismatched_leaves);
    }
}
