//! Merkle-tree metadata (de)serialization.
//!
//! The tree is the checkpoint's *compact metadata*, saved to the PFS
//! next to the checkpoint at capture time and read back (instead of the
//! checkpoint itself) at comparison time. The format is a fixed binary
//! header followed by the flat digest array:
//!
//! ```text
//! magic    [8]  b"RCMPMTR1"
//! version  u32  (currently 1)
//! leaves   u64  real leaf count
//! chunk    u64  chunk size in bytes
//! datalen  u64  original payload bytes
//! bound    f64  absolute error bound (bit pattern)
//! nodes    u64  node count (must be 2 * next_pow2(leaves) - 1)
//! digests  [nodes * 16 bytes]
//! ```
//!
//! Everything is little-endian.

use bytes::{Buf, BufMut};
use reprocmp_hash::Digest128;

use crate::tree::MerkleTree;

/// Format magic.
pub const MAGIC: &[u8; 8] = b"RCMPMTR1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8 + 8;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeCodecError {
    /// The buffer is shorter than a header or its declared digest array.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes present.
        got: usize,
    },
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Header fields are inconsistent (node count vs leaf count, zero
    /// sizes, non-finite bound).
    Corrupt(&'static str),
}

impl std::fmt::Display for TreeCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeCodecError::Truncated { needed, got } => {
                write!(f, "metadata truncated: need {needed} bytes, have {got}")
            }
            TreeCodecError::BadMagic => write!(f, "not reprocmp Merkle metadata (bad magic)"),
            TreeCodecError::BadVersion(v) => write!(f, "unsupported metadata version {v}"),
            TreeCodecError::Corrupt(what) => write!(f, "corrupt metadata: {what}"),
        }
    }
}

impl std::error::Error for TreeCodecError {}

/// Serializes a tree to its on-disk representation.
#[must_use]
pub fn encode_tree(tree: &MerkleTree) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + tree.node_count() * 16);
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u64_le(tree.leaf_count() as u64);
    out.put_u64_le(tree.chunk_bytes() as u64);
    out.put_u64_le(tree.data_len());
    out.put_f64_le(tree.error_bound());
    out.put_u64_le(tree.node_count() as u64);
    for node in tree.nodes() {
        out.put_slice(&node.to_bytes());
    }
    out
}

/// Parses a tree from bytes produced by [`encode_tree`].
///
/// # Errors
///
/// Any [`TreeCodecError`] variant; the input is never trusted.
pub fn decode_tree(mut buf: &[u8]) -> Result<MerkleTree, TreeCodecError> {
    if buf.len() < HEADER_LEN {
        return Err(TreeCodecError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TreeCodecError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TreeCodecError::BadVersion(version));
    }
    let leaves = buf.get_u64_le() as usize;
    let chunk_bytes = buf.get_u64_le() as usize;
    let data_len = buf.get_u64_le();
    let bound = buf.get_f64_le();
    let nodes_len = buf.get_u64_le() as usize;

    if leaves == 0 {
        return Err(TreeCodecError::Corrupt("zero leaf count"));
    }
    if chunk_bytes == 0 {
        return Err(TreeCodecError::Corrupt("zero chunk size"));
    }
    if !(bound.is_finite() && bound > 0.0) {
        return Err(TreeCodecError::Corrupt("invalid error bound"));
    }
    let expected_nodes = leaves
        .checked_next_power_of_two()
        .and_then(|p| p.checked_mul(2))
        .map(|n| n - 1)
        .ok_or(TreeCodecError::Corrupt("leaf count overflow"))?;
    if nodes_len != expected_nodes {
        return Err(TreeCodecError::Corrupt("node count does not match leaves"));
    }
    // The node count is bounded by the remaining buffer before any
    // allocation happens: a hostile header cannot demand an OOM-sized
    // digest array, and the multiplication itself is overflow-checked.
    let digest_bytes = nodes_len
        .checked_mul(16)
        .ok_or(TreeCodecError::Corrupt("node count overflow"))?;
    if buf.remaining() < digest_bytes {
        return Err(TreeCodecError::Truncated {
            needed: HEADER_LEN + digest_bytes,
            got: HEADER_LEN + buf.remaining(),
        });
    }

    let mut nodes = Vec::with_capacity(nodes_len);
    for _ in 0..nodes_len {
        let mut raw = [0u8; 16];
        buf.copy_to_slice(&mut raw);
        nodes.push(Digest128::from_bytes(raw));
    }

    MerkleTree::from_parts(nodes, leaves, chunk_bytes, data_len, bound)
        .ok_or(TreeCodecError::Corrupt("inconsistent geometry"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprocmp_device::Device;
    use reprocmp_hash::{ChunkHasher, Quantizer};

    fn sample_tree() -> MerkleTree {
        let data: Vec<f32> = (0..3000).map(|i| (i as f32).sqrt()).collect();
        let h = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
        MerkleTree::build_from_f32(&data, 128, &h, &Device::host_serial())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_tree();
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.error_bound(), 1e-5);
        assert_eq!(back.chunk_bytes(), 128);
    }

    #[test]
    fn encoded_size_matches_formula() {
        let t = sample_tree();
        let bytes = encode_tree(&t);
        assert_eq!(bytes.len(), HEADER_LEN + t.node_count() * 16);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_tree(&sample_tree());
        bytes[0] = b'X';
        assert_eq!(decode_tree(&bytes), Err(TreeCodecError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_tree(&sample_tree());
        bytes[8] = 99;
        assert!(matches!(
            decode_tree(&bytes),
            Err(TreeCodecError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_anywhere_rejected() {
        let bytes = encode_tree(&sample_tree());
        for cut in [0, 5, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            let err = decode_tree(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TreeCodecError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_node_count_rejected() {
        let mut bytes = encode_tree(&sample_tree());
        // node count lives after magic(8)+ver(4)+leaves(8)+chunk(8)+datalen(8)+bound(8)
        let off = 8 + 4 + 8 + 8 + 8 + 8;
        bytes[off] ^= 0xff;
        assert!(matches!(
            decode_tree(&bytes),
            Err(TreeCodecError::Corrupt(_)) | Err(TreeCodecError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_bound_rejected() {
        let mut bytes = encode_tree(&sample_tree());
        let off = 8 + 4 + 8 + 8 + 8;
        for b in &mut bytes[off..off + 8] {
            *b = 0xff; // NaN bit pattern
        }
        assert_eq!(
            decode_tree(&bytes),
            Err(TreeCodecError::Corrupt("invalid error bound"))
        );
    }

    #[test]
    fn flipped_digest_bit_changes_decoded_tree_not_validity() {
        let t = sample_tree();
        let mut bytes = encode_tree(&t);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let back = decode_tree(&bytes).unwrap();
        assert_ne!(t, back);
        assert!(t.comparable(&back));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = TreeCodecError::Truncated {
            needed: 100,
            got: 7,
        };
        assert!(e.to_string().contains("100"));
        assert!(TreeCodecError::BadMagic.to_string().contains("magic"));
    }
}
