//! Fuzz-style robustness tests for Merkle metadata deserialization.
//!
//! The metadata file is the one artifact the comparison service reads
//! from storage it does not control, so `decode_tree` must treat it as
//! hostile: truncation, bit flips, inconsistent level sizes, and absurd
//! chunk counts must all come back as a typed [`TreeCodecError`] —
//! never a panic (the checked-arithmetic paths in `serial.rs` and
//! `tree.rs::from_parts` exist because these tests overflow `2*p - 1`
//! and `nodes*16` in debug builds otherwise) and never an OOM-sized
//! allocation (the digest array length is validated against the buffer
//! before any allocation).
//!
//! The mutations are driven by a deterministic xorshift generator so
//! failures replay exactly under `cargo test`.

use reprocmp_device::Device;
use reprocmp_hash::{ChunkHasher, Quantizer};
use reprocmp_merkle::serial::HEADER_LEN;
use reprocmp_merkle::{decode_tree, encode_tree, MerkleTree, TreeCodecError};

fn sample_bytes() -> Vec<u8> {
    let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin()).collect();
    let h = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
    encode_tree(&MerkleTree::build_from_f32(
        &data,
        256,
        &h,
        &Device::host_serial(),
    ))
}

/// Deterministic 64-bit xorshift; good enough to scatter mutations.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Decoding must return `Ok` or a typed error; reaching the end of this
/// function without unwinding is the assertion.
fn decode_must_not_panic(bytes: &[u8], what: &str) {
    match decode_tree(bytes) {
        Ok(_) => {}
        Err(
            TreeCodecError::Truncated { .. }
            | TreeCodecError::BadMagic
            | TreeCodecError::BadVersion(_)
            | TreeCodecError::Corrupt(_),
        ) => {}
    }
    let _ = what;
}

#[test]
fn every_truncation_point_yields_typed_error() {
    let bytes = sample_bytes();
    for cut in 0..bytes.len() {
        let res = decode_tree(&bytes[..cut]);
        assert!(
            matches!(res, Err(TreeCodecError::Truncated { .. })),
            "cut at {cut} gave {res:?}"
        );
    }
}

#[test]
fn single_bit_flips_never_panic() {
    let bytes = sample_bytes();
    // Every header bit, plus a scatter of digest-array bits.
    for byte in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1 << bit;
            decode_must_not_panic(&mutated, "header bit flip");
        }
    }
    let mut rng = XorShift(0x5eed_1bad_c0de_0001);
    for _ in 0..2048 {
        let mut mutated = bytes.clone();
        let byte = (rng.next() as usize) % mutated.len();
        let bit = (rng.next() as usize) % 8;
        mutated[byte] ^= 1 << bit;
        decode_must_not_panic(&mutated, "body bit flip");
    }
}

#[test]
fn random_byte_scribbles_never_panic() {
    let bytes = sample_bytes();
    let mut rng = XorShift(0xfeed_face_dead_beef);
    for _ in 0..1024 {
        let mut mutated = bytes.clone();
        let n = 1 + (rng.next() as usize) % 16;
        for _ in 0..n {
            let at = (rng.next() as usize) % mutated.len();
            mutated[at] = rng.next() as u8;
        }
        // Sometimes also truncate.
        if rng.next().is_multiple_of(3) {
            let keep = (rng.next() as usize) % (mutated.len() + 1);
            mutated.truncate(keep);
        }
        decode_must_not_panic(&mutated, "scribble");
    }
}

/// Overwrites the little-endian u64 header field at `off`.
fn poke_u64(bytes: &mut [u8], off: usize, value: u64) {
    bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

const LEAVES_OFF: usize = 8 + 4;
const CHUNK_OFF: usize = LEAVES_OFF + 8;
const NODES_OFF: usize = CHUNK_OFF + 8 + 8 + 8;

#[test]
fn absurd_leaf_counts_rejected_without_allocation_or_overflow() {
    let bytes = sample_bytes();
    // 2^63 is the classic overflow trigger: next_power_of_two succeeds
    // but 2*p - 1 wraps. u64::MAX makes next_power_of_two itself fail.
    for leaves in [
        1u64 << 62,
        1 << 63,
        (1 << 63) + 1,
        u64::MAX - 1,
        u64::MAX,
        0,
    ] {
        let mut mutated = bytes.clone();
        poke_u64(&mut mutated, LEAVES_OFF, leaves);
        let res = decode_tree(&mutated);
        assert!(
            matches!(
                res,
                Err(TreeCodecError::Corrupt(_)) | Err(TreeCodecError::Truncated { .. })
            ),
            "leaves={leaves} gave {res:?}"
        );
    }
}

#[test]
fn absurd_node_counts_rejected_without_allocation_or_overflow() {
    let bytes = sample_bytes();
    // A huge declared node count must fail the leaves-consistency or
    // truncation check before `nodes * 16` bytes are ever reserved.
    for nodes in [1u64 << 60, (u64::MAX / 16) + 1, u64::MAX, 0] {
        let mut mutated = bytes.clone();
        poke_u64(&mut mutated, NODES_OFF, nodes);
        let res = decode_tree(&mutated);
        assert!(
            matches!(
                res,
                Err(TreeCodecError::Corrupt(_)) | Err(TreeCodecError::Truncated { .. })
            ),
            "nodes={nodes} gave {res:?}"
        );
    }
}

#[test]
fn inconsistent_level_sizes_rejected() {
    let bytes = sample_bytes();
    // Leaves and nodes must satisfy nodes == 2*next_pow2(leaves) - 1;
    // perturbing either side breaks the level geometry.
    for delta in [1u64, 2, 7, 16] {
        let mut more_leaves = bytes.clone();
        let leaves = u64::from_le_bytes(bytes[LEAVES_OFF..LEAVES_OFF + 8].try_into().unwrap());
        poke_u64(&mut more_leaves, LEAVES_OFF, leaves + delta);
        assert!(
            decode_tree(&more_leaves).is_err(),
            "leaves+{delta} accepted"
        );

        let mut more_nodes = bytes.clone();
        let nodes = u64::from_le_bytes(bytes[NODES_OFF..NODES_OFF + 8].try_into().unwrap());
        poke_u64(&mut more_nodes, NODES_OFF, nodes + delta);
        assert!(decode_tree(&more_nodes).is_err(), "nodes+{delta} accepted");
    }
}

#[test]
fn zero_chunk_size_rejected() {
    let mut bytes = sample_bytes();
    poke_u64(&mut bytes, CHUNK_OFF, 0);
    assert_eq!(
        decode_tree(&bytes),
        Err(TreeCodecError::Corrupt("zero chunk size"))
    );
}

#[test]
fn random_garbage_buffers_never_panic() {
    let mut rng = XorShift(0x0dd5_eed5_0f0f_a7a7);
    for _ in 0..512 {
        let len = (rng.next() as usize) % 4096;
        let mut buf = vec![0u8; len];
        for b in buf.iter_mut() {
            *b = rng.next() as u8;
        }
        decode_must_not_panic(&buf, "garbage");
        // Garbage behind a valid magic + version exercises the header
        // validation paths instead of bailing at the magic check.
        if buf.len() >= 12 {
            buf[..8].copy_from_slice(b"RCMPMTR1");
            buf[8..12].copy_from_slice(&1u32.to_le_bytes());
            decode_must_not_panic(&buf, "garbage header");
        }
    }
}
