//! Property tests of the Merkle tree and its codec.

use proptest::prelude::*;
use reprocmp_device::Device;
use reprocmp_hash::{ChunkHasher, Quantizer};
use reprocmp_merkle::{compare_trees, decode_tree, encode_tree, MerkleTree};

fn hasher() -> ChunkHasher {
    ChunkHasher::new(Quantizer::new(1e-5).unwrap())
}

proptest! {
    /// Serial, threaded, and sim-GPU builds are bit-identical.
    #[test]
    fn devices_agree_on_the_tree(
        values in proptest::collection::vec(-1e3f32..1e3, 1..800),
        chunk_pow in 2u32..8,
    ) {
        let chunk = 1usize << chunk_pow;
        let h = hasher();
        let serial = MerkleTree::build_from_f32(&values, chunk, &h, &Device::host_serial());
        let threads = MerkleTree::build_from_f32(&values, chunk, &h, &Device::host_parallel(7));
        let gpu = MerkleTree::build_from_f32(&values, chunk, &h, &Device::sim_gpu());
        prop_assert_eq!(&serial, &threads);
        prop_assert_eq!(&serial, &gpu);
    }

    /// Geometry invariants: node count, levels, and level ranges tile
    /// the flat array exactly.
    #[test]
    fn level_ranges_partition_the_nodes(
        values in proptest::collection::vec(-1e3f32..1e3, 1..600),
        chunk_pow in 2u32..7,
    ) {
        let t = MerkleTree::build_from_f32(&values, 1usize << chunk_pow, &hasher(), &Device::host_serial());
        let mut covered = 0usize;
        for level in 0..t.levels() {
            let range = t.level_range(level);
            prop_assert_eq!(range.start, covered);
            covered = range.end;
        }
        prop_assert_eq!(covered, t.node_count());
        prop_assert_eq!(t.node_count(), 2 * t.padded_leaf_count() - 1);
    }

    /// Codec round trip for arbitrary payloads.
    #[test]
    fn codec_round_trip(
        values in proptest::collection::vec(-1e3f32..1e3, 1..500),
        chunk_pow in 2u32..7,
    ) {
        let t = MerkleTree::build_from_f32(&values, 1usize << chunk_pow, &hasher(), &Device::host_serial());
        prop_assert_eq!(decode_tree(&encode_tree(&t)).unwrap(), t);
    }

    /// Decoding arbitrary bytes never panics — it returns Ok or Err.
    #[test]
    fn decode_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let _ = decode_tree(&bytes);
    }

    /// Decoding truncations of valid metadata never panics and never
    /// yields a different-but-valid tree.
    #[test]
    fn truncations_fail_cleanly(
        values in proptest::collection::vec(-1e3f32..1e3, 1..300),
        cut_fraction in 0.0f64..1.0,
    ) {
        let t = MerkleTree::build_from_f32(&values, 32, &hasher(), &Device::host_serial());
        let bytes = encode_tree(&t);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode_tree(&bytes[..cut]).is_err());
    }

    /// Comparing a tree against itself prunes everything at the start
    /// level and finds nothing, for any lane hint.
    #[test]
    fn self_comparison_is_empty(
        values in proptest::collection::vec(-1e3f32..1e3, 1..500),
        lanes in 1usize..10_000,
    ) {
        let t = MerkleTree::build_from_f32(&values, 64, &hasher(), &Device::host_serial());
        let out = compare_trees(&t, &t, &Device::host_serial(), lanes).unwrap();
        prop_assert!(out.identical());
        prop_assert_eq!(out.levels_descended, 1);
    }

    /// The mismatch set exactly covers the perturbed chunks.
    #[test]
    fn mismatch_set_is_exact(
        values in proptest::collection::vec(-1e3f32..1e3, 64..600),
        victims in proptest::collection::btree_set(0usize..600, 0..8),
    ) {
        let chunk = 32; // 8 values per chunk
        let h = hasher();
        let dev = Device::host_serial();
        let ta = MerkleTree::build_from_f32(&values, chunk, &h, &dev);
        let mut other = values.clone();
        let mut expected: Vec<usize> = Vec::new();
        for &v in &victims {
            if v < other.len() {
                other[v] += 1.0;
                expected.push(v / 8);
            }
        }
        expected.sort_unstable();
        expected.dedup();
        let tb = MerkleTree::build_from_f32(&other, chunk, &h, &dev);
        let out = compare_trees(&ta, &tb, &dev, 16).unwrap();
        prop_assert_eq!(out.mismatched_leaves, expected);
    }
}
