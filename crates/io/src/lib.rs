//! Storage and asynchronous I/O substrate.
//!
//! The paper's runtime reads checkpoint data from a Lustre parallel file
//! system through io_uring and overlaps those reads with GPU compute.
//! This crate rebuilds that stack at laptop scale:
//!
//! * [`clock::SimClock`] / [`clock::Timeline`] — a shared virtual clock,
//!   so experiments measure *modeled* storage time deterministically
//!   (real wall-clock timing is available through the same interface).
//! * [`cost::CostModel`] — a parallel-file-system cost model: per-op
//!   submission latency, seek latency for discontiguous access, device
//!   bandwidth, and a queue depth over which asynchronous backends
//!   amortize seeks. Presets exist for a Lustre-like PFS and a node-local
//!   NVMe tier.
//! * [`storage::Storage`] — positioned-read/write storage; implemented by
//!   [`storage::MemStorage`] (in-memory, cost-charged through the model +
//!   clock) and [`storage::StdFsStorage`] (real files, for the CLI).
//! * [`uring::UringSim`] — an io_uring-style engine: submission and
//!   completion rings drained by worker threads; batched scattered reads
//!   amortize seek latency across the queue depth, exactly the property
//!   the paper's Figure 9 measures.
//! * [`mmap::MmapSim`] — the synchronous, page-fault-per-page backend
//!   io_uring is compared against.
//! * [`pipeline::StreamPipeline`] — the double-buffered I/O ⇄ compute
//!   overlap of the paper's Figure 3.
//! * [`retry::RetryPolicy`] — bounded retries with exponential,
//!   jittered backoff (charged to the virtual clock) and per-op
//!   deadlines, so transient device faults heal inside the I/O layer
//!   instead of aborting a whole comparison.
//!
//! # Example
//!
//! ```
//! use reprocmp_io::cost::CostModel;
//! use reprocmp_io::storage::{MemStorage, Storage};
//! use reprocmp_io::uring::UringSim;
//!
//! // A 1 MiB "checkpoint" on the simulated PFS.
//! let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
//! let storage = MemStorage::with_model(data.clone(), CostModel::lustre_pfs());
//!
//! let mut ring = UringSim::new(storage.clone(), 2, 64);
//! let got = ring.read_scattered(&[(4096, 64), (900_000, 64)]).unwrap();
//! assert_eq!(&got[0][..], &data[4096..4096 + 64]);
//! assert!(storage.elapsed() > std::time::Duration::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod clock;
pub mod cost;
pub mod fault;
pub mod mmap;
pub mod pipeline;
pub mod retry;
pub mod storage;
pub mod striped;
pub mod uring;

pub use clock::{SimClock, Timeline};
pub use cost::CostModel;
pub use fault::{CrashDecision, CrashMode, CrashPlan, FaultPlan, FaultyStorage, MutationKind};
pub use mmap::MmapSim;
pub use pipeline::{BackendKind, OpFailure, PipelineConfig, PipelineMetrics, StreamPipeline};
pub use retry::{ErrorClass, RetryPolicy, RingCounters, RingStats};
pub use storage::{MemStorage, StdFsStorage, Storage};
pub use striped::StripedStorage;
pub use uring::UringSim;

/// Crate-wide I/O error type.
#[derive(Debug)]
pub enum IoError {
    /// A read or write fell outside the storage object's bounds.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Storage size.
        size: u64,
    },
    /// The underlying operating-system file operation failed.
    Os(std::io::Error),
    /// An I/O worker thread disappeared (channel closed).
    EngineShutDown,
}

impl IoError {
    /// Whether this error is worth retrying.
    ///
    /// Interrupted / timed-out / would-block / connection-level OS
    /// errors are transient (the canonical "device hiccup" kinds);
    /// bounds violations, engine shutdown, and every other OS kind are
    /// permanent — re-issuing the identical request cannot help.
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            IoError::Os(e) => match e.kind() {
                std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe => ErrorClass::Transient,
                _ => ErrorClass::Permanent,
            },
            IoError::OutOfBounds { .. } | IoError::EngineShutDown => ErrorClass::Permanent,
        }
    }

    /// Shorthand for `class() == ErrorClass::Transient`.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::OutOfBounds { offset, len, size } => write!(
                f,
                "read of {len} bytes at offset {offset} exceeds storage size {size}"
            ),
            IoError::Os(e) => write!(f, "os i/o error: {e}"),
            IoError::EngineShutDown => write!(f, "i/o engine has shut down"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Os(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Os(e)
    }
}

/// Crate-wide result alias.
pub type IoResult<T> = Result<T, IoError>;
