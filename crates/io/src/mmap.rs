//! The mmap-style synchronous backend the paper compares io_uring
//! against (Figure 9).
//!
//! Memory-mapping a checkpoint file makes every first touch of a page a
//! synchronous page fault: the faulting thread stalls for a full device
//! round-trip, faults cannot be batched, and the effective granularity
//! is the 4 KiB page regardless of how few bytes the application wants.
//! [`MmapSim`] reproduces that cost structure over any [`Storage`]:
//! reads are rounded out to page boundaries, a non-resident page
//! triggers a *synchronous* fault that loads a readahead window
//! (kernel fault-around), and a resident-set models the page cache
//! (re-touching a page is free until [`MmapSim::evict_all`], the
//! `vmtouch -e` of the experiments). Readahead is what keeps real
//! mmap only ~3x slower than io_uring rather than orders of
//! magnitude: each synchronous device round-trip amortizes over the
//! window, but the faulting thread still stalls once per window and
//! over-reads beyond what it needed.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

use crate::cost::OpSpec;
use crate::storage::{AccessMode, Storage};
use crate::IoResult;

/// Default page size (4 KiB, as on the evaluation platform).
pub const PAGE_SIZE: usize = 4096;

/// Default readahead window in pages (512 KiB, a Lustre-like client
/// readahead).
pub const READAHEAD_PAGES: usize = 128;

/// A simulated memory-mapped view of a storage object.
#[derive(Debug)]
pub struct MmapSim {
    storage: Arc<dyn Storage>,
    page_size: usize,
    readahead_pages: usize,
    resident: Mutex<BTreeSet<u64>>,
}

impl MmapSim {
    /// Maps `storage` with the default page size.
    #[must_use]
    pub fn new<S: Storage + 'static>(storage: S) -> Self {
        Self::with_arc(Arc::new(storage), PAGE_SIZE)
    }

    /// Maps an existing storage handle with a custom page size
    /// (clamped to at least 512 bytes) and the default readahead.
    #[must_use]
    pub fn with_arc(storage: Arc<dyn Storage>, page_size: usize) -> Self {
        MmapSim {
            storage,
            page_size: page_size.max(512),
            readahead_pages: READAHEAD_PAGES,
            resident: Mutex::new(BTreeSet::new()),
        }
    }

    /// Overrides the readahead window (1 = fault strictly one page at
    /// a time, the pre-readahead worst case).
    #[must_use]
    pub fn with_readahead(mut self, pages: usize) -> Self {
        self.readahead_pages = pages.max(1);
        self
    }

    /// The readahead window in pages.
    #[must_use]
    pub fn readahead_pages(&self) -> usize {
        self.readahead_pages
    }

    /// The page size in effect.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of currently resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.lock().len()
    }

    /// Drops the entire resident set, like `vmtouch -e` /
    /// `POSIX_FADV_DONTNEED` before each experiment.
    pub fn evict_all(&self) {
        self.resident.lock().clear();
    }

    /// Reads one `(offset, len)` range through the mapping.
    ///
    /// Every non-resident page in the range triggers a synchronous
    /// fault; each fault loads a whole readahead window (made
    /// resident), and windows are charged as synchronous ops — the
    /// faulting thread blocks for each device round-trip. The copy
    /// itself is then free (it is memory).
    ///
    /// # Errors
    ///
    /// Propagates storage bounds errors.
    pub fn read(&self, offset: u64, len: usize) -> IoResult<Vec<u8>> {
        let ps = self.page_size as u64;
        let ra = self.readahead_pages as u64;
        let file_pages = self.storage.len().div_ceil(ps);
        let first_page = offset / ps;
        let last_page = (offset + len.max(1) as u64 - 1) / ps;
        let mut faults: Vec<OpSpec> = Vec::new();
        {
            let mut resident = self.resident.lock();
            let mut page = first_page;
            while page <= last_page {
                if resident.contains(&page) {
                    page += 1;
                    continue;
                }
                // Fault: bring in the readahead window starting here.
                let window_end = (page + ra).min(file_pages);
                let mut brought = 0u64;
                for p in page..window_end {
                    if resident.insert(p) {
                        brought += 1;
                    }
                }
                let start = page * ps;
                let window_len =
                    (self.storage.len().saturating_sub(start)).min(brought * ps) as usize;
                if window_len > 0 {
                    faults.push((start, window_len));
                }
                page = window_end;
            }
        }
        if !faults.is_empty() {
            self.storage.charge_batch(&faults, AccessMode::Sync);
        }
        let mut buf = vec![0u8; len];
        self.storage.read_at(offset, &mut buf)?;
        Ok(buf)
    }

    /// Reads many scattered ranges, faulting pages as needed; buffers
    /// are returned in op order.
    ///
    /// # Errors
    ///
    /// The first storage error encountered.
    pub fn read_scattered(&self, ops: &[OpSpec]) -> IoResult<Vec<Vec<u8>>> {
        ops.iter().map(|&(off, len)| self.read(off, len)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::storage::MemStorage;
    use std::time::Duration;

    fn charged(n: usize) -> (MmapSim, MemStorage, Vec<u8>) {
        let data: Vec<u8> = (0..n).map(|i| (i % 247) as u8).collect();
        let mem = MemStorage::with_model(data.clone(), CostModel::lustre_pfs());
        (
            MmapSim::with_arc(Arc::new(mem.clone()), PAGE_SIZE),
            mem,
            data,
        )
    }

    #[test]
    fn reads_return_correct_bytes() {
        let (map, _, data) = charged(1 << 16);
        let buf = map.read(10_000, 100).unwrap();
        assert_eq!(&buf[..], &data[10_000..10_100]);
    }

    #[test]
    fn first_touch_faults_subsequent_touch_free() {
        let (map, mem, _) = charged(1 << 16);
        map.read(0, 64).unwrap();
        let after_first = mem.elapsed();
        assert!(after_first > Duration::ZERO);
        map.read(8, 64).unwrap(); // same page
        assert_eq!(mem.elapsed(), after_first);
    }

    #[test]
    fn evict_all_restores_fault_cost() {
        let (map, mem, _) = charged(1 << 16);
        map.read(0, 64).unwrap();
        let t1 = mem.elapsed();
        map.evict_all();
        assert_eq!(map.resident_pages(), 0);
        map.read(0, 64).unwrap();
        assert!(mem.elapsed() > t1);
    }

    #[test]
    fn range_spanning_pages_faults_each_page() {
        let data = vec![0u8; 1 << 16];
        let mem = MemStorage::with_model(data, CostModel::lustre_pfs());
        let map = MmapSim::with_arc(Arc::new(mem), PAGE_SIZE).with_readahead(1);
        map.read(PAGE_SIZE as u64 - 10, 20).unwrap(); // spans 2 pages
        assert_eq!(map.resident_pages(), 2);
    }

    #[test]
    fn readahead_window_becomes_resident_in_one_fault() {
        let data = vec![0u8; 1 << 20];
        let mem = MemStorage::with_model(data, CostModel::lustre_pfs());
        let map = MmapSim::with_arc(Arc::new(mem.clone()), PAGE_SIZE).with_readahead(16);
        map.read(0, 8).unwrap();
        assert_eq!(map.resident_pages(), 16);
        // Touching anywhere inside the window is free.
        let t = mem.elapsed();
        map.read(15 * PAGE_SIZE as u64, 100).unwrap();
        assert_eq!(mem.elapsed(), t);
    }

    #[test]
    fn small_read_still_faults_whole_window_cost() {
        // 8 bytes wanted, but the charge covers the readahead window.
        let data = vec![0u8; 1 << 16];
        let m = CostModel::lustre_pfs();
        let mem = MemStorage::with_model(data, m);
        let map = MmapSim::with_arc(Arc::new(mem.clone()), PAGE_SIZE).with_readahead(4);
        map.read(0, 8).unwrap();
        let expected = m.sync_batch_time(&[(0, 4 * PAGE_SIZE)]);
        assert_eq!(mem.elapsed(), expected);
    }

    #[test]
    fn mmap_slower_than_uring_for_scattered_reads() {
        // The Figure 9 property, as a unit test.
        let ops: Vec<OpSpec> = (0..64).map(|i| (i * 10 * PAGE_SIZE as u64, 4096)).collect();
        let data = vec![0u8; 1 << 23];

        let mem_a = MemStorage::with_model(data.clone(), CostModel::lustre_pfs());
        let map = MmapSim::with_arc(Arc::new(mem_a.clone()), PAGE_SIZE);
        map.read_scattered(&ops).unwrap();
        let t_mmap = mem_a.elapsed();

        let mem_b = MemStorage::with_model(data, CostModel::lustre_pfs());
        let mut ring = crate::uring::UringSim::new(mem_b.clone(), 4, 64);
        ring.read_scattered(&ops).unwrap();
        let t_uring = mem_b.elapsed();

        assert!(
            t_mmap > t_uring * 3,
            "mmap {t_mmap:?} should be >3x uring {t_uring:?}"
        );
    }

    #[test]
    fn tail_page_shorter_than_page_size() {
        let (map, _, data) = charged(PAGE_SIZE + 100);
        let buf = map.read(PAGE_SIZE as u64, 100).unwrap();
        assert_eq!(&buf[..], &data[PAGE_SIZE..PAGE_SIZE + 100]);
    }

    #[test]
    fn scattered_order_preserved() {
        let (map, _, data) = charged(1 << 16);
        let ops = vec![(30_000u64, 16usize), (0, 16), (60_000, 16)];
        let bufs = map.read_scattered(&ops).unwrap();
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }
}
