//! Fault injection for storage and filesystem mutations.
//!
//! A comparison runtime that drives thousands of scattered reads
//! through worker pools must surface device errors cleanly: no hangs,
//! no partial results silently reported as complete. [`FaultyStorage`]
//! wraps any [`Storage`] and fails reads according to a
//! [`FaultPlan`], letting tests (and chaos-minded users) exercise
//! every error path in the rings, the pipeline, and the engine.
//!
//! [`CrashPlan`] is the write-side twin: a deterministic power-failure
//! injector for *filesystem mutation sequences*. Persistent components
//! (the chunk store, the veloc flush path) route every mutation — tmp
//! staging writes, atomic renames, appends, unlinks — through an
//! instrumented seam that consults a `CrashPlan` at each boundary. The
//! plan can cut power exactly at mutation *k*, optionally leaving a
//! torn prefix of a staged write behind, and from then on every further
//! mutation fails: the process is "off". A torture driver sweeps `k`
//! over every boundary of an operation and asserts that reopening
//! recovers to a consistent state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cost::OpSpec;
use crate::storage::{AccessMode, Storage};
use crate::{IoError, IoResult};

/// The kind of filesystem mutation boundary being crossed, as reported
/// by an instrumented filesystem seam. The labels name the store's
/// publish points so a torture sweep can say *where* it cut power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// A `.tmp` staging-file write (full contents + fsync).
    TmpWrite,
    /// A generic atomic rename publishing a staged file.
    Rename,
    /// The rename sealing a freshly written packfile.
    PackSeal,
    /// The rename publishing a checkpoint manifest.
    ManifestPublish,
    /// The rename swapping in a rewritten chunk index.
    IndexSwap,
    /// An append (+fsync) to the write-ahead intent journal.
    JournalAppend,
    /// A file unlink (GC pack removal, manifest removal).
    Unlink,
}

impl MutationKind {
    /// Stable label for reports and traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::TmpWrite => "tmp_write",
            MutationKind::Rename => "rename",
            MutationKind::PackSeal => "pack_seal",
            MutationKind::ManifestPublish => "manifest_publish",
            MutationKind::IndexSwap => "index_swap",
            MutationKind::JournalAppend => "journal_append",
            MutationKind::Unlink => "unlink",
        }
    }
}

/// How the power failure at the chosen mutation manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Power dies before the mutation takes effect: a staged write
    /// never lands, a rename is dropped with the `.tmp` left behind,
    /// an unlink leaves its target in place.
    Before,
    /// Power dies mid-write: a deterministic strict prefix of the
    /// bytes lands on disk (the classic torn write). Non-write
    /// mutations degrade to [`CrashMode::Before`].
    Torn {
        /// Seed choosing how much of the write survives.
        seed: u64,
    },
}

/// What the instrumented seam should do at one mutation boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashDecision {
    /// Perform the mutation normally.
    Proceed,
    /// Power is out: perform nothing and fail.
    Crash,
    /// Write exactly `keep` bytes of the payload, then fail — the
    /// machine died with a torn file on disk.
    TornWrite {
        /// Bytes of the payload that land before power dies.
        keep: usize,
    },
}

/// A deterministic power-failure schedule over a sequence of
/// filesystem mutations.
///
/// The plan starts *disarmed*: every mutation proceeds uncounted, so a
/// harness can open a store (whose recovery performs mutations of its
/// own) before arming the plan around exactly the operation under
/// test. Once armed, mutations are numbered 1, 2, 3, … and the plan
/// cuts power at mutation `point`; every later mutation fails too.
/// `point = 0` never crashes — an armed counting pass that measures
/// how many boundaries an operation has, so a sweep knows its range.
#[derive(Debug)]
pub struct CrashPlan {
    point: u64,
    mode: CrashMode,
    armed: AtomicBool,
    mutations: AtomicU64,
    crashed: AtomicBool,
}

impl CrashPlan {
    /// A counting plan: never crashes, still numbers armed mutations.
    #[must_use]
    pub fn observe() -> Arc<Self> {
        CrashPlan::at(0, CrashMode::Before)
    }

    /// A plan that cuts power at armed mutation `point` (1-based) in
    /// the given mode. `point = 0` never crashes.
    #[must_use]
    pub fn at(point: u64, mode: CrashMode) -> Arc<Self> {
        Arc::new(CrashPlan {
            point,
            mode,
            armed: AtomicBool::new(false),
            mutations: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        })
    }

    /// Starts counting (and potentially crashing) from the next
    /// mutation onward.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Mutations observed while armed.
    #[must_use]
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::SeqCst)
    }

    /// True once the plan has cut power.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Consulted by the instrumented seam at each mutation boundary.
    /// `write_len` is `Some(payload length)` for write-type mutations,
    /// enabling torn prefixes; `None` for renames and unlinks.
    pub fn step(&self, _kind: MutationKind, write_len: Option<usize>) -> CrashDecision {
        if !self.armed.load(Ordering::SeqCst) {
            return CrashDecision::Proceed;
        }
        if self.crashed.load(Ordering::SeqCst) {
            return CrashDecision::Crash;
        }
        let op_no = self.mutations.fetch_add(1, Ordering::SeqCst) + 1;
        if self.point == 0 || op_no < self.point {
            return CrashDecision::Proceed;
        }
        self.crashed.store(true, Ordering::SeqCst);
        match (self.mode, write_len) {
            (CrashMode::Torn { seed }, Some(len)) if len > 0 => CrashDecision::TornWrite {
                // A strict prefix: at least 0, at most len - 1 bytes
                // land, chosen deterministically from the seed and the
                // mutation number.
                keep: (crate::retry::splitmix64(seed ^ op_no) % len as u64) as usize,
            },
            _ => CrashDecision::Crash,
        }
    }

    /// The error a crashed mutation surfaces: a *permanent* I/O error
    /// (retrying inside a dead machine cannot help), distinguishable
    /// from real filesystem failures by its message.
    #[must_use]
    pub fn crash_error() -> std::io::Error {
        std::io::Error::other("simulated power failure (CrashPlan)")
    }
}

/// When to inject a failure.
///
/// Counter-based plans ([`FaultPlan::EveryNth`],
/// [`FaultPlan::AfterBytes`], [`FaultPlan::FirstN`],
/// [`FaultPlan::Probabilistic`]) emit *transient* errors
/// (`ErrorKind::Interrupted`) — a retry re-rolls the schedule and may
/// succeed. [`FaultPlan::Range`] models bad media and emits a
/// *permanent* error (`ErrorKind::InvalidData`): the sector stays bad
/// no matter how often it is re-read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Never fail (pass-through).
    None,
    /// Fail every `n`-th read (1-based: `n = 1` fails every read).
    EveryNth {
        /// Period of failure injection.
        n: u64,
    },
    /// Fail all reads once `bytes` have been served.
    AfterBytes {
        /// Budget of successfully served bytes.
        bytes: u64,
    },
    /// Fail reads overlapping a byte range (a "bad sector").
    Range {
        /// First poisoned byte.
        start: u64,
        /// One past the last poisoned byte.
        end: u64,
    },
    /// Fail the first `n` reads, then heal — a transient outage that a
    /// retrying caller rides out completely.
    FirstN {
        /// How many leading reads fail.
        n: u64,
    },
    /// Each read independently fails with probability `p`, decided by
    /// a deterministic hash of `seed` and the read's sequence number —
    /// the same run always faults the same reads.
    Probabilistic {
        /// Schedule seed.
        seed: u64,
        /// Per-read failure probability in `[0, 1]`.
        p: f64,
    },
}

/// A fault-injecting wrapper around any storage object.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    plan: FaultPlan,
    reads: AtomicU64,
    bytes_served: AtomicU64,
    injected: AtomicU64,
}

impl FaultyStorage {
    /// Wraps `inner` with the given plan.
    #[must_use]
    pub fn new(inner: Arc<dyn Storage>, plan: FaultPlan) -> Self {
        FaultyStorage {
            inner,
            plan,
            reads: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of failures injected so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn fault(&self, kind: std::io::ErrorKind) -> IoError {
        self.injected.fetch_add(1, Ordering::Relaxed);
        IoError::Os(std::io::Error::new(kind, "injected device fault"))
    }
}

impl Storage for FaultyStorage {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> IoResult<()> {
        use std::io::ErrorKind;
        let read_no = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        match self.plan {
            FaultPlan::None => {}
            FaultPlan::EveryNth { n } => {
                if n > 0 && read_no.is_multiple_of(n) {
                    return Err(self.fault(ErrorKind::Interrupted));
                }
            }
            FaultPlan::AfterBytes { bytes } => {
                if self.bytes_served.load(Ordering::Relaxed) >= bytes {
                    return Err(self.fault(ErrorKind::Interrupted));
                }
            }
            FaultPlan::Range { start, end } => {
                let rd_end = offset + buf.len() as u64;
                if offset < end && rd_end > start {
                    return Err(self.fault(ErrorKind::InvalidData));
                }
            }
            FaultPlan::FirstN { n } => {
                if read_no <= n {
                    return Err(self.fault(ErrorKind::Interrupted));
                }
            }
            FaultPlan::Probabilistic { seed, p } => {
                let roll =
                    (crate::retry::splitmix64(seed ^ read_no) >> 11) as f64 / (1u64 << 53) as f64;
                if roll < p {
                    return Err(self.fault(ErrorKind::Interrupted));
                }
            }
        }
        self.inner.read_at(offset, buf)?;
        self.bytes_served
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn charge_batch(&self, ops: &[OpSpec], mode: AccessMode) {
        self.inner.charge_batch(ops, mode);
    }

    fn elapsed(&self) -> Duration {
        self.inner.elapsed()
    }

    fn sim_clock(&self) -> Option<crate::clock::SimClock> {
        self.inner.sim_clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{read_all, BackendKind, PipelineConfig, StreamPipeline};
    use crate::storage::MemStorage;
    use crate::uring::UringSim;

    fn base(n: usize) -> Arc<dyn Storage> {
        Arc::new(MemStorage::free((0..n).map(|i| (i % 251) as u8).collect()))
    }

    #[test]
    fn none_plan_is_transparent() {
        let s = FaultyStorage::new(base(1024), FaultPlan::None);
        let mut buf = vec![0u8; 64];
        s.read_at(100, &mut buf).unwrap();
        assert_eq!(buf[0], 100);
        assert_eq!(s.injected_faults(), 0);
    }

    #[test]
    fn every_nth_fails_on_schedule() {
        let s = FaultyStorage::new(base(1024), FaultPlan::EveryNth { n: 3 });
        let mut buf = vec![0u8; 8];
        assert!(s.read_at(0, &mut buf).is_ok());
        assert!(s.read_at(0, &mut buf).is_ok());
        assert!(s.read_at(0, &mut buf).is_err());
        assert!(s.read_at(0, &mut buf).is_ok());
        assert_eq!(s.injected_faults(), 1);
    }

    #[test]
    fn after_bytes_budget() {
        let s = FaultyStorage::new(base(1024), FaultPlan::AfterBytes { bytes: 100 });
        let mut buf = vec![0u8; 64];
        assert!(s.read_at(0, &mut buf).is_ok()); // 64 served
        assert!(s.read_at(0, &mut buf).is_ok()); // 128 served
        assert!(s.read_at(0, &mut buf).is_err()); // over budget
        assert_eq!(s.injected_faults(), 1);
    }

    #[test]
    fn bad_sector_range() {
        let s = FaultyStorage::new(
            base(1024),
            FaultPlan::Range {
                start: 500,
                end: 600,
            },
        );
        let mut buf = vec![0u8; 64];
        assert!(s.read_at(0, &mut buf).is_ok());
        assert!(s.read_at(450, &mut buf).is_err(), "overlaps 500..514");
        assert!(s.read_at(600, &mut buf).is_ok(), "starts past the range");
        assert!(s.read_at(590, &mut buf).is_err());
    }

    #[test]
    fn ring_surfaces_injected_faults_without_hanging() {
        let faulty = Arc::new(FaultyStorage::new(
            base(1 << 16),
            FaultPlan::EveryNth { n: 5 },
        ));
        let mut ring = UringSim::with_arc(faulty.clone(), 4, 16);
        let ops: Vec<OpSpec> = (0..20).map(|i| (i * 1000, 64)).collect();
        let err = ring.read_scattered(&ops).unwrap_err();
        assert!(matches!(err, IoError::Os(_)));
        assert!(faulty.injected_faults() >= 1);
        // The ring is still usable for future submissions after an
        // error batch.
        drop(ring);
    }

    #[test]
    fn pipeline_terminates_cleanly_on_fault() {
        let faulty = Arc::new(FaultyStorage::new(
            base(1 << 16),
            FaultPlan::AfterBytes { bytes: 4096 },
        )) as Arc<dyn Storage>;
        let ops: Vec<OpSpec> = (0..32).map(|i| (i * 2048, 512)).collect();
        let cfg = PipelineConfig {
            backend: BackendKind::Uring,
            slice_bytes: 1024,
            ..PipelineConfig::default()
        };
        let mut pipeline = StreamPipeline::start(faulty, ops, cfg);
        let mut oks = 0;
        let mut errs = 0;
        while let Some(result) = pipeline.next_slice() {
            match result {
                Ok(_) => oks += 1,
                Err(_) => errs += 1,
            }
        }
        assert!(oks >= 1, "some slices succeed before the budget");
        assert_eq!(errs, 1, "the stream ends at the first error");
    }

    #[test]
    fn read_all_propagates_first_error() {
        let faulty = Arc::new(FaultyStorage::new(
            base(1 << 14),
            FaultPlan::Range {
                start: 8192, // overlaps the op at offset 8*1024
                end: 8300,
            },
        )) as Arc<dyn Storage>;
        let ops: Vec<OpSpec> = (0..16).map(|i| (i * 1024, 256)).collect();
        let err = read_all(faulty, &ops, PipelineConfig::default()).unwrap_err();
        assert!(matches!(err, IoError::Os(_)));
    }

    #[test]
    fn first_n_fails_then_heals() {
        let s = FaultyStorage::new(base(1024), FaultPlan::FirstN { n: 3 });
        let mut buf = vec![0u8; 8];
        for _ in 0..3 {
            let err = s.read_at(0, &mut buf).unwrap_err();
            assert!(err.is_transient(), "FirstN faults must be transient");
        }
        // Healed: every subsequent read succeeds.
        for _ in 0..10 {
            assert!(s.read_at(0, &mut buf).is_ok());
        }
        assert_eq!(s.injected_faults(), 3);
    }

    #[test]
    fn probabilistic_is_deterministic_across_instances() {
        let schedule = |seed| {
            let s = FaultyStorage::new(base(1024), FaultPlan::Probabilistic { seed, p: 0.3 });
            let mut buf = vec![0u8; 8];
            (0..64)
                .map(|_| s.read_at(0, &mut buf).is_err())
                .collect::<Vec<_>>()
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same seed -> same fault schedule");
        let faults = a.iter().filter(|&&f| f).count();
        assert!(
            (5..=30).contains(&faults),
            "p=0.3 over 64 reads should fault roughly a third, got {faults}"
        );
        let c = schedule(7);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn fault_kinds_classify_by_plan() {
        let mut buf = vec![0u8; 8];
        // Counter-based plans emit transient errors.
        let s = FaultyStorage::new(base(1024), FaultPlan::EveryNth { n: 1 });
        assert!(s.read_at(0, &mut buf).unwrap_err().is_transient());
        // A bad sector is permanent: retrying the same offset can't help.
        let s = FaultyStorage::new(base(1024), FaultPlan::Range { start: 0, end: 64 });
        let err = s.read_at(0, &mut buf).unwrap_err();
        assert_eq!(err.class(), crate::retry::ErrorClass::Permanent);
    }

    #[test]
    fn crash_plan_is_inert_until_armed() {
        let plan = CrashPlan::at(1, CrashMode::Before);
        for _ in 0..5 {
            assert_eq!(
                plan.step(MutationKind::TmpWrite, Some(100)),
                CrashDecision::Proceed,
                "disarmed plans never crash"
            );
        }
        assert_eq!(plan.mutations(), 0, "disarmed mutations are not counted");
        plan.arm();
        assert_eq!(
            plan.step(MutationKind::TmpWrite, Some(100)),
            CrashDecision::Crash
        );
        assert!(plan.crashed());
        // The machine stays off: every further mutation fails.
        assert_eq!(plan.step(MutationKind::Rename, None), CrashDecision::Crash);
        assert_eq!(plan.mutations(), 1);
    }

    #[test]
    fn crash_plan_counts_to_the_chosen_point() {
        let plan = CrashPlan::at(3, CrashMode::Before);
        plan.arm();
        assert_eq!(
            plan.step(MutationKind::TmpWrite, Some(10)),
            CrashDecision::Proceed
        );
        assert_eq!(
            plan.step(MutationKind::PackSeal, None),
            CrashDecision::Proceed
        );
        assert_eq!(
            plan.step(MutationKind::IndexSwap, None),
            CrashDecision::Crash
        );
        assert_eq!(plan.mutations(), 3);
    }

    #[test]
    fn observing_plan_counts_without_crashing() {
        let plan = CrashPlan::observe();
        plan.arm();
        for _ in 0..10 {
            assert_eq!(
                plan.step(MutationKind::JournalAppend, Some(32)),
                CrashDecision::Proceed
            );
        }
        assert_eq!(plan.mutations(), 10);
        assert!(!plan.crashed());
    }

    #[test]
    fn torn_mode_keeps_a_strict_prefix_of_writes() {
        for seed in 0..32u64 {
            let plan = CrashPlan::at(1, CrashMode::Torn { seed });
            plan.arm();
            match plan.step(MutationKind::TmpWrite, Some(100)) {
                CrashDecision::TornWrite { keep } => {
                    assert!(keep < 100, "torn writes keep a strict prefix")
                }
                other => panic!("expected a torn write, got {other:?}"),
            }
        }
        // Torn degrades to Before for non-write mutations.
        let plan = CrashPlan::at(1, CrashMode::Torn { seed: 7 });
        plan.arm();
        assert_eq!(plan.step(MutationKind::Rename, None), CrashDecision::Crash);
        // And for empty writes.
        let plan = CrashPlan::at(1, CrashMode::Torn { seed: 7 });
        plan.arm();
        assert_eq!(
            plan.step(MutationKind::TmpWrite, Some(0)),
            CrashDecision::Crash
        );
    }

    #[test]
    fn torn_prefix_is_deterministic_per_seed() {
        let keep_at = |seed| {
            let plan = CrashPlan::at(1, CrashMode::Torn { seed });
            plan.arm();
            plan.step(MutationKind::TmpWrite, Some(1000))
        };
        assert_eq!(keep_at(42), keep_at(42));
    }

    #[test]
    fn crash_error_is_permanent() {
        let err = IoError::Os(CrashPlan::crash_error());
        assert_eq!(err.class(), crate::retry::ErrorClass::Permanent);
    }

    #[test]
    fn sim_clock_passes_through() {
        let mem = MemStorage::free(vec![0u8; 64]);
        let clock = mem.clock();
        let s = FaultyStorage::new(Arc::new(mem), FaultPlan::None);
        let got = s.sim_clock().expect("inner MemStorage has a clock");
        clock.advance(Duration::from_millis(5));
        assert_eq!(got.now(), Duration::from_millis(5));
    }

    #[test]
    fn cost_charging_passes_through() {
        let mem = MemStorage::with_model(vec![0u8; 8192], crate::cost::CostModel::lustre_pfs());
        let clock = mem.clock();
        let s = FaultyStorage::new(Arc::new(mem), FaultPlan::None);
        s.charge_batch(&[(0, 4096)], AccessMode::Sync);
        assert!(clock.now() > Duration::ZERO);
        assert_eq!(s.elapsed(), clock.now());
    }
}
