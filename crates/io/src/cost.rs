//! The parallel-file-system cost model.
//!
//! The model charges four things, which together produce every I/O
//! trade-off the paper's evaluation turns on:
//!
//! * `submit_latency` — CPU/syscall cost per operation. io_uring's win
//!   over classic read() comes partly from batching submissions; we keep
//!   this term small and identical across backends (the rings amortize
//!   it further by submitting many SQEs per call).
//! * `seek_latency` — device-side latency for a *discontiguous* access.
//!   This is what makes scattered chunk reads so much more expensive
//!   per byte than one large sequential read.
//! * `rpc_latency` — the smaller per-operation server round-trip that
//!   even a *contiguous continuation* read pays on a parallel file
//!   system (every request is still an RPC to the storage servers).
//!   This is why reading a contiguous region as many 4 KiB requests is
//!   slower than reading it as few 512 KiB requests — the paper's
//!   chunk-size trade-off at tight error bounds.
//! * `bandwidth_bytes_per_sec` — streaming bandwidth once positioned.
//! * `queue_depth` — how many in-flight operations the device services
//!   concurrently. Asynchronous backends divide their aggregate seek
//!   cost by this factor; synchronous backends (mmap page faulting)
//!   cannot.

use std::time::Duration;

/// Cost parameters of one storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host-side cost of submitting one I/O operation.
    pub submit_latency: Duration,
    /// Device-side latency of one discontiguous access.
    pub seek_latency: Duration,
    /// Server round-trip paid by every request, even contiguous ones.
    pub rpc_latency: Duration,
    /// Streaming bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Operations the device overlaps when driven asynchronously.
    pub queue_depth: usize,
}

/// One I/O request: `(offset, length_in_bytes)`.
pub type OpSpec = (u64, usize);

impl CostModel {
    /// A Lustre-like parallel file system reachable from one node:
    /// high bandwidth, painful seek latency, deep queues.
    #[must_use]
    pub fn lustre_pfs() -> Self {
        CostModel {
            submit_latency: Duration::from_micros(2),
            seek_latency: Duration::from_micros(300),
            rpc_latency: Duration::from_micros(60),
            bandwidth_bytes_per_sec: 5.0e9,
            queue_depth: 64,
        }
    }

    /// A node-local NVMe tier: lower bandwidth ceiling than the striped
    /// PFS but far cheaper seeks.
    #[must_use]
    pub fn node_local_nvme() -> Self {
        CostModel {
            submit_latency: Duration::from_micros(1),
            seek_latency: Duration::from_micros(20),
            rpc_latency: Duration::from_micros(4),
            bandwidth_bytes_per_sec: 3.0e9,
            queue_depth: 128,
        }
    }

    /// An instantaneous device for tests that only care about data flow.
    #[must_use]
    pub fn free() -> Self {
        CostModel {
            submit_latency: Duration::ZERO,
            seek_latency: Duration::ZERO,
            rpc_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            queue_depth: usize::MAX,
        }
    }

    fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bytes_per_sec.is_infinite() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        }
    }

    /// Counts the seeks in a batch: an op pays a seek unless it starts
    /// exactly where the previous op ended.
    #[must_use]
    pub fn count_seeks(ops: &[OpSpec]) -> usize {
        let mut seeks = 0;
        let mut pos: Option<u64> = None;
        for &(offset, len) in ops {
            if pos != Some(offset) {
                seeks += 1;
            }
            pos = Some(offset + len as u64);
        }
        seeks
    }

    /// Modeled time for a batch of operations issued *synchronously*,
    /// one after another (the mmap / blocking-read pattern): every
    /// positioning cost and every byte is serialized.
    #[must_use]
    pub fn sync_batch_time(&self, ops: &[OpSpec]) -> Duration {
        let bytes: u64 = ops.iter().map(|&(_, len)| len as u64).sum();
        let seeks = Self::count_seeks(ops) as u32;
        let contiguous = ops.len() as u32 - seeks;
        self.submit_latency * ops.len() as u32
            + self.seek_latency * seeks
            + self.rpc_latency * contiguous
            + self.transfer_time(bytes)
    }

    /// Modeled time for a batch issued *asynchronously* with up to
    /// `depth` in-flight operations (the io_uring pattern): seeks overlap
    /// across the queue, bandwidth is still shared.
    #[must_use]
    pub fn async_batch_time(&self, ops: &[OpSpec], depth: usize) -> Duration {
        if ops.is_empty() {
            return Duration::ZERO;
        }
        let depth = depth.clamp(1, self.queue_depth.max(1));
        let bytes: u64 = ops.iter().map(|&(_, len)| len as u64).sum();
        let seeks = Self::count_seeks(ops);
        let contiguous = ops.len() - seeks;
        // Positioning (seeks + per-request RPCs) is pipelined
        // `depth`-wide; transfers share the device bandwidth;
        // submissions are batched from the host in one ring doorbell
        // per `depth` entries.
        let positioning = self.seek_latency.mul_f64(seeks as f64 / depth as f64)
            + self.rpc_latency.mul_f64(contiguous as f64 / depth as f64);
        let submit_time = self
            .submit_latency
            .mul_f64((ops.len() as f64 / depth as f64).max(1.0));
        let transfer = self.transfer_time(bytes);
        // The device is busy for whichever dominates: positioning or
        // streaming; host submission adds on top.
        submit_time + std::cmp::max(positioning, transfer)
    }

    /// Modeled time for one contiguous sequential read of `bytes`.
    #[must_use]
    pub fn sequential_time(&self, bytes: u64) -> Duration {
        self.submit_latency + self.seek_latency + self.transfer_time(bytes)
    }

    /// Modeled time to read one contiguous region as `n_ops` equal
    /// requests, asynchronously — the per-request-size trade-off in
    /// one number (diagnostic helper).
    #[must_use]
    pub fn contiguous_read_time(&self, bytes: u64, n_ops: usize) -> Duration {
        if n_ops == 0 {
            return Duration::ZERO;
        }
        let len = (bytes / n_ops as u64).max(1);
        let mut ops: Vec<OpSpec> = Vec::with_capacity(n_ops);
        let mut off = 0u64;
        for i in 0..n_ops {
            // Last op carries the remainder so every byte is counted.
            let this = if i + 1 == n_ops { bytes - off } else { len };
            if this == 0 {
                break;
            }
            ops.push((off, this as usize));
            off += this;
        }
        self.async_batch_time(&ops, self.queue_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CostModel {
        CostModel {
            submit_latency: Duration::from_micros(1),
            seek_latency: Duration::from_micros(100),
            rpc_latency: Duration::from_micros(10),
            bandwidth_bytes_per_sec: 1.0e9,
            queue_depth: 10,
        }
    }

    #[test]
    fn contiguous_ops_pay_one_seek() {
        let ops = [(0u64, 4096usize), (4096, 4096), (8192, 4096)];
        assert_eq!(CostModel::count_seeks(&ops), 1);
        let scattered = [(0u64, 4096usize), (100_000, 4096), (50_000, 4096)];
        assert_eq!(CostModel::count_seeks(&scattered), 3);
    }

    #[test]
    fn sync_scattered_much_slower_than_sequential_same_bytes() {
        let m = toy();
        let scattered: Vec<OpSpec> = (0..100).map(|i| (i * 1_000_000, 4096)).collect();
        let total: u64 = 100 * 4096;
        let t_scattered = m.sync_batch_time(&scattered);
        let t_seq = m.sequential_time(total);
        assert!(
            t_scattered > t_seq * 10,
            "scattered {t_scattered:?} vs sequential {t_seq:?}"
        );
    }

    #[test]
    fn async_amortizes_seeks_by_queue_depth() {
        let m = toy();
        let scattered: Vec<OpSpec> = (0..100).map(|i| (i * 1_000_000, 4096)).collect();
        let sync = m.sync_batch_time(&scattered);
        let asyn = m.async_batch_time(&scattered, 10);
        // 100 seeks vs 100/10 pipelined seeks dominate both.
        let ratio = sync.as_secs_f64() / asyn.as_secs_f64();
        assert!(ratio > 3.0, "async speedup only {ratio}");
    }

    #[test]
    fn async_depth_clamped_to_model_queue_depth() {
        let m = toy();
        let ops: Vec<OpSpec> = (0..50).map(|i| (i * 1_000_000, 4096)).collect();
        let t_big = m.async_batch_time(&ops, 1_000_000);
        let t_qd = m.async_batch_time(&ops, m.queue_depth);
        assert_eq!(t_big, t_qd);
    }

    #[test]
    fn bandwidth_bounds_large_async_transfers() {
        let m = toy();
        // One giant op: seek negligible, transfer dominates.
        let ops = [(0u64, 1_000_000_000usize)];
        let t = m.async_batch_time(&ops, 10);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01, "{t:?}");
    }

    #[test]
    fn free_model_is_instant() {
        let m = CostModel::free();
        let ops: Vec<OpSpec> = (0..1000).map(|i| (i * 7919, 4096)).collect();
        assert_eq!(m.sync_batch_time(&ops), Duration::ZERO);
        assert_eq!(m.async_batch_time(&ops, 4), Duration::ZERO);
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let m = toy();
        assert_eq!(m.sync_batch_time(&[]), Duration::ZERO);
        assert_eq!(m.async_batch_time(&[], 8), Duration::ZERO);
    }

    #[test]
    fn larger_chunks_amortize_seeks_per_byte() {
        // The Figure 5 trade-off: per-byte cost of scattered reads drops
        // as chunk size grows.
        let m = CostModel::lustre_pfs();
        let small: Vec<OpSpec> = (0..256).map(|i| (i * 1_000_000, 4 * 1024)).collect();
        let large: Vec<OpSpec> = (0..2).map(|i| (i * 600_000_000, 512 * 1024)).collect();
        let b_small: u64 = small.iter().map(|&(_, l)| l as u64).sum();
        let b_large: u64 = large.iter().map(|&(_, l)| l as u64).sum();
        let per_byte_small = m.async_batch_time(&small, 64).as_secs_f64() / b_small as f64;
        let per_byte_large = m.async_batch_time(&large, 64).as_secs_f64() / b_large as f64;
        assert!(per_byte_small > per_byte_large * 2.0);
    }
}
