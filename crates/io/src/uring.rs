//! An io_uring-style asynchronous I/O engine.
//!
//! Real io_uring exposes a submission queue (SQ) and completion queue
//! (CQ) shared with the kernel: the application pushes many submission
//! queue entries (SQEs), rings the doorbell once, and later harvests
//! completion queue entries (CQEs) — paying one system call for a whole
//! batch and keeping `queue_depth` operations in flight at the device.
//!
//! [`UringSim`] reproduces that interface and those two properties
//! (batched submission, deep device queues) on top of any [`Storage`]:
//! SQEs accumulate locally in [`UringSim::push`]; [`UringSim::submit`]
//! charges the whole batch at `Async { depth }` cost and hands it to a
//! worker pool; [`UringSim::wait`] harvests CQEs. The convenience method
//! [`UringSim::read_scattered`] is push-all + submit + wait-all,
//! returning buffers in submission order.

use crossbeam::channel::{unbounded, Receiver, Sender};
use reprocmp_obs::{EventKind, Journal};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::cost::OpSpec;
use crate::retry::{RetryPolicy, RingCounters, RingStats};
use crate::storage::{AccessMode, Storage};
use crate::{IoError, IoResult};

/// A submission queue entry: one positioned read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqe {
    /// Caller-chosen tag returned on the matching completion.
    pub user_data: u64,
    /// Byte offset of the read.
    pub offset: u64,
    /// Length of the read in bytes.
    pub len: usize,
}

/// A completion queue entry: the result of one [`Sqe`].
#[derive(Debug)]
pub struct Cqe {
    /// The tag from the matching submission.
    pub user_data: u64,
    /// The bytes read, or the error.
    pub result: IoResult<Vec<u8>>,
}

/// The asynchronous ring engine.
#[derive(Debug)]
pub struct UringSim {
    storage: Arc<dyn Storage>,
    queue_depth: usize,
    pending: Vec<Sqe>,
    sq_tx: Option<Sender<Sqe>>,
    cq_rx: Receiver<Cqe>,
    workers: Vec<JoinHandle<()>>,
    in_flight: usize,
    counters: Arc<RingCounters>,
    journal: Journal,
    sq_lane: String,
}

impl UringSim {
    /// Creates a ring over `storage` with `io_threads` worker threads
    /// and the given device queue depth. Both are clamped to at least 1.
    #[must_use]
    pub fn new<S: Storage + 'static>(storage: S, io_threads: usize, queue_depth: usize) -> Self {
        Self::with_arc(Arc::new(storage), io_threads, queue_depth)
    }

    /// As [`UringSim::new`] but sharing an existing storage handle.
    #[must_use]
    pub fn with_arc(storage: Arc<dyn Storage>, io_threads: usize, queue_depth: usize) -> Self {
        Self::with_shared_counters(
            storage,
            io_threads,
            queue_depth,
            RetryPolicy::none(),
            Arc::new(RingCounters::default()),
        )
    }

    /// Full-control constructor: failed SQEs are re-submitted inside
    /// the worker according to `retry` (only transient errors, see
    /// [`IoError::class`](crate::IoError::class)) before a CQE reports
    /// the error, and all traffic is tallied into `counters` — which
    /// may be shared with other rings to aggregate statistics.
    #[must_use]
    pub fn with_shared_counters(
        storage: Arc<dyn Storage>,
        io_threads: usize,
        queue_depth: usize,
        retry: RetryPolicy,
        counters: Arc<RingCounters>,
    ) -> Self {
        Self::with_observability(
            storage,
            io_threads,
            queue_depth,
            retry,
            counters,
            Journal::disabled(),
            "uring",
        )
    }

    /// As [`UringSim::with_shared_counters`], additionally recording
    /// flight-recorder events: one `chunk_read` completion (with queue
    /// depth and per-op latency) on `{lane}.w{i}` per worker *i*, retry
    /// decisions on the same worker lane, and one `io_submit` doorbell
    /// event per batch on `{lane}.sq`. A disabled journal makes this
    /// identical to `with_shared_counters`.
    #[must_use]
    pub fn with_observability(
        storage: Arc<dyn Storage>,
        io_threads: usize,
        queue_depth: usize,
        retry: RetryPolicy,
        counters: Arc<RingCounters>,
        journal: Journal,
        lane: &str,
    ) -> Self {
        let io_threads = io_threads.max(1);
        let queue_depth = queue_depth.max(1);
        let (sq_tx, sq_rx) = unbounded::<Sqe>();
        let (cq_tx, cq_rx) = unbounded::<Cqe>();
        let mut workers = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let sq_rx: Receiver<Sqe> = sq_rx.clone();
            let cq_tx: Sender<Cqe> = cq_tx.clone();
            let storage = Arc::clone(&storage);
            let counters = Arc::clone(&counters);
            let clock = storage.sim_clock();
            let journal = journal.clone();
            let worker_lane = format!("{lane}.w{i}");
            workers.push(std::thread::spawn(move || {
                while let Ok(sqe) = sq_rx.recv() {
                    let mut buf = vec![0u8; sqe.len];
                    let started = journal.is_enabled().then(|| {
                        (
                            clock.as_ref().map(crate::clock::SimClock::now),
                            std::time::Instant::now(),
                        )
                    });
                    let (result, retries) =
                        retry.run_journaled(clock.as_ref(), &journal, &worker_lane, || {
                            storage.read_at(sqe.offset, &mut buf)
                        });
                    counters.record_retries(u64::from(retries));
                    let result = match result {
                        Ok(()) => {
                            counters.record_completed();
                            if let Some((sim_start, wall_start)) = started {
                                let latency = match (clock.as_ref(), sim_start) {
                                    (Some(c), Some(s)) => c.now().saturating_sub(s),
                                    _ => wall_start.elapsed(),
                                };
                                journal.emit(
                                    &worker_lane,
                                    EventKind::ChunkRead {
                                        offset: sqe.offset,
                                        len: sqe.len as u64,
                                        queue_depth: queue_depth as u64,
                                        latency_ns: u64::try_from(latency.as_nanos())
                                            .unwrap_or(u64::MAX),
                                    },
                                );
                            }
                            Ok(std::mem::take(&mut buf))
                        }
                        Err(e) => {
                            counters.record_gave_up();
                            Err(e)
                        }
                    };
                    if cq_tx
                        .send(Cqe {
                            user_data: sqe.user_data,
                            result,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }
        UringSim {
            storage,
            queue_depth,
            pending: Vec::new(),
            sq_tx: Some(sq_tx),
            cq_rx,
            workers,
            in_flight: 0,
            counters,
            journal,
            sq_lane: format!("{lane}.sq"),
        }
    }

    /// A snapshot of this ring's traffic counters.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.counters.snapshot()
    }

    /// The shared counter handle (clone to aggregate across rings).
    #[must_use]
    pub fn counters(&self) -> Arc<RingCounters> {
        Arc::clone(&self.counters)
    }

    /// The device queue depth this ring was created with.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Queues one SQE locally (no cost, no work yet — like writing an
    /// SQE slot without ringing the doorbell).
    pub fn push(&mut self, sqe: Sqe) {
        self.pending.push(sqe);
    }

    /// Rings the doorbell: charges the pending batch at asynchronous
    /// cost and hands it to the workers. Returns the number submitted.
    ///
    /// # Errors
    ///
    /// [`IoError::EngineShutDown`] if the worker pool is gone.
    pub fn submit(&mut self) -> IoResult<usize> {
        let batch = std::mem::take(&mut self.pending);
        if batch.is_empty() {
            return Ok(0);
        }
        let ops: Vec<OpSpec> = batch.iter().map(|s| (s.offset, s.len)).collect();
        self.storage.charge_batch(
            &ops,
            AccessMode::Async {
                depth: self.queue_depth,
            },
        );
        let tx = self.sq_tx.as_ref().ok_or(IoError::EngineShutDown)?;
        let n = batch.len();
        let total_len: u64 = batch.iter().map(|s| s.len as u64).sum();
        for sqe in batch {
            tx.send(sqe).map_err(|_| IoError::EngineShutDown)?;
        }
        self.counters.record_submitted(n as u64);
        self.journal.emit(
            &self.sq_lane,
            EventKind::IoSubmit {
                ops: n as u64,
                bytes: total_len,
                queue_depth: self.queue_depth as u64,
            },
        );
        self.in_flight += n;
        Ok(n)
    }

    /// Harvests one completion, blocking until available.
    ///
    /// # Errors
    ///
    /// [`IoError::EngineShutDown`] if nothing is in flight or the
    /// workers are gone.
    pub fn wait(&mut self) -> IoResult<Cqe> {
        if self.in_flight == 0 {
            return Err(IoError::EngineShutDown);
        }
        let cqe = self.cq_rx.recv().map_err(|_| IoError::EngineShutDown)?;
        self.in_flight -= 1;
        Ok(cqe)
    }

    /// Completions currently in flight (submitted, not yet harvested).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Reads every `(offset, len)` op, returning buffers in op order.
    ///
    /// This is the high-level path the comparison engine uses: one
    /// batched charge, all ops in flight, results reassembled in order.
    ///
    /// # Errors
    ///
    /// The first per-op error encountered, or
    /// [`IoError::EngineShutDown`].
    pub fn read_scattered(&mut self, ops: &[OpSpec]) -> IoResult<Vec<Vec<u8>>> {
        self.read_scattered_results(ops)?
            .into_iter()
            .collect::<IoResult<Vec<Vec<u8>>>>()
    }

    /// As [`UringSim::read_scattered`] but keeping per-op outcomes
    /// separate: the outer `Result` fails only on a global engine
    /// problem ([`IoError::EngineShutDown`]); each inner entry is that
    /// op's buffer or its error (after any in-worker retries), in op
    /// order. This is the path a quarantining caller uses — one bad
    /// sector must not discard its batch-mates.
    ///
    /// # Errors
    ///
    /// [`IoError::EngineShutDown`] if the worker pool is gone.
    pub fn read_scattered_results(&mut self, ops: &[OpSpec]) -> IoResult<Vec<IoResult<Vec<u8>>>> {
        for (i, &(offset, len)) in ops.iter().enumerate() {
            self.push(Sqe {
                user_data: i as u64,
                offset,
                len,
            });
        }
        self.submit()?;
        let mut out: Vec<Option<IoResult<Vec<u8>>>> = (0..ops.len()).map(|_| None).collect();
        for _ in 0..ops.len() {
            let cqe = self.wait()?;
            out[cqe.user_data as usize] = Some(cqe.result);
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("all ops completed"))
            .collect())
    }
}

impl Drop for UringSim {
    fn drop(&mut self) {
        // Close the SQ so workers exit, then join them.
        self.sq_tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::storage::MemStorage;
    use std::time::Duration;

    fn storage(n: usize) -> (MemStorage, Vec<u8>) {
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        (MemStorage::free(data.clone()), data)
    }

    #[test]
    fn scattered_reads_return_in_submission_order() {
        let (s, data) = storage(1 << 16);
        let mut ring = UringSim::new(s, 4, 16);
        let ops: Vec<OpSpec> = vec![(100, 10), (60_000, 20), (0, 5), (30_000, 15)];
        let bufs = ring.read_scattered(&ops).unwrap();
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }

    #[test]
    fn raw_sq_cq_api_round_trips() {
        let (s, data) = storage(4096);
        let mut ring = UringSim::new(s, 2, 8);
        ring.push(Sqe {
            user_data: 99,
            offset: 1000,
            len: 24,
        });
        assert_eq!(ring.submit().unwrap(), 1);
        assert_eq!(ring.in_flight(), 1);
        let cqe = ring.wait().unwrap();
        assert_eq!(cqe.user_data, 99);
        assert_eq!(&cqe.result.unwrap()[..], &data[1000..1024]);
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn wait_without_submission_errors() {
        let (s, _) = storage(16);
        let mut ring = UringSim::new(s, 1, 1);
        assert!(matches!(ring.wait(), Err(IoError::EngineShutDown)));
    }

    #[test]
    fn per_op_errors_are_reported() {
        let (s, _) = storage(128);
        let mut ring = UringSim::new(s, 2, 4);
        let err = ring.read_scattered(&[(120, 64)]).unwrap_err();
        assert!(matches!(err, IoError::OutOfBounds { .. }));
    }

    #[test]
    fn empty_submit_is_free_and_ok() {
        let (s, _) = storage(16);
        let mut ring = UringSim::new(s, 1, 4);
        assert_eq!(ring.submit().unwrap(), 0);
    }

    #[test]
    fn batch_is_charged_asynchronously() {
        let model = CostModel::lustre_pfs();
        let s = MemStorage::with_model(vec![0u8; 1 << 20], model);
        let clock = s.clock();
        let ops: Vec<OpSpec> = (0..64).map(|i| (i * 16_000, 4096)).collect();
        let expected = model.async_batch_time(&ops, 64);
        let mut ring = UringSim::new(s, 4, 64);
        ring.read_scattered(&ops).unwrap();
        assert_eq!(clock.now(), expected);
    }

    #[test]
    fn deeper_queues_cost_less_virtual_time() {
        let ops: Vec<OpSpec> = (0..128).map(|i| (i * 8000, 4096)).collect();
        let t = |depth: usize| {
            let s = MemStorage::with_model(vec![0u8; 1 << 20], CostModel::lustre_pfs());
            let clock = s.clock();
            let mut ring = UringSim::new(s, 4, depth);
            ring.read_scattered(&ops).unwrap();
            clock.now()
        };
        assert!(t(1) > t(64) * 4, "qd1 {:?} vs qd64 {:?}", t(1), t(64));
    }

    #[test]
    fn many_concurrent_large_batches() {
        let (s, data) = storage(1 << 20);
        let mut ring = UringSim::new(s, 8, 64);
        let ops: Vec<OpSpec> = (0..500).map(|i| ((i * 2048) as u64, 128)).collect();
        let bufs = ring.read_scattered(&ops).unwrap();
        assert_eq!(bufs.len(), 500);
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let (s, _) = storage(4096);
        let mut ring = UringSim::new(s, 3, 8);
        let _ = ring.read_scattered(&[(0, 64)]).unwrap();
        drop(ring); // must not hang or panic
    }

    #[test]
    fn zero_threads_clamped() {
        let (s, _) = storage(4096);
        let mut ring = UringSim::new(s, 0, 0);
        assert_eq!(ring.queue_depth(), 1);
        let bufs = ring.read_scattered(&[(0, 8)]).unwrap();
        assert_eq!(bufs[0].len(), 8);
    }

    #[test]
    fn transient_faults_heal_inside_the_worker() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (s, data) = storage(1 << 16);
        let faulty = Arc::new(FaultyStorage::new(Arc::new(s), FaultPlan::FirstN { n: 3 }));
        let mut ring = UringSim::with_shared_counters(
            faulty.clone(),
            2,
            8,
            RetryPolicy::with_attempts(8),
            Arc::new(RingCounters::default()),
        );
        let ops: Vec<OpSpec> = (0..10).map(|i| (i * 1000, 64)).collect();
        let bufs = ring.read_scattered(&ops).unwrap();
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
        assert_eq!(faulty.injected_faults(), 3, "first three reads faulted");
        let st = ring.stats();
        assert_eq!(st.submitted, 10);
        assert_eq!(st.completed, 10);
        assert!(
            st.retried >= 3,
            "at least the faulted reads retried: {st:?}"
        );
        assert_eq!(st.gave_up, 0);
    }

    #[test]
    fn exhausted_retries_report_and_count_gave_up() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (s, _) = storage(1 << 16);
        // Every read fails; 3 attempts are never enough.
        let faulty = Arc::new(FaultyStorage::new(
            Arc::new(s),
            FaultPlan::EveryNth { n: 1 },
        ));
        let mut ring = UringSim::with_shared_counters(
            faulty,
            2,
            8,
            RetryPolicy::with_attempts(3),
            Arc::new(RingCounters::default()),
        );
        let results = ring.read_scattered_results(&[(0, 64), (1000, 64)]).unwrap();
        assert!(results.iter().all(|r| r.is_err()));
        let st = ring.stats();
        assert_eq!(st.submitted, 2);
        assert_eq!(st.completed, 0);
        assert_eq!(st.retried, 4, "2 retries per op after the first attempt");
        assert_eq!(st.gave_up, 2);
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (s, _) = storage(1 << 16);
        let faulty = Arc::new(FaultyStorage::new(
            Arc::new(s),
            FaultPlan::Range { start: 0, end: 512 },
        ));
        let mut ring = UringSim::with_shared_counters(
            faulty.clone(),
            1,
            4,
            RetryPolicy::with_attempts(10),
            Arc::new(RingCounters::default()),
        );
        let results = ring.read_scattered_results(&[(0, 64)]).unwrap();
        assert!(results[0].is_err());
        assert_eq!(
            faulty.injected_faults(),
            1,
            "a bad sector is hit once, not ten times"
        );
        assert_eq!(ring.stats().retried, 0);
    }

    #[test]
    fn read_scattered_results_mixes_oks_and_errors() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (s, data) = storage(1 << 16);
        let faulty = Arc::new(FaultyStorage::new(
            Arc::new(s),
            FaultPlan::Range {
                start: 2000,
                end: 2100,
            },
        ));
        let mut ring = UringSim::with_arc(faulty, 2, 8);
        let ops: Vec<OpSpec> = vec![(0, 64), (2048, 64), (4096, 64)];
        let results = ring.read_scattered_results(&ops).unwrap();
        assert_eq!(&results[0].as_ref().unwrap()[..], &data[0..64]);
        assert!(results[1].is_err(), "op overlapping the bad sector fails");
        assert_eq!(&results[2].as_ref().unwrap()[..], &data[4096..4160]);
    }

    #[test]
    fn backoff_waits_charge_the_sim_clock_not_wall_time() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (s, _) = storage(1 << 16);
        let clock = s.clock();
        let faulty = Arc::new(FaultyStorage::new(Arc::new(s), FaultPlan::FirstN { n: 4 }));
        let retry = RetryPolicy::with_attempts(8);
        let mut ring =
            UringSim::with_shared_counters(faulty, 1, 4, retry, Arc::new(RingCounters::default()));
        let wall = std::time::Instant::now();
        ring.read_scattered(&[(0, 64)]).unwrap();
        assert!(
            wall.elapsed() < Duration::from_millis(200),
            "backoff must not sleep for real on simulated storage"
        );
        assert!(
            clock.now() >= retry.backoff(1),
            "waits accrue on the virtual clock: {:?}",
            clock.now()
        );
    }

    #[test]
    fn shared_clock_observes_ring_cost() {
        let s = MemStorage::with_model(vec![0u8; 8192], CostModel::node_local_nvme());
        let clock = s.clock();
        let mut ring = UringSim::new(s, 2, 8);
        ring.read_scattered(&[(0, 4096), (4096, 4096)]).unwrap();
        assert!(clock.now() > Duration::ZERO);
    }

    #[test]
    fn journaling_ring_records_submits_and_chunk_reads() {
        let (s, _) = storage(1 << 16);
        let journal = Journal::new(reprocmp_obs::ObsClock::wall());
        let mut ring = UringSim::with_observability(
            Arc::new(s),
            2,
            8,
            RetryPolicy::none(),
            Arc::new(RingCounters::default()),
            journal.clone(),
            "io",
        );
        ring.read_scattered(&[(0, 512), (1024, 256), (4096, 128)])
            .unwrap();
        let events = journal.events();
        let submits: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::IoSubmit { .. }))
            .collect();
        assert_eq!(submits.len(), 1, "one doorbell per submit batch");
        assert_eq!(submits[0].lane, "io.sq");
        match submits[0].kind {
            EventKind::IoSubmit {
                ops,
                bytes,
                queue_depth,
            } => {
                assert_eq!(ops, 3);
                assert_eq!(bytes, 512 + 256 + 128);
                assert_eq!(queue_depth, 8);
            }
            _ => unreachable!(),
        }
        let reads: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ChunkRead { .. }))
            .collect();
        assert_eq!(reads.len(), 3, "one chunk_read per completed op");
        assert!(reads.iter().all(|e| e.lane.starts_with("io.w")));
        assert!(journal.ledger().balanced());
    }

    #[test]
    fn disabled_journal_ring_emits_nothing() {
        let (s, _) = storage(4096);
        let mut ring = UringSim::with_shared_counters(
            Arc::new(s),
            2,
            8,
            RetryPolicy::none(),
            Arc::new(RingCounters::default()),
        );
        ring.read_scattered(&[(0, 64)]).unwrap();
        assert_eq!(ring.stats().completed, 1);
    }
}
