//! Virtual and wall-clock time sources.
//!
//! All storage backends charge their modeled costs against a shared
//! [`SimClock`]; the comparison engine reads phase durations from a
//! [`Timeline`], which is either that virtual clock or the real one.
//! Using virtual time makes every experiment deterministic and lets a
//! laptop reproduce the *shape* of numbers measured on a Lustre file
//! system.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, monotonically advancing virtual clock.
///
/// Cloning is cheap; clones observe and advance the same instant.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<Duration>>,
}

impl SimClock {
    /// A clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Duration {
        *self.now.lock()
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> Duration {
        let mut now = self.now.lock();
        *now += d;
        *now
    }

    /// Moves the clock forward *to* `t` if `t` is later than now
    /// (overlapped operations complete at their own time; the clock
    /// tracks the latest completion).
    pub fn advance_to(&self, t: Duration) -> Duration {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
        *now
    }
}

/// A time source for measuring phase durations: either wall-clock or a
/// [`SimClock`].
#[derive(Debug, Clone)]
pub enum Timeline {
    /// Real time, anchored at construction.
    Wall(Instant),
    /// Virtual time from the simulated storage stack.
    Sim(SimClock),
}

impl Timeline {
    /// A wall-clock timeline anchored now.
    #[must_use]
    pub fn wall() -> Self {
        Timeline::Wall(Instant::now())
    }

    /// A timeline that reads the given virtual clock.
    #[must_use]
    pub fn sim(clock: SimClock) -> Self {
        Timeline::Sim(clock)
    }

    /// Elapsed time since the anchor (wall) or the virtual now (sim).
    #[must_use]
    pub fn now(&self) -> Duration {
        match self {
            Timeline::Wall(start) => start.elapsed(),
            Timeline::Sim(clock) => clock.now(),
        }
    }

    /// An observability clock reading this timeline, for stamping
    /// tracing spans on the same time base the engine measures phases
    /// on (virtual under simulation, wall otherwise).
    #[must_use]
    pub fn obs_clock(&self) -> reprocmp_obs::ObsClock {
        let timeline = self.clone();
        reprocmp_obs::ObsClock::from_fn(move || timeline.now())
    }

    /// An enabled [`reprocmp_obs::Observer`] whose spans are stamped
    /// from this timeline.
    #[must_use]
    pub fn observer(&self) -> reprocmp_obs::Observer {
        reprocmp_obs::Observer::new(self.obs_clock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_is_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_millis(5));
        assert_eq!(c2.now(), Duration::from_millis(5));
        c2.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(12));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(10));
        c.advance_to(Duration::from_secs(3));
        assert_eq!(c.now(), Duration::from_secs(10));
        c.advance_to(Duration::from_secs(15));
        assert_eq!(c.now(), Duration::from_secs(15));
    }

    #[test]
    fn sim_timeline_reads_clock() {
        let c = SimClock::new();
        let t = Timeline::sim(c.clone());
        let before = t.now();
        c.advance(Duration::from_micros(250));
        assert_eq!(t.now() - before, Duration::from_micros(250));
    }

    #[test]
    fn wall_timeline_is_monotonic() {
        let t = Timeline::wall();
        let a = t.now();
        let b = t.now();
        assert!(b >= a);
    }

    #[test]
    fn obs_clock_tracks_the_timeline() {
        let c = SimClock::new();
        let obs = Timeline::sim(c.clone()).obs_clock();
        assert_eq!(obs.now(), Duration::ZERO);
        c.advance(Duration::from_millis(3));
        assert_eq!(obs.now(), Duration::from_millis(3));
    }

    #[test]
    fn observer_spans_are_stamped_in_virtual_time() {
        let c = SimClock::new();
        let obs = Timeline::sim(c.clone()).observer();
        {
            let _g = obs.tracer.span("phase");
            c.advance(Duration::from_micros(40));
        }
        let recs = obs.tracer.records();
        assert_eq!(recs[0].elapsed(), Duration::from_micros(40));
    }
}
