//! Lustre-style file striping across object storage targets (OSTs).
//!
//! A Lustre file is striped round-robin over several OSTs: stripe `k`
//! lives on OST `k mod n`, at object offset `(k / n) · stripe_size`.
//! Reads that span stripes are served by multiple OSTs *in parallel*,
//! which is where the PFS's aggregate bandwidth comes from — and why
//! the paper's evaluation platform can feed many comparison processes
//! at once.
//!
//! [`StripedStorage`] models exactly that on top of the in-memory
//! byte store: every charged batch is split into per-OST fragment
//! lists (translated to *object* offsets, so consecutive stripes on
//! one OST stay contiguous), each OST prices its fragments with its
//! own [`CostModel`], and the batch completes when the slowest OST
//! does. Data integrity is unaffected — only the virtual clock sees
//! the striping.

use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

use crate::clock::SimClock;
use crate::cost::{CostModel, OpSpec};
use crate::storage::{AccessMode, Storage};
use crate::{IoError, IoResult};

/// A striped storage object.
///
/// Clones share bytes and clock.
#[derive(Debug, Clone)]
pub struct StripedStorage {
    bytes: Arc<RwLock<Vec<u8>>>,
    model: CostModel,
    stripe_size: u64,
    ost_count: usize,
    clock: SimClock,
}

impl StripedStorage {
    /// Wraps `bytes`, striped `stripe_size`-wise over `ost_count`
    /// targets that each behave like `model`.
    ///
    /// # Panics
    ///
    /// If `stripe_size` is zero or `ost_count` is zero.
    #[must_use]
    pub fn new(bytes: Vec<u8>, model: CostModel, stripe_size: u64, ost_count: usize) -> Self {
        assert!(stripe_size > 0, "stripe size must be non-zero");
        assert!(ost_count > 0, "need at least one OST");
        StripedStorage {
            bytes: Arc::new(RwLock::new(bytes)),
            model,
            stripe_size,
            ost_count,
            clock: SimClock::new(),
        }
    }

    /// As [`StripedStorage::new`] but charging an existing clock.
    #[must_use]
    pub fn with_clock(
        bytes: Vec<u8>,
        model: CostModel,
        stripe_size: u64,
        ost_count: usize,
        clock: SimClock,
    ) -> Self {
        let mut s = Self::new(bytes, model, stripe_size, ost_count);
        s.clock = clock;
        s
    }

    /// The clock this storage charges.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Number of OSTs the file is striped over.
    #[must_use]
    pub fn ost_count(&self) -> usize {
        self.ost_count
    }

    /// Splits one file-offset op into per-OST fragments at *object*
    /// offsets.
    fn fragments(&self, offset: u64, len: usize) -> Vec<(usize, OpSpec)> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let stripe = pos / self.stripe_size;
            let within = pos % self.stripe_size;
            let take = (self.stripe_size - within).min(end - pos);
            let ost = (stripe % self.ost_count as u64) as usize;
            let object_offset = (stripe / self.ost_count as u64) * self.stripe_size + within;
            out.push((ost, (object_offset, take as usize)));
            pos += take;
        }
        out
    }
}

impl Storage for StripedStorage {
    fn len(&self) -> u64 {
        self.bytes.read().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> IoResult<()> {
        let bytes = self.bytes.read();
        let end = offset as usize + buf.len();
        if end > bytes.len() {
            return Err(IoError::OutOfBounds {
                offset,
                len: buf.len(),
                size: bytes.len() as u64,
            });
        }
        buf.copy_from_slice(&bytes[offset as usize..end]);
        Ok(())
    }

    fn charge_batch(&self, ops: &[OpSpec], mode: AccessMode) {
        // Split every op into per-OST fragment lists.
        let mut per_ost: Vec<Vec<OpSpec>> = vec![Vec::new(); self.ost_count];
        for &(offset, len) in ops {
            for (ost, frag) in self.fragments(offset, len) {
                per_ost[ost].push(frag);
            }
        }
        // Each OST serves its fragments concurrently with the others;
        // the batch finishes when the slowest OST does.
        let slowest = per_ost
            .iter()
            .filter(|frags| !frags.is_empty())
            .map(|frags| match mode {
                AccessMode::Sync => self.model.sync_batch_time(frags),
                AccessMode::Async { depth } => self.model.async_batch_time(frags, depth),
            })
            .max()
            .unwrap_or(Duration::ZERO);
        self.clock.advance(slowest);
    }

    fn elapsed(&self) -> Duration {
        self.clock.now()
    }

    fn sim_clock(&self) -> Option<SimClock> {
        Some(self.clock.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::uring::UringSim;

    fn model() -> CostModel {
        CostModel::lustre_pfs()
    }

    #[test]
    fn fragments_route_round_robin_to_object_offsets() {
        let s = StripedStorage::new(vec![0u8; 1 << 20], model(), 1024, 4);
        // One op spanning stripes 0..4 exactly.
        let frags = s.fragments(0, 4096);
        assert_eq!(
            frags,
            vec![
                (0, (0, 1024)),
                (1, (0, 1024)),
                (2, (0, 1024)),
                (3, (0, 1024)),
            ]
        );
        // Stripe 4 wraps to OST 0 at object offset 1024.
        let frags = s.fragments(4096, 100);
        assert_eq!(frags, vec![(0, (1024, 100))]);
        // Misaligned op splits mid-stripe.
        let frags = s.fragments(1000, 100);
        assert_eq!(frags, vec![(0, (1000, 24)), (1, (0, 76))]);
    }

    #[test]
    fn data_round_trips_regardless_of_striping() {
        let data: Vec<u8> = (0..1 << 16).map(|i| (i % 251) as u8).collect();
        let s = StripedStorage::new(data.clone(), model(), 4096, 4);
        let mut buf = vec![0u8; 1000];
        s.read_at(12_345, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[12_345..13_345]);
        let mut big = vec![0u8; 100];
        assert!(s.read_at((1 << 16) - 50, &mut big).is_err());
    }

    #[test]
    fn striping_multiplies_sequential_bandwidth() {
        let read_time = |osts: usize| {
            let s = StripedStorage::new(vec![0u8; 64 << 20], model(), 1 << 20, osts);
            s.charge_batch(&[(0, 64 << 20)], AccessMode::Async { depth: 64 });
            s.elapsed()
        };
        let one = read_time(1);
        let four = read_time(4);
        let ratio = one.as_secs_f64() / four.as_secs_f64();
        assert!(
            (3.0..=4.5).contains(&ratio),
            "4 OSTs should serve ~4x faster, got {ratio:.2}x"
        );
    }

    #[test]
    fn consecutive_stripes_on_one_ost_stay_contiguous() {
        // Reading the whole file: each OST sees ONE contiguous object
        // region, so it pays a single seek, not one per stripe.
        let s = StripedStorage::new(vec![0u8; 8 << 20], model(), 1 << 20, 2);
        let frags = s.fragments(0, 8 << 20);
        let ost0: Vec<OpSpec> = frags
            .iter()
            .filter(|(o, _)| *o == 0)
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(CostModel::count_seeks(&ost0), 1);
    }

    #[test]
    fn single_small_read_touches_one_ost() {
        let s = StripedStorage::new(vec![0u8; 1 << 20], model(), 64 << 10, 8);
        s.charge_batch(&[(0, 4096)], AccessMode::Sync);
        // Cost equals one plain op on one OST.
        let expected = model().sync_batch_time(&[(0, 4096)]);
        assert_eq!(s.elapsed(), expected);
    }

    #[test]
    fn matches_unstriped_storage_with_one_ost() {
        let ops: Vec<OpSpec> = (0..32).map(|i| (i * 10_000, 2048)).collect();
        let striped = StripedStorage::new(vec![0u8; 1 << 20], model(), 1 << 30, 1);
        striped.charge_batch(&ops, AccessMode::Async { depth: 16 });
        let plain = MemStorage::with_model(vec![0u8; 1 << 20], model());
        plain.charge_batch(&ops, AccessMode::Async { depth: 16 });
        assert_eq!(striped.elapsed(), plain.elapsed());
    }

    #[test]
    fn works_under_the_ring_engine() {
        let data: Vec<u8> = (0..1 << 18).map(|i| (i % 253) as u8).collect();
        let s = StripedStorage::new(data.clone(), model(), 16 << 10, 4);
        let clock = s.clock();
        let mut ring = UringSim::new(s, 4, 32);
        let ops: Vec<OpSpec> = (0..16).map(|i| (i * 16_000, 1024)).collect();
        let bufs = ring.read_scattered(&ops).unwrap();
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
        assert!(clock.now() > Duration::ZERO);
    }

    #[test]
    fn scattered_ops_spread_over_osts_run_in_parallel() {
        // 8 scattered reads, each landing on a different OST: the
        // batch costs about one op, not eight.
        let stripe = 1u64 << 20;
        let s = StripedStorage::new(vec![0u8; 16 << 20], model(), stripe, 8);
        let ops: Vec<OpSpec> = (0..8).map(|i| (i as u64 * stripe, 4096)).collect();
        s.charge_batch(&ops, AccessMode::Sync);
        let one_op = model().sync_batch_time(&[(0, 4096)]);
        assert_eq!(s.elapsed(), one_op);
    }
}
