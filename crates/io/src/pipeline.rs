//! Double-buffered streaming from storage to the compute device.
//!
//! The paper's Figure 3: a team of I/O threads reads chunk data from the
//! PFS into a pre-allocated buffer; once a buffer (a *slice*) is full it
//! is handed to the main thread, which launches the comparison kernel
//! while the I/O threads refill the next buffer. Working in slices also
//! bounds memory — the full checkpoint pair never has to fit.
//!
//! [`StreamPipeline`] implements that: a reader thread groups the
//! requested ops into slices of roughly [`PipelineConfig::slice_bytes`],
//! reads each slice through the configured backend, and sends it down a
//! bounded channel whose capacity plays the role of the buffer pool —
//! the reader blocks ("waits for a free buffer") when the consumer falls
//! behind.

use crossbeam::channel::{bounded, Receiver};
use reprocmp_obs::{EventKind, Histogram, Journal, Registry};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::clock::SimClock;
use crate::cost::OpSpec;
use crate::mmap::MmapSim;
use crate::retry::{RetryPolicy, RingCounters, RingStats};
use crate::storage::{AccessMode, Storage};
use crate::uring::UringSim;
use crate::{IoError, IoResult};

/// A `chunk_read` completion event for one synchronous per-op read,
/// with latency taken on the virtual clock when the storage is
/// simulated and on the wall clock otherwise.
fn chunk_read_event(
    offset: u64,
    len: usize,
    queue_depth: u64,
    clock: &Option<SimClock>,
    (sim_start, wall_start): (Option<std::time::Duration>, std::time::Instant),
) -> EventKind {
    let latency = match (clock.as_ref(), sim_start) {
        (Some(c), Some(s)) => c.now().saturating_sub(s),
        _ => wall_start.elapsed(),
    };
    EventKind::ChunkRead {
        offset,
        len: len as u64,
        queue_depth,
        latency_ns: u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
    }
}

/// Which I/O strategy fills the slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// io_uring-style batched asynchronous reads (the paper's choice).
    Uring,
    /// mmap-style synchronous page-faulting reads (Figure 9 baseline).
    Mmap,
    /// Plain blocking positioned reads with no batching (the AllClose
    /// baseline's I/O behaviour).
    Blocking,
}

/// Streaming configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// I/O strategy.
    pub backend: BackendKind,
    /// Target payload bytes per slice (at least one op per slice is
    /// always taken, so oversized ops still flow).
    pub slice_bytes: usize,
    /// Worker threads inside the uring backend.
    pub io_threads: usize,
    /// Device queue depth for the uring backend.
    pub queue_depth: usize,
    /// Buffer pool size: slices that may exist before the consumer
    /// drains one (2 = classic double buffering).
    pub buffers: usize,
    /// Retry policy applied to every read before its failure is
    /// surfaced (default: no retries).
    pub retry: RetryPolicy,
    /// When `false` (the default) the stream terminates at the first
    /// op whose retries are exhausted, matching fail-fast semantics.
    /// When `true`, failed ops are zero-filled, recorded in
    /// [`Slice::failed`], and the stream keeps flowing — the
    /// quarantining caller decides what to do with the holes.
    pub continue_on_error: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            backend: BackendKind::Uring,
            slice_bytes: 8 << 20,
            io_threads: 4,
            queue_depth: 64,
            buffers: 2,
            retry: RetryPolicy::none(),
            continue_on_error: false,
        }
    }
}

/// Observability sinks for one pipeline.
///
/// The default is the pre-registry behaviour: a fresh, detached
/// [`RingCounters`] and no histograms. [`PipelineMetrics::in_registry`]
/// binds everything into a [`Registry`] so pipeline traffic shows up in
/// metric snapshots: the ring counters under `{prefix}.submitted` /
/// `.completed` / `.retried` / `.gave_up`, per-op payload sizes in the
/// `{prefix}.read_bytes` histogram, and per-slice fill latencies
/// (microseconds, on the storage's clock) in `{prefix}.slice_fill_us`.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Submitted/completed/retried/gave-up accounting (always present).
    pub counters: Arc<RingCounters>,
    /// Per-op payload bytes of successful reads.
    pub read_bytes: Option<Histogram>,
    /// Per-slice fill latency in microseconds. Per-slice timings depend
    /// on thread interleaving — they belong here, never in a report.
    pub slice_fill_us: Option<Histogram>,
    /// Flight-recorder sink (disabled by default; see
    /// [`PipelineMetrics::with_journal`]).
    journal: Journal,
    /// Lane prefix for flight-recorder events.
    lane: String,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        PipelineMetrics {
            counters: Arc::new(RingCounters::default()),
            read_bytes: None,
            slice_fill_us: None,
            journal: Journal::disabled(),
            lane: "io".to_string(),
        }
    }
}

impl PipelineMetrics {
    /// Metrics registered in `registry` under `prefix` (see type docs).
    #[must_use]
    pub fn in_registry(registry: &Registry, prefix: &str) -> Self {
        PipelineMetrics {
            counters: Arc::new(RingCounters::registered(registry, prefix)),
            read_bytes: Some(registry.histogram(&format!("{prefix}.read_bytes"))),
            slice_fill_us: Some(registry.histogram(&format!("{prefix}.slice_fill_us"))),
            journal: Journal::disabled(),
            lane: prefix.to_string(),
        }
    }

    /// Attaches a flight-recorder journal. Events appear on lanes
    /// derived from `lane`: `slice_fill` on `{lane}.pipeline`, per-op
    /// `chunk_read` / `retry` events on `{lane}.pipeline` for the
    /// synchronous backends or `{lane}.uring.w{i}` per uring worker,
    /// and one `io_submit` per uring batch on `{lane}.uring.sq`.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal, lane: &str) -> Self {
        self.journal = journal;
        self.lane = lane.to_string();
        self
    }
}

/// One op whose reads never succeeded, even after retries.
#[derive(Debug)]
pub struct OpFailure {
    /// Global index (into the original op list) of the failed op.
    pub op: usize,
    /// The final error after the retry budget was spent.
    pub error: IoError,
}

/// One filled buffer: a contiguous batch of ops and their payloads.
#[derive(Debug)]
pub struct Slice {
    /// Index (into the original op list) of the first op in this slice.
    pub first_op: usize,
    /// The ops this slice carries, in original order.
    pub ops: Vec<OpSpec>,
    /// Concatenated payloads, op by op. Failed ops occupy their full
    /// length as zeroes so payload offsets stay correct.
    pub data: Vec<u8>,
    /// Ops in this slice whose reads failed after retries (empty unless
    /// [`PipelineConfig::continue_on_error`] is set).
    pub failed: Vec<OpFailure>,
}

impl Slice {
    /// Payload bytes of the `i`-th op within this slice.
    ///
    /// # Panics
    ///
    /// If `i` is out of range.
    #[must_use]
    pub fn payload(&self, i: usize) -> &[u8] {
        let mut start = 0usize;
        for &(_, len) in &self.ops[..i] {
            start += len;
        }
        &self.data[start..start + self.ops[i].1]
    }

    /// Iterates `(global_op_index, payload)` pairs.
    pub fn payloads(&self) -> impl Iterator<Item = (usize, &[u8])> {
        let mut start = 0usize;
        self.ops.iter().enumerate().map(move |(i, &(_, len))| {
            let s = start;
            start += len;
            (self.first_op + i, &self.data[s..s + len])
        })
    }
}

/// A running stream of [`Slice`]s; iterate to consume.
#[derive(Debug)]
pub struct StreamPipeline {
    rx: Receiver<IoResult<Slice>>,
    reader: Option<JoinHandle<()>>,
    counters: Arc<RingCounters>,
}

impl StreamPipeline {
    /// Starts streaming `ops` from `storage` with default (detached)
    /// metrics.
    #[must_use]
    pub fn start(storage: Arc<dyn Storage>, ops: Vec<OpSpec>, config: PipelineConfig) -> Self {
        StreamPipeline::start_observed(storage, ops, config, PipelineMetrics::default())
    }

    /// Starts streaming `ops` from `storage`, recording traffic into
    /// `metrics` (see [`PipelineMetrics`]).
    #[must_use]
    pub fn start_observed(
        storage: Arc<dyn Storage>,
        ops: Vec<OpSpec>,
        config: PipelineConfig,
        metrics: PipelineMetrics,
    ) -> Self {
        let (tx, rx) = bounded::<IoResult<Slice>>(config.buffers.max(1));
        let counters = Arc::clone(&metrics.counters);
        let reader_counters = Arc::clone(&counters);
        let read_bytes = metrics.read_bytes.clone();
        let slice_fill_us = metrics.slice_fill_us.clone();
        let journal = metrics.journal.clone();
        let pipeline_lane = format!("{}.pipeline", metrics.lane);
        let uring_lane = format!("{}.uring", metrics.lane);
        let reader = std::thread::spawn(move || {
            let counters = reader_counters;
            let mut ring = match config.backend {
                BackendKind::Uring => Some(UringSim::with_observability(
                    Arc::clone(&storage),
                    config.io_threads,
                    config.queue_depth,
                    config.retry,
                    Arc::clone(&counters),
                    journal.clone(),
                    &uring_lane,
                )),
                _ => None,
            };
            let map = match config.backend {
                BackendKind::Mmap => Some(MmapSim::with_arc(
                    Arc::clone(&storage),
                    crate::mmap::PAGE_SIZE,
                )),
                _ => None,
            };
            let clock = storage.sim_clock();

            let mut i = 0usize;
            while i < ops.len() {
                // Assemble the next slice.
                let first_op = i;
                let mut batch: Vec<OpSpec> = Vec::new();
                let mut bytes = 0usize;
                while i < ops.len() && (batch.is_empty() || bytes < config.slice_bytes) {
                    batch.push(ops[i]);
                    bytes += ops[i].1;
                    i += 1;
                }

                let fill_started = clock.as_ref().map(crate::clock::SimClock::now);
                let fill_wall = std::time::Instant::now();
                let filled: IoResult<Slice> = (|| {
                    let mut data = Vec::with_capacity(bytes);
                    let mut failed: Vec<OpFailure> = Vec::new();
                    match config.backend {
                        BackendKind::Uring => {
                            // Workers retry internally and tally the
                            // shared counters; only harvest here.
                            let results = ring
                                .as_mut()
                                .expect("uring backend present")
                                .read_scattered_results(&batch)?;
                            for (k, result) in results.into_iter().enumerate() {
                                match result {
                                    Ok(buf) => data.extend_from_slice(&buf),
                                    Err(error) => {
                                        data.resize(data.len() + batch[k].1, 0);
                                        failed.push(OpFailure {
                                            op: first_op + k,
                                            error,
                                        });
                                    }
                                }
                            }
                        }
                        BackendKind::Mmap => {
                            let map = map.as_ref().expect("mmap backend present");
                            counters.record_submitted(batch.len() as u64);
                            for (k, &(offset, len)) in batch.iter().enumerate() {
                                let op_started = journal.is_enabled().then(|| {
                                    (
                                        clock.as_ref().map(crate::clock::SimClock::now),
                                        std::time::Instant::now(),
                                    )
                                });
                                let (result, retries) = config.retry.run_journaled(
                                    clock.as_ref(),
                                    &journal,
                                    &pipeline_lane,
                                    || map.read(offset, len),
                                );
                                counters.record_retries(u64::from(retries));
                                match result {
                                    Ok(buf) => {
                                        counters.record_completed();
                                        data.extend_from_slice(&buf);
                                        if let Some(started) = op_started {
                                            journal.emit(
                                                &pipeline_lane,
                                                chunk_read_event(offset, len, 1, &clock, started),
                                            );
                                        }
                                    }
                                    Err(error) => {
                                        counters.record_gave_up();
                                        data.resize(data.len() + len, 0);
                                        failed.push(OpFailure {
                                            op: first_op + k,
                                            error,
                                        });
                                    }
                                }
                            }
                        }
                        BackendKind::Blocking => {
                            storage.charge_batch(&batch, AccessMode::Sync);
                            counters.record_submitted(batch.len() as u64);
                            for (k, &(offset, len)) in batch.iter().enumerate() {
                                let start = data.len();
                                data.resize(start + len, 0);
                                let op_started = journal.is_enabled().then(|| {
                                    (
                                        clock.as_ref().map(crate::clock::SimClock::now),
                                        std::time::Instant::now(),
                                    )
                                });
                                let (result, retries) = config.retry.run_journaled(
                                    clock.as_ref(),
                                    &journal,
                                    &pipeline_lane,
                                    || storage.read_at(offset, &mut data[start..]),
                                );
                                counters.record_retries(u64::from(retries));
                                match result {
                                    Ok(()) => {
                                        counters.record_completed();
                                        if let Some(started) = op_started {
                                            journal.emit(
                                                &pipeline_lane,
                                                chunk_read_event(offset, len, 1, &clock, started),
                                            );
                                        }
                                    }
                                    Err(error) => {
                                        counters.record_gave_up();
                                        data[start..].fill(0);
                                        failed.push(OpFailure {
                                            op: first_op + k,
                                            error,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    if !config.continue_on_error {
                        // Fail-fast: surface the first exhausted op as
                        // the stream's terminal error.
                        if let Some(first) = failed.into_iter().next() {
                            return Err(first.error);
                        }
                        failed = Vec::new();
                    }
                    Ok(Slice {
                        first_op,
                        ops: batch,
                        data,
                        failed,
                    })
                })();

                if slice_fill_us.is_some() || journal.is_enabled() {
                    // Virtual time when the storage is simulated, so the
                    // distribution reflects the modeled device.
                    let elapsed = match (&clock, fill_started) {
                        (Some(c), Some(s)) => c.now().saturating_sub(s),
                        _ => fill_wall.elapsed(),
                    };
                    if let Some(h) = &slice_fill_us {
                        h.record(elapsed.as_micros().try_into().unwrap_or(u64::MAX));
                    }
                    if let Ok(slice) = &filled {
                        journal.emit(
                            &pipeline_lane,
                            EventKind::SliceFill {
                                first_op: slice.first_op as u64,
                                ops: slice.ops.len() as u64,
                                bytes: slice.data.len() as u64,
                                latency_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                            },
                        );
                    }
                }
                if let (Some(h), Ok(slice)) = (&read_bytes, &filled) {
                    for (op, payload) in slice.payloads() {
                        if !slice.failed.iter().any(|f| f.op == op) {
                            h.record(payload.len() as u64);
                        }
                    }
                }

                let failed = filled.is_err();
                if tx.send(filled).is_err() || failed {
                    return; // consumer dropped, or error terminated stream
                }
            }
        });
        StreamPipeline {
            rx,
            reader: Some(reader),
            counters,
        }
    }

    /// Blocks for the next slice; `None` when the stream is exhausted.
    pub fn next_slice(&mut self) -> Option<IoResult<Slice>> {
        self.rx.recv().ok()
    }

    /// The shared traffic counters (live handle; clone before consuming
    /// the pipeline to read final statistics afterwards).
    #[must_use]
    pub fn counters(&self) -> Arc<RingCounters> {
        Arc::clone(&self.counters)
    }

    /// A snapshot of traffic through this pipeline so far.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.counters.snapshot()
    }
}

impl Iterator for StreamPipeline {
    type Item = IoResult<Slice>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_slice()
    }
}

impl Drop for StreamPipeline {
    fn drop(&mut self) {
        // Drain so the bounded sender unblocks, then join the reader.
        while self.rx.try_recv().is_ok() {}
        if let Some(handle) = self.reader.take() {
            // Disconnect by dropping our receiver clone implicitly after
            // drain; recv in thread sees closed channel on next send.
            drop(std::mem::replace(&mut self.rx, crossbeam::channel::never()));
            let _ = handle.join();
        }
    }
}

/// Convenience: reads all ops through a fresh pipeline and returns the
/// payloads concatenated in op order (test and baseline helper).
///
/// # Errors
///
/// The first I/O error from the stream.
pub fn read_all(
    storage: Arc<dyn Storage>,
    ops: &[OpSpec],
    config: PipelineConfig,
) -> IoResult<Vec<u8>> {
    let total: usize = ops.iter().map(|&(_, len)| len).sum();
    let mut out = Vec::with_capacity(total);
    let pipeline = StreamPipeline::start(storage, ops.to_vec(), config);
    for slice in pipeline {
        let slice = slice?;
        out.extend_from_slice(&slice.data);
    }
    if out.len() != total {
        return Err(IoError::EngineShutDown);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::storage::MemStorage;

    fn make(n: usize) -> (Arc<dyn Storage>, Vec<u8>) {
        let data: Vec<u8> = (0..n).map(|i| (i % 253) as u8).collect();
        (Arc::new(MemStorage::free(data.clone())), data)
    }

    fn chunk_ops(total: usize, chunk: usize) -> Vec<OpSpec> {
        (0..total / chunk)
            .map(|i| ((i * chunk) as u64, chunk))
            .collect()
    }

    #[test]
    fn delivers_every_byte_exactly_once_in_order() {
        let (storage, data) = make(1 << 18);
        let ops = chunk_ops(1 << 18, 4096);
        for backend in [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking] {
            let cfg = PipelineConfig {
                backend,
                slice_bytes: 16 * 1024,
                ..PipelineConfig::default()
            };
            let all = read_all(Arc::clone(&storage), &ops, cfg).unwrap();
            assert_eq!(all, data, "backend {backend:?}");
        }
    }

    #[test]
    fn slice_payload_accessors_agree() {
        let (storage, data) = make(1 << 16);
        let ops = vec![(0u64, 100usize), (50_000, 200), (1_000, 50)];
        let mut pipeline = StreamPipeline::start(
            storage,
            ops.clone(),
            PipelineConfig {
                slice_bytes: usize::MAX,
                ..PipelineConfig::default()
            },
        );
        let slice = pipeline.next_slice().unwrap().unwrap();
        assert_eq!(slice.ops.len(), 3);
        assert_eq!(slice.payload(1), &data[50_000..50_200]);
        let collected: Vec<(usize, Vec<u8>)> =
            slice.payloads().map(|(i, p)| (i, p.to_vec())).collect();
        assert_eq!(collected[2].0, 2);
        assert_eq!(&collected[2].1[..], &data[1_000..1_050]);
        assert!(pipeline.next_slice().is_none());
    }

    #[test]
    fn oversized_single_op_still_flows() {
        let (storage, data) = make(1 << 16);
        let ops = vec![(0u64, 1 << 16)];
        let cfg = PipelineConfig {
            slice_bytes: 1024, // much smaller than the op
            ..PipelineConfig::default()
        };
        let all = read_all(storage, &ops, cfg).unwrap();
        assert_eq!(all, data);
    }

    #[test]
    fn error_mid_stream_is_surfaced() {
        let (storage, _) = make(8192);
        let ops = vec![(0u64, 4096usize), (6000, 4096)]; // second overruns
        let mut pipeline = StreamPipeline::start(
            storage,
            ops,
            PipelineConfig {
                slice_bytes: 4096,
                ..PipelineConfig::default()
            },
        );
        assert!(pipeline.next_slice().unwrap().is_ok());
        assert!(pipeline.next_slice().unwrap().is_err());
    }

    #[test]
    fn empty_op_list_yields_empty_stream() {
        let (storage, _) = make(64);
        let mut pipeline = StreamPipeline::start(storage, Vec::new(), PipelineConfig::default());
        assert!(pipeline.next_slice().is_none());
    }

    #[test]
    fn bounded_buffers_apply_backpressure_without_deadlock() {
        let (storage, data) = make(1 << 18);
        let ops = chunk_ops(1 << 18, 1024);
        let cfg = PipelineConfig {
            slice_bytes: 2048,
            buffers: 1,
            ..PipelineConfig::default()
        };
        // Consume slowly; the reader must block, not drop or deadlock.
        let mut seen = 0usize;
        let pipeline = StreamPipeline::start(storage, ops, cfg);
        for slice in pipeline {
            seen += slice.unwrap().data.len();
        }
        assert_eq!(seen, data.len());
    }

    #[test]
    fn dropping_mid_stream_does_not_hang() {
        let (storage, _) = make(1 << 18);
        let ops = chunk_ops(1 << 18, 1024);
        let mut pipeline = StreamPipeline::start(
            storage,
            ops,
            PipelineConfig {
                slice_bytes: 1024,
                buffers: 1,
                ..PipelineConfig::default()
            },
        );
        let _ = pipeline.next_slice();
        drop(pipeline); // reader blocked on send must exit cleanly
    }

    #[test]
    fn continue_on_error_streams_past_failures_with_holes() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (storage, data) = make(1 << 16);
        let faulty = Arc::new(FaultyStorage::new(
            storage,
            FaultPlan::Range {
                start: 8192,
                end: 8192 + 4096,
            },
        )) as Arc<dyn Storage>;
        let ops = chunk_ops(1 << 16, 4096); // ops 2 and part of the range
        let cfg = PipelineConfig {
            slice_bytes: 8192,
            continue_on_error: true,
            ..PipelineConfig::default()
        };
        let mut failed_ops = Vec::new();
        let mut total = 0usize;
        let pipeline = StreamPipeline::start(Arc::clone(&faulty), ops.clone(), cfg);
        let counters = pipeline.counters();
        for slice in pipeline {
            let slice = slice.expect("stream never terminates on a per-op error");
            total += slice.data.len();
            for (op, payload) in slice.payloads() {
                if slice.failed.iter().any(|f| f.op == op) {
                    assert!(payload.iter().all(|&b| b == 0), "failed op is zero-filled");
                } else {
                    let (off, len) = ops[op];
                    assert_eq!(payload, &data[off as usize..off as usize + len]);
                }
            }
            failed_ops.extend(slice.failed.iter().map(|f| f.op));
        }
        assert_eq!(total, 1 << 16, "every op occupies its full length");
        assert_eq!(
            failed_ops,
            vec![2],
            "exactly the op overlapping the bad sector"
        );
        let st = counters.snapshot();
        assert_eq!(st.submitted, ops.len() as u64);
        assert_eq!(st.gave_up, 1);
        assert_eq!(st.completed, ops.len() as u64 - 1);
    }

    #[test]
    fn pipeline_retries_heal_transient_faults_transparently() {
        use crate::fault::{FaultPlan, FaultyStorage};
        for backend in [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking] {
            let (storage, data) = make(1 << 16);
            let faulty = Arc::new(FaultyStorage::new(storage, FaultPlan::FirstN { n: 3 }))
                as Arc<dyn Storage>;
            let ops = chunk_ops(1 << 16, 4096);
            let cfg = PipelineConfig {
                backend,
                slice_bytes: 8192,
                retry: RetryPolicy::with_attempts(8),
                ..PipelineConfig::default()
            };
            let all = read_all(faulty, &ops, cfg).unwrap();
            assert_eq!(all, data, "backend {backend:?} heals the outage");
        }
    }

    #[test]
    fn default_config_remains_fail_fast() {
        use crate::fault::{FaultPlan, FaultyStorage};
        let (storage, _) = make(1 << 16);
        let faulty = Arc::new(FaultyStorage::new(
            storage,
            FaultPlan::Range { start: 0, end: 64 },
        )) as Arc<dyn Storage>;
        let ops = chunk_ops(1 << 16, 4096);
        let err = read_all(faulty, &ops, PipelineConfig::default()).unwrap_err();
        assert!(matches!(err, IoError::Os(_)));
    }

    #[test]
    fn registry_metrics_mirror_pipeline_traffic_on_every_backend() {
        for backend in [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking] {
            let (storage, data) = make(1 << 16);
            let ops = chunk_ops(1 << 16, 4096);
            let registry = Registry::new();
            let metrics = PipelineMetrics::in_registry(&registry, "io");
            let cfg = PipelineConfig {
                backend,
                slice_bytes: 8192,
                ..PipelineConfig::default()
            };
            let pipeline =
                StreamPipeline::start_observed(Arc::clone(&storage), ops.clone(), cfg, metrics);
            let counters = pipeline.counters();
            let mut total = 0usize;
            for slice in pipeline {
                total += slice.unwrap().data.len();
            }
            assert_eq!(total, data.len());
            // Registry counters and the legacy snapshot read the same state.
            let stats = counters.snapshot();
            assert_eq!(
                registry.counter("io.submitted").get(),
                stats.submitted,
                "backend {backend:?}"
            );
            assert_eq!(registry.counter("io.completed").get(), stats.completed);
            assert_eq!(stats.completed, ops.len() as u64);
            // Every successful op's payload landed in the bytes histogram.
            let h = registry.histogram("io.read_bytes");
            assert_eq!(h.count(), ops.len() as u64, "backend {backend:?}");
            assert_eq!(h.sum(), data.len() as u64);
            // Each slice recorded one fill latency.
            let slices = (ops.len() * 4096).div_ceil(8192) as u64;
            assert_eq!(registry.histogram("io.slice_fill_us").count(), slices);
        }
    }

    #[test]
    fn every_backend_journals_one_chunk_read_per_op_and_slice_fills() {
        for backend in [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking] {
            let (storage, data) = make(1 << 16);
            let ops = chunk_ops(1 << 16, 4096);
            let journal = Journal::new(reprocmp_obs::ObsClock::wall());
            let metrics = PipelineMetrics::default().with_journal(journal.clone(), "run_a");
            let cfg = PipelineConfig {
                backend,
                slice_bytes: 8192,
                ..PipelineConfig::default()
            };
            let pipeline =
                StreamPipeline::start_observed(Arc::clone(&storage), ops.clone(), cfg, metrics);
            let mut total = 0usize;
            for slice in pipeline {
                total += slice.unwrap().data.len();
            }
            assert_eq!(total, data.len());
            let events = journal.events();
            let reads = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::ChunkRead { .. }))
                .count();
            assert_eq!(reads, ops.len(), "backend {backend:?}: one event per op");
            let fills: Vec<_> = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::SliceFill { .. }))
                .collect();
            let slices = (ops.len() * 4096).div_ceil(8192);
            assert_eq!(fills.len(), slices, "backend {backend:?}");
            assert!(fills.iter().all(|e| e.lane == "run_a.pipeline"));
            match backend {
                BackendKind::Uring => {
                    assert!(events
                        .iter()
                        .any(|e| matches!(e.kind, EventKind::IoSubmit { .. })
                            && e.lane == "run_a.uring.sq"));
                }
                _ => assert!(events
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::ChunkRead { .. }))
                    .all(|e| e.lane == "run_a.pipeline")),
            }
            assert!(journal.ledger().balanced(), "backend {backend:?}");
        }
    }

    #[test]
    fn uring_pipeline_cheaper_than_blocking_on_virtual_clock() {
        let data = vec![0u8; 1 << 20];
        let ops: Vec<OpSpec> = (0..128).map(|i| (i * 8192, 2048)).collect();

        let elapsed = |backend| {
            let mem = MemStorage::with_model(data.clone(), CostModel::lustre_pfs());
            let clock = mem.clock();
            let cfg = PipelineConfig {
                backend,
                slice_bytes: 64 * 1024,
                ..PipelineConfig::default()
            };
            read_all(Arc::new(mem), &ops, cfg).unwrap();
            clock.now()
        };
        assert!(elapsed(BackendKind::Blocking) > elapsed(BackendKind::Uring) * 2);
    }
}
