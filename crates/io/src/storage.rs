//! Positioned-read storage objects.
//!
//! [`Storage`] is the narrow interface every backend and the comparison
//! engine program against. Two implementations:
//!
//! * [`MemStorage`] — checkpoint bytes held in memory, every access
//!   charged against a [`CostModel`] on a shared [`SimClock`]. This is
//!   the "simulated Lustre" used by all experiments.
//! * [`StdFsStorage`] — a real file accessed with positioned reads, used
//!   by the CLI when pointed at actual checkpoint files.

use parking_lot::RwLock;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use crate::clock::SimClock;
use crate::cost::{CostModel, OpSpec};
use crate::{IoError, IoResult};

/// How a batch of operations is driven, for cost-charging purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Operations serialized one by one (blocking read, page fault).
    Sync,
    /// Up to `depth` operations in flight (io_uring-style).
    Async {
        /// In-flight operation budget.
        depth: usize,
    },
}

/// Byte-addressable storage with positioned reads.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Size of the object in bytes.
    fn len(&self) -> u64;

    /// True when the object holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> IoResult<()>;

    /// Charges the cost of a batch of operations without moving bytes.
    ///
    /// Engines call this once per batch and then use [`Storage::read_at`]
    /// for the actual copies, so the modeled cost reflects the batch
    /// shape (seek count, concurrency) rather than per-call overhead.
    /// The default implementation (real files) charges nothing — wall
    /// time is measured there instead.
    fn charge_batch(&self, _ops: &[OpSpec], _mode: AccessMode) {}

    /// Virtual time consumed on this storage's clock so far.
    fn elapsed(&self) -> Duration {
        Duration::ZERO
    }

    /// The virtual clock this storage charges, when it has one.
    ///
    /// Retry backoff waits advance this clock instead of sleeping, so
    /// simulated experiments stay deterministic and instant. Real-file
    /// backends return `None` (the default) and retries sleep for real.
    fn sim_clock(&self) -> Option<SimClock> {
        None
    }
}

/// In-memory storage charged against a [`CostModel`].
///
/// Cloning is cheap and clones share both the bytes and the clock.
#[derive(Debug, Clone)]
pub struct MemStorage {
    bytes: Arc<RwLock<Vec<u8>>>,
    model: CostModel,
    clock: SimClock,
}

impl MemStorage {
    /// Wraps `bytes` with the given cost model on a fresh clock.
    #[must_use]
    pub fn with_model(bytes: Vec<u8>, model: CostModel) -> Self {
        MemStorage {
            bytes: Arc::new(RwLock::new(bytes)),
            model,
            clock: SimClock::new(),
        }
    }

    /// Wraps `bytes` with the model, charging time to an existing clock
    /// (several files on the same simulated device share one clock).
    #[must_use]
    pub fn with_clock(bytes: Vec<u8>, model: CostModel, clock: SimClock) -> Self {
        MemStorage {
            bytes: Arc::new(RwLock::new(bytes)),
            model,
            clock,
        }
    }

    /// Cost-free in-memory storage for tests.
    #[must_use]
    pub fn free(bytes: Vec<u8>) -> Self {
        MemStorage::with_model(bytes, CostModel::free())
    }

    /// The clock this storage charges.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// The cost model in effect.
    #[must_use]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Overwrites `buf.len()` bytes at `offset`, extending the object if
    /// needed, charging one sequential write.
    pub fn write_at(&self, offset: u64, buf: &[u8]) -> IoResult<()> {
        let mut bytes = self.bytes.write();
        let end = offset as usize + buf.len();
        if bytes.len() < end {
            bytes.resize(end, 0);
        }
        bytes[offset as usize..end].copy_from_slice(buf);
        self.clock
            .advance(self.model.sequential_time(buf.len() as u64));
        Ok(())
    }

    /// Copies the full contents out (test helper).
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.read().clone()
    }
}

impl Storage for MemStorage {
    fn len(&self) -> u64 {
        self.bytes.read().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> IoResult<()> {
        let bytes = self.bytes.read();
        let end = offset as usize + buf.len();
        if end > bytes.len() {
            return Err(IoError::OutOfBounds {
                offset,
                len: buf.len(),
                size: bytes.len() as u64,
            });
        }
        buf.copy_from_slice(&bytes[offset as usize..end]);
        Ok(())
    }

    fn charge_batch(&self, ops: &[OpSpec], mode: AccessMode) {
        let t = match mode {
            AccessMode::Sync => self.model.sync_batch_time(ops),
            AccessMode::Async { depth } => self.model.async_batch_time(ops, depth),
        };
        self.clock.advance(t);
    }

    fn elapsed(&self) -> Duration {
        self.clock.now()
    }

    fn sim_clock(&self) -> Option<SimClock> {
        Some(self.clock.clone())
    }
}

/// A real file opened for positioned reads.
#[derive(Debug)]
pub struct StdFsStorage {
    file: parking_lot::Mutex<File>,
    len: u64,
}

impl StdFsStorage {
    /// Opens `path` read-only.
    ///
    /// # Errors
    ///
    /// Any error from [`File::open`] or metadata lookup.
    pub fn open(path: &Path) -> IoResult<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(StdFsStorage {
            file: parking_lot::Mutex::new(file),
            len,
        })
    }

    /// Creates `path` (truncating) with the given contents.
    ///
    /// # Errors
    ///
    /// Any error from file creation or writing.
    pub fn create(path: &Path, contents: &[u8]) -> IoResult<()> {
        let mut f = File::create(path)?;
        f.write_all(contents)?;
        f.sync_all()?;
        Ok(())
    }
}

impl Storage for StdFsStorage {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> IoResult<()> {
        if offset + buf.len() as u64 > self.len {
            return Err(IoError::OutOfBounds {
                offset,
                len: buf.len(),
                size: self.len,
            });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        let s = MemStorage::free(data.clone());
        let mut buf = vec![0u8; 16];
        s.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[100..116]);
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let s = MemStorage::free(vec![0u8; 64]);
        let mut buf = vec![0u8; 16];
        let err = s.read_at(60, &mut buf).unwrap_err();
        assert!(matches!(err, IoError::OutOfBounds { .. }));
        let msg = err.to_string();
        assert!(msg.contains("60"), "{msg}");
    }

    #[test]
    fn charged_reads_advance_the_clock() {
        let s = MemStorage::with_model(vec![0u8; 1 << 20], CostModel::lustre_pfs());
        assert_eq!(s.elapsed(), Duration::ZERO);
        s.charge_batch(&[(0, 4096), (500_000, 4096)], AccessMode::Sync);
        assert!(
            s.elapsed() >= Duration::from_micros(600),
            "{:?}",
            s.elapsed()
        );
    }

    #[test]
    fn async_charging_is_cheaper_than_sync_for_scattered_ops() {
        let ops: Vec<OpSpec> = (0..64).map(|i| (i * 10_000, 4096)).collect();
        let a = MemStorage::with_model(vec![0u8; 1 << 20], CostModel::lustre_pfs());
        let b = MemStorage::with_model(vec![0u8; 1 << 20], CostModel::lustre_pfs());
        a.charge_batch(&ops, AccessMode::Sync);
        b.charge_batch(&ops, AccessMode::Async { depth: 64 });
        assert!(a.elapsed() > b.elapsed() * 4);
    }

    #[test]
    fn write_at_extends_and_round_trips() {
        let s = MemStorage::free(Vec::new());
        s.write_at(10, &[1, 2, 3]).unwrap();
        assert_eq!(s.len(), 13);
        let mut buf = vec![0u8; 3];
        s.read_at(10, &mut buf).unwrap();
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn shared_clock_accumulates_across_files() {
        let clock = SimClock::new();
        let m = CostModel::lustre_pfs();
        let a = MemStorage::with_clock(vec![0u8; 8192], m, clock.clone());
        let b = MemStorage::with_clock(vec![0u8; 8192], m, clock.clone());
        a.charge_batch(&[(0, 4096)], AccessMode::Sync);
        b.charge_batch(&[(0, 4096)], AccessMode::Sync);
        assert_eq!(a.elapsed(), b.elapsed());
        assert!(clock.now() > Duration::ZERO);
    }

    #[test]
    fn std_fs_storage_round_trip() {
        let dir = std::env::temp_dir().join("reprocmp-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stor.bin");
        let data: Vec<u8> = (0..1024u32).flat_map(|i| i.to_le_bytes()).collect();
        StdFsStorage::create(&path, &data).unwrap();
        let s = StdFsStorage::open(&path).unwrap();
        assert_eq!(s.len(), data.len() as u64);
        let mut buf = vec![0u8; 64];
        s.read_at(512, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[512..576]);
        let mut big = vec![0u8; 64];
        assert!(s.read_at(s.len() - 10, &mut big).is_err());
        std::fs::remove_file(&path).ok();
    }
}
