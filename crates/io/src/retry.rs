//! Retry policies, backoff, and I/O fault accounting.
//!
//! A comparison runtime streaming thousands of scattered reads through
//! worker pools will eventually meet a flaky device. This module gives
//! every backend a shared vocabulary for surviving it:
//!
//! * [`ErrorClass`] splits [`IoError`](crate::IoError)s into
//!   *transient* (worth retrying: interrupted syscalls, timeouts,
//!   connection resets) and *permanent* (retrying cannot help: bounds
//!   violations, bad media, engine shutdown).
//! * [`RetryPolicy`] bounds the retries: a total attempt budget,
//!   exponential backoff with deterministic jitter, and an optional
//!   per-operation deadline. Backoff waits are charged to the
//!   storage's [`SimClock`] when it has one — so simulated experiments
//!   stay deterministic and instant — and slept for real otherwise.
//! * [`RingCounters`] / [`RingStats`] account for what the retry
//!   machinery did (submitted, completed, retried, gave up), so a
//!   partial report can say exactly how hard the I/O layer fought.

use reprocmp_obs::{Counter, EventKind, Journal, Registry};
use serde::Serialize;
use std::time::{Duration, Instant};

use crate::clock::SimClock;
use crate::IoResult;

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The operation may succeed if re-issued (device hiccup).
    Transient,
    /// Retrying cannot change the outcome (bad request, bad media,
    /// engine gone).
    Permanent,
}

/// SplitMix64: one statistically solid 64-bit mix, used for
/// deterministic jitter and probabilistic fault schedules.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many times to re-issue a failed operation, and how long to wait
/// between attempts.
///
/// Only [`ErrorClass::Transient`] failures are retried; permanent ones
/// are returned immediately. The policy is `Copy` and lives happily
/// inside `PipelineConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (minimum 1 is enforced at
    /// run time; `1` means "never retry").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff wait.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter applied to each wait.
    pub jitter_seed: u64,
    /// Per-operation deadline over all attempts *and* backoff waits,
    /// measured on the virtual clock when one is present. `None`
    /// disables the deadline.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// Never retry — the failure behaviour the stack had before this
    /// policy existed.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
            deadline: None,
        }
    }

    /// A sensible retrying policy: `attempts` total attempts, 500 µs
    /// base backoff capped at 50 ms, no deadline.
    ///
    /// # Panics
    ///
    /// On a zero-attempt budget — an operation that may never run is a
    /// configuration bug, rejected here at config time rather than
    /// silently clamped at run time. Callers holding untrusted input
    /// use [`RetryPolicy::try_with_attempts`].
    #[must_use]
    pub fn with_attempts(attempts: u32) -> Self {
        RetryPolicy::try_with_attempts(attempts)
            .expect("retry attempt budget must be at least 1 (the first attempt)")
    }

    /// Fallible [`RetryPolicy::with_attempts`]: rejects a zero-attempt
    /// budget instead of panicking, for configs built from user input.
    ///
    /// # Errors
    ///
    /// When `attempts` is zero.
    pub fn try_with_attempts(attempts: u32) -> Result<Self, String> {
        if attempts == 0 {
            return Err(
                "retry attempt budget must be at least 1 (the first attempt is an attempt)"
                    .to_owned(),
            );
        }
        Ok(RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
            deadline: None,
        })
    }

    /// Sets the per-operation deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The jittered wait before retry number `retry_index` (1-based).
    ///
    /// Exponential in the retry index, capped at
    /// [`RetryPolicy::max_backoff`], then scaled by a deterministic
    /// jitter factor in `[0.5, 1.0]` drawn from
    /// [`RetryPolicy::jitter_seed`] — concurrent workers hitting the
    /// same outage spread out instead of stampeding in lockstep.
    #[must_use]
    pub fn backoff(&self, retry_index: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry_index.saturating_sub(1).min(20);
        let nominal = self
            .base_backoff
            .saturating_mul(1 << exp)
            .min(self.max_backoff);
        let unit = (splitmix64(self.jitter_seed ^ u64::from(retry_index)) >> 11) as f64
            / (1u64 << 53) as f64;
        nominal.mul_f64(0.5 + 0.5 * unit)
    }

    /// Runs `op` under this policy, returning the final result and the
    /// number of retries performed (0 = first attempt succeeded or was
    /// terminal).
    ///
    /// Transient failures are retried up to the attempt budget, waiting
    /// [`RetryPolicy::backoff`] between attempts: the wait advances
    /// `clock` when one is given (virtual time — free and
    /// deterministic) and sleeps for real otherwise. The deadline is
    /// measured on the same time base and includes the time `op` itself
    /// charges; once the *next* wait would cross it, the operation
    /// gives up with the last error.
    pub fn run<T>(
        &self,
        clock: Option<&SimClock>,
        op: impl FnMut() -> IoResult<T>,
    ) -> (IoResult<T>, u32) {
        self.run_observed(clock, op, |_, _| {})
    }

    /// [`RetryPolicy::run`] with flight-recorder hooks: emits a `retry`
    /// event on `lane` for every backoff wait and a `gave_up` event if
    /// the budget is exhausted on a transient error. A disabled journal
    /// makes this identical to `run` (the hook costs one branch).
    pub fn run_journaled<T>(
        &self,
        clock: Option<&SimClock>,
        journal: &Journal,
        lane: &str,
        op: impl FnMut() -> IoResult<T>,
    ) -> (IoResult<T>, u32) {
        let (result, retries) = self.run_observed(clock, op, |attempt, wait| {
            journal.emit(
                lane,
                EventKind::Retry {
                    attempt,
                    backoff_ns: u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
                },
            );
        });
        if result.is_err() && retries > 0 {
            journal.emit(
                lane,
                EventKind::GaveUp {
                    attempts: retries + 1,
                },
            );
        }
        (result, retries)
    }

    /// [`RetryPolicy::run`] with an `on_retry(attempt, wait)` callback
    /// invoked just before each backoff wait is charged.
    pub fn run_observed<T>(
        &self,
        clock: Option<&SimClock>,
        mut op: impl FnMut() -> IoResult<T>,
        mut on_retry: impl FnMut(u32, Duration),
    ) -> (IoResult<T>, u32) {
        let sim_start = clock.map(SimClock::now);
        let wall_start = Instant::now();
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) => {
                    let attempts_made = retries + 1;
                    if attempts_made >= self.max_attempts.max(1)
                        || e.class() == ErrorClass::Permanent
                    {
                        return (Err(e), retries);
                    }
                    let wait = self.backoff(attempts_made);
                    if let Some(deadline) = self.deadline {
                        let elapsed = match (clock, sim_start) {
                            (Some(c), Some(s)) => c.now().saturating_sub(s),
                            _ => wall_start.elapsed(),
                        };
                        if elapsed + wait > deadline {
                            return (Err(e), retries);
                        }
                    }
                    on_retry(attempts_made, wait);
                    match clock {
                        Some(c) => {
                            c.advance(wait);
                        }
                        None => {
                            if !wait.is_zero() {
                                std::thread::sleep(wait);
                            }
                        }
                    }
                    retries += 1;
                }
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Shared I/O accounting, updated live by ring workers and pipeline
/// readers.
///
/// Each field is a registry-style [`Counter`] from `reprocmp-obs`. A
/// default-constructed `RingCounters` owns detached counters (exactly
/// the old behaviour); [`RingCounters::registered`] binds the four
/// counters into a [`Registry`] under a name prefix so the same
/// increments also show up in metric snapshots — the public recording
/// API and [`RingStats`] shape are unchanged either way.
#[derive(Debug, Default)]
pub struct RingCounters {
    submitted: Counter,
    completed: Counter,
    retried: Counter,
    gave_up: Counter,
}

impl RingCounters {
    /// Counters registered as `{prefix}.submitted`, `{prefix}.completed`,
    /// `{prefix}.retried`, and `{prefix}.gave_up` in `registry`.
    ///
    /// Handles are get-or-create: two `RingCounters` registered under
    /// the same prefix share the same underlying counters, which is how
    /// a pair of pipelines aggregates into one set of totals.
    #[must_use]
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        RingCounters {
            submitted: registry.counter(&format!("{prefix}.submitted")),
            completed: registry.counter(&format!("{prefix}.completed")),
            retried: registry.counter(&format!("{prefix}.retried")),
            gave_up: registry.counter(&format!("{prefix}.gave_up")),
        }
    }

    /// Records `n` operations handed to the device.
    pub fn record_submitted(&self, n: u64) {
        self.submitted.add(n);
    }

    /// Records one operation finishing successfully.
    pub fn record_completed(&self) {
        self.completed.inc();
    }

    /// Records `n` retry attempts.
    pub fn record_retries(&self, n: u64) {
        if n > 0 {
            self.retried.add(n);
        }
    }

    /// Records one operation exhausting its policy and failing.
    pub fn record_gave_up(&self) {
        self.gave_up.inc();
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> RingStats {
        RingStats {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            retried: self.retried.get(),
            gave_up: self.gave_up.get(),
        }
    }
}

/// A snapshot of [`RingCounters`]: what the I/O layer did for one
/// stream of operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RingStats {
    /// Operations handed to the device.
    pub submitted: u64,
    /// Operations that finished successfully (possibly after retries).
    pub completed: u64,
    /// Extra attempts issued beyond each operation's first.
    pub retried: u64,
    /// Operations that exhausted their retry policy and failed.
    pub gave_up: u64,
}

impl RingStats {
    /// Field-wise sum, for aggregating several streams into one report.
    #[must_use]
    pub fn merged(self, other: RingStats) -> RingStats {
        RingStats {
            submitted: self.submitted + other.submitted,
            completed: self.completed + other.completed,
            retried: self.retried + other.retried,
            gave_up: self.gave_up + other.gave_up,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoError;
    use std::io::ErrorKind;

    fn transient() -> IoError {
        IoError::Os(std::io::Error::new(ErrorKind::Interrupted, "hiccup"))
    }

    fn permanent() -> IoError {
        IoError::Os(std::io::Error::new(ErrorKind::InvalidData, "bad media"))
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(16),
            jitter_seed: 7,
            deadline: None,
        };
        // Jitter keeps each wait within [0.5, 1.0] of the nominal value.
        for k in 1..8u32 {
            let nominal = Duration::from_millis(1 << (k - 1)).min(Duration::from_millis(16));
            let b = p.backoff(k);
            assert!(
                b >= nominal.mul_f64(0.5) && b <= nominal,
                "retry {k}: {b:?}"
            );
        }
        assert_eq!(p.backoff(3), p.backoff(3), "jitter is deterministic");
    }

    #[test]
    fn transient_errors_retry_until_success_on_virtual_time() {
        let clock = SimClock::new();
        let p = RetryPolicy::with_attempts(5);
        let mut calls = 0;
        let (result, retries) = p.run(Some(&clock), || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(retries, 2);
        assert_eq!(calls, 3);
        assert!(clock.now() > Duration::ZERO, "backoff charged virtually");
    }

    #[test]
    fn attempt_budget_is_respected() {
        let clock = SimClock::new();
        let p = RetryPolicy::with_attempts(3);
        let mut calls = 0;
        let (result, retries): (IoResult<()>, u32) = p.run(Some(&clock), || {
            calls += 1;
            Err(transient())
        });
        assert!(result.is_err());
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let clock = SimClock::new();
        let p = RetryPolicy::with_attempts(5);
        let mut calls = 0;
        let (result, retries): (IoResult<()>, u32) = p.run(Some(&clock), || {
            calls += 1;
            Err(permanent())
        });
        assert!(result.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let clock = SimClock::new();
        // Deadline shorter than even one backoff wait: no retry happens.
        let p = RetryPolicy::with_attempts(10).with_deadline(Duration::from_nanos(1));
        let mut calls = 0;
        let (result, _): (IoResult<()>, u32) = p.run(Some(&clock), || {
            calls += 1;
            Err(transient())
        });
        assert!(result.is_err());
        assert_eq!(calls, 1, "deadline forbade the first retry");
    }

    #[test]
    fn none_policy_makes_one_attempt() {
        let mut calls = 0;
        let (result, retries): (IoResult<()>, u32) = RetryPolicy::none().run(None, || {
            calls += 1;
            Err(transient())
        });
        assert!(result.is_err());
        assert_eq!((calls, retries), (1, 0));
    }

    #[test]
    fn journaled_run_emits_retry_and_gave_up_events() {
        use reprocmp_obs::ObsClock;
        let clock = SimClock::new();
        let journal = Journal::new(ObsClock::frozen());
        let p = RetryPolicy::with_attempts(3);
        let mut calls = 0;
        let (result, retries): (IoResult<()>, u32) =
            p.run_journaled(Some(&clock), &journal, "io.w0", || {
                calls += 1;
                Err(transient())
            });
        assert!(result.is_err());
        assert_eq!(retries, 2);
        let events = journal.events();
        let retry_events: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Retry { .. }))
            .collect();
        assert_eq!(retry_events.len(), 2);
        assert!(retry_events.iter().all(|e| e.lane == "io.w0"));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::GaveUp { attempts: 3 }
        ));
        // Backoff in the event matches what was actually charged.
        let charged: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Retry { backoff_ns, .. } => Some(backoff_ns),
                _ => None,
            })
            .sum();
        assert_eq!(u128::from(charged), clock.now().as_nanos());
    }

    #[test]
    fn journaled_run_with_disabled_journal_matches_run() {
        let clock = SimClock::new();
        let journal = Journal::disabled();
        let p = RetryPolicy::with_attempts(4);
        let mut calls = 0;
        let (result, retries) = p.run_journaled(Some(&clock), &journal, "io", || {
            calls += 1;
            if calls < 2 {
                Err(transient())
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(retries, 1);
        assert!(journal.events().is_empty());
    }

    #[test]
    fn counters_snapshot_and_merge() {
        let c = RingCounters::default();
        c.record_submitted(5);
        c.record_completed();
        c.record_retries(3);
        c.record_retries(0);
        c.record_gave_up();
        let s = c.snapshot();
        assert_eq!(
            s,
            RingStats {
                submitted: 5,
                completed: 1,
                retried: 3,
                gave_up: 1
            }
        );
        let m = s.merged(s);
        assert_eq!(m.submitted, 10);
        assert_eq!(m.gave_up, 2);
    }

    #[test]
    fn registered_counters_mirror_into_the_registry() {
        let registry = Registry::new();
        let c = RingCounters::registered(&registry, "io");
        c.record_submitted(4);
        c.record_completed();
        c.record_retries(2);
        c.record_gave_up();
        assert_eq!(registry.counter("io.submitted").get(), 4);
        assert_eq!(registry.counter("io.completed").get(), 1);
        assert_eq!(registry.counter("io.retried").get(), 2);
        assert_eq!(registry.counter("io.gave_up").get(), 1);
        // The snapshot still reads the same numbers through the legacy API.
        assert_eq!(
            c.snapshot(),
            RingStats {
                submitted: 4,
                completed: 1,
                retried: 2,
                gave_up: 1
            }
        );
        // Same prefix → same underlying counters.
        let c2 = RingCounters::registered(&registry, "io");
        c2.record_submitted(1);
        assert_eq!(c.snapshot().submitted, 5);
    }
}
