//! Property tests of the I/O substrate: cost-model monotonicity and
//! data-integrity of the engines under arbitrary access patterns.

use proptest::prelude::*;
use reprocmp_io::cost::{CostModel, OpSpec};
use reprocmp_io::{MemStorage, MmapSim, Storage, UringSim};
use std::sync::Arc;
use std::time::Duration;

fn arbitrary_ops(file_len: usize) -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec((0usize..file_len.saturating_sub(1), 1usize..4096), 1..40).prop_map(
        move |raw| {
            raw.into_iter()
                .map(|(off, len)| {
                    let len = len.min(file_len - off);
                    (off as u64, len.max(1))
                })
                .collect()
        },
    )
}

proptest! {
    /// Async batches never cost more than synchronous ones.
    #[test]
    fn async_never_slower_than_sync(ops in arbitrary_ops(1 << 20), depth in 1usize..256) {
        let m = CostModel::lustre_pfs();
        prop_assert!(m.async_batch_time(&ops, depth) <= m.sync_batch_time(&ops));
    }

    /// Deeper queues never increase async cost.
    #[test]
    fn deeper_queues_monotone(ops in arbitrary_ops(1 << 20), d1 in 1usize..64, d2 in 1usize..64) {
        let m = CostModel::lustre_pfs();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.async_batch_time(&ops, hi) <= m.async_batch_time(&ops, lo));
    }

    /// Splitting one contiguous read into more requests never gets
    /// cheaper (the per-request RPC term).
    #[test]
    fn more_requests_never_cheaper(bytes in 1u64 << 16..1 << 26, n1 in 1usize..64, n2 in 1usize..64) {
        let m = CostModel::lustre_pfs();
        let (few, many) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(m.contiguous_read_time(bytes, few) <= m.contiguous_read_time(bytes, many) + Duration::from_nanos(1));
    }

    /// Seek counting: concatenating two batches never counts fewer
    /// seeks than the second batch alone would add beyond one join.
    #[test]
    fn seek_count_is_sane(ops in arbitrary_ops(1 << 18)) {
        let seeks = CostModel::count_seeks(&ops);
        prop_assert!(seeks >= 1);
        prop_assert!(seeks <= ops.len());
    }

    /// The ring returns exactly the bytes the storage holds, for any
    /// op layout, thread count, and queue depth.
    #[test]
    fn uring_round_trips_arbitrary_patterns(
        ops in arbitrary_ops(1 << 16),
        threads in 1usize..6,
        depth in 1usize..64,
    ) {
        let data: Vec<u8> = (0..1 << 16).map(|i| (i % 251) as u8).collect();
        let mut ring = UringSim::new(MemStorage::free(data.clone()), threads, depth);
        let bufs = ring.read_scattered(&ops).unwrap();
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            prop_assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }

    /// The mmap view agrees with direct storage reads for any pattern
    /// and readahead setting, with or without eviction in between.
    #[test]
    fn mmap_round_trips_arbitrary_patterns(
        ops in arbitrary_ops(1 << 16),
        readahead in 1usize..64,
        evict_at in any::<proptest::sample::Index>(),
    ) {
        let data: Vec<u8> = (0..1 << 16).map(|i| (i % 249) as u8).collect();
        let map = MmapSim::with_arc(
            Arc::new(MemStorage::free(data.clone())),
            4096,
        )
        .with_readahead(readahead);
        let evict_idx = evict_at.index(ops.len());
        for (i, &(off, len)) in ops.iter().enumerate() {
            if i == evict_idx {
                map.evict_all();
            }
            let buf = map.read(off, len).unwrap();
            prop_assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }

    /// Charged storage: total elapsed only ever grows, however reads
    /// interleave.
    #[test]
    fn virtual_time_is_monotone(ops in arbitrary_ops(1 << 16), sync_mask in any::<u64>()) {
        use reprocmp_io::storage::AccessMode;
        let s = MemStorage::with_model(vec![0u8; 1 << 16], CostModel::lustre_pfs());
        let mut last = Duration::ZERO;
        for (i, op) in ops.iter().enumerate() {
            let mode = if sync_mask >> (i % 64) & 1 == 1 {
                AccessMode::Sync
            } else {
                AccessMode::Async { depth: 16 }
            };
            s.charge_batch(std::slice::from_ref(op), mode);
            let now = s.elapsed();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
