//! Property tests of the I/O substrate: cost-model monotonicity,
//! data-integrity of the engines under arbitrary access patterns, and
//! retry-policy deadline edges.

use proptest::prelude::*;
use reprocmp_io::cost::{CostModel, OpSpec};
use reprocmp_io::{
    IoError, IoResult, MemStorage, MmapSim, RetryPolicy, SimClock, Storage, UringSim,
};
use std::sync::Arc;
use std::time::Duration;

fn transient() -> IoError {
    IoError::Os(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        "hiccup",
    ))
}

fn arbitrary_ops(file_len: usize) -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec((0usize..file_len.saturating_sub(1), 1usize..4096), 1..40).prop_map(
        move |raw| {
            raw.into_iter()
                .map(|(off, len)| {
                    let len = len.min(file_len - off);
                    (off as u64, len.max(1))
                })
                .collect()
        },
    )
}

proptest! {
    /// Async batches never cost more than synchronous ones.
    #[test]
    fn async_never_slower_than_sync(ops in arbitrary_ops(1 << 20), depth in 1usize..256) {
        let m = CostModel::lustre_pfs();
        prop_assert!(m.async_batch_time(&ops, depth) <= m.sync_batch_time(&ops));
    }

    /// Deeper queues never increase async cost.
    #[test]
    fn deeper_queues_monotone(ops in arbitrary_ops(1 << 20), d1 in 1usize..64, d2 in 1usize..64) {
        let m = CostModel::lustre_pfs();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.async_batch_time(&ops, hi) <= m.async_batch_time(&ops, lo));
    }

    /// Splitting one contiguous read into more requests never gets
    /// cheaper (the per-request RPC term).
    #[test]
    fn more_requests_never_cheaper(bytes in 1u64 << 16..1 << 26, n1 in 1usize..64, n2 in 1usize..64) {
        let m = CostModel::lustre_pfs();
        let (few, many) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(m.contiguous_read_time(bytes, few) <= m.contiguous_read_time(bytes, many) + Duration::from_nanos(1));
    }

    /// Seek counting: concatenating two batches never counts fewer
    /// seeks than the second batch alone would add beyond one join.
    #[test]
    fn seek_count_is_sane(ops in arbitrary_ops(1 << 18)) {
        let seeks = CostModel::count_seeks(&ops);
        prop_assert!(seeks >= 1);
        prop_assert!(seeks <= ops.len());
    }

    /// The ring returns exactly the bytes the storage holds, for any
    /// op layout, thread count, and queue depth.
    #[test]
    fn uring_round_trips_arbitrary_patterns(
        ops in arbitrary_ops(1 << 16),
        threads in 1usize..6,
        depth in 1usize..64,
    ) {
        let data: Vec<u8> = (0..1 << 16).map(|i| (i % 251) as u8).collect();
        let mut ring = UringSim::new(MemStorage::free(data.clone()), threads, depth);
        let bufs = ring.read_scattered(&ops).unwrap();
        for (buf, &(off, len)) in bufs.iter().zip(&ops) {
            prop_assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }

    /// The mmap view agrees with direct storage reads for any pattern
    /// and readahead setting, with or without eviction in between.
    #[test]
    fn mmap_round_trips_arbitrary_patterns(
        ops in arbitrary_ops(1 << 16),
        readahead in 1usize..64,
        evict_at in any::<proptest::sample::Index>(),
    ) {
        let data: Vec<u8> = (0..1 << 16).map(|i| (i % 249) as u8).collect();
        let map = MmapSim::with_arc(
            Arc::new(MemStorage::free(data.clone())),
            4096,
        )
        .with_readahead(readahead);
        let evict_idx = evict_at.index(ops.len());
        for (i, &(off, len)) in ops.iter().enumerate() {
            if i == evict_idx {
                map.evict_all();
            }
            let buf = map.read(off, len).unwrap();
            prop_assert_eq!(&buf[..], &data[off as usize..off as usize + len]);
        }
    }

    /// Charged storage: total elapsed only ever grows, however reads
    /// interleave.
    #[test]
    fn virtual_time_is_monotone(ops in arbitrary_ops(1 << 16), sync_mask in any::<u64>()) {
        use reprocmp_io::storage::AccessMode;
        let s = MemStorage::with_model(vec![0u8; 1 << 16], CostModel::lustre_pfs());
        let mut last = Duration::ZERO;
        for (i, op) in ops.iter().enumerate() {
            let mode = if sync_mask >> (i % 64) & 1 == 1 {
                AccessMode::Sync
            } else {
                AccessMode::Async { depth: 16 }
            };
            s.charge_batch(std::slice::from_ref(op), mode);
            let now = s.elapsed();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// An always-failing op under an arbitrary deadline never panics,
    /// never reports spurious success, never charges backoff past the
    /// deadline, and stops early only when the *next* wait would cross
    /// it.
    #[test]
    fn retry_deadline_edges_are_exact(
        attempts in 1u32..8,
        base_us in 0u64..2_000,
        max_us in 1u64..5_000,
        seed in any::<u64>(),
        deadline_us in 0u64..10_000,
    ) {
        let clock = SimClock::new();
        let deadline = Duration::from_micros(deadline_us);
        let p = RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(max_us),
            jitter_seed: seed,
            deadline: Some(deadline),
        };
        let mut calls = 0u32;
        let (result, retries): (IoResult<()>, u32) = p.run(Some(&clock), || {
            calls += 1;
            Err(transient())
        });
        prop_assert!(result.is_err(), "an op that never succeeds must give up");
        prop_assert_eq!(calls, retries + 1);
        prop_assert!(retries < attempts, "attempt budget overrun");
        prop_assert!(
            clock.now() <= deadline,
            "charged {:?} of backoff past the {:?} deadline",
            clock.now(),
            deadline
        );
        if retries < attempts - 1 {
            // The budget had room, so the deadline was the binding
            // constraint: the refused wait would have crossed it.
            prop_assert!(clock.now() + p.backoff(retries + 1) > deadline);
        }
    }

    /// A deadline expiring *exactly* on a retry boundary: the wait
    /// that lands precisely on the deadline is still permitted; the
    /// one after it is refused and the operation gives up (with the
    /// matching `gave_up` flight-recorder event) — never a panic,
    /// never a spurious success.
    #[test]
    fn deadline_exactly_on_the_boundary_allows_that_retry_only(
        base_us in 1u64..1_000,
        seed in any::<u64>(),
    ) {
        use reprocmp_obs::{EventKind, Journal, ObsClock};
        let clock = SimClock::new();
        let mut p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_secs(1),
            jitter_seed: seed,
            deadline: None,
        };
        let first_wait = p.backoff(1);
        prop_assert!(!first_wait.is_zero());
        p.deadline = Some(first_wait);
        let journal = Journal::new(ObsClock::frozen());
        let mut calls = 0u32;
        let (result, retries): (IoResult<()>, u32) =
            p.run_journaled(Some(&clock), &journal, "io", || {
                calls += 1;
                Err(transient())
            });
        prop_assert!(result.is_err());
        // The boundary retry is permitted, the next is not, and
        // exactly the deadline was consumed.
        prop_assert_eq!(retries, 1);
        prop_assert_eq!(calls, 2);
        prop_assert_eq!(clock.now(), first_wait);
        let gave_up = matches!(
            journal.events().last().map(|e| e.kind.clone()),
            Some(EventKind::GaveUp { attempts: 2 })
        );
        prop_assert!(gave_up, "budget exhaustion must emit a gave_up event");
    }

    /// A generous deadline never masks a success that fits inside the
    /// attempt budget.
    #[test]
    fn deadline_never_masks_an_in_budget_success(
        succeed_on in 1u32..6,
        seed in any::<u64>(),
    ) {
        let clock = SimClock::new();
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter_seed: seed,
            deadline: Some(Duration::from_secs(1)),
        };
        let mut calls = 0u32;
        let (result, retries) = p.run(Some(&clock), || {
            calls += 1;
            if calls < succeed_on {
                Err(transient())
            } else {
                Ok(calls)
            }
        });
        prop_assert_eq!(result.unwrap(), succeed_on);
        prop_assert_eq!(retries, succeed_on - 1);
    }

    /// Zero-attempt budgets are a config-time error, not a run-time
    /// clamp: `try_with_attempts` rejects exactly `0`.
    #[test]
    fn zero_attempt_budgets_rejected_at_config_time(n in 0u32..16) {
        match RetryPolicy::try_with_attempts(n) {
            Ok(p) => {
                prop_assert!(n >= 1);
                prop_assert_eq!(p.max_attempts, n);
            }
            Err(msg) => {
                prop_assert_eq!(n, 0);
                prop_assert!(msg.contains("at least 1"));
            }
        }
    }
}
