//! A multi-process cluster simulator (the MPI-on-Polaris substitute).
//!
//! The paper's evaluation runs "four processes per node" over up to 128
//! nodes, each process comparing checkpoint pairs against a shared
//! parallel file system. This crate reproduces that execution shape on
//! one machine:
//!
//! * [`Cluster::run`] launches one thread per rank, arranged
//!   `nodes × procs_per_node`, and gathers per-rank results in rank
//!   order.
//! * [`RankCtx`] gives each rank its identity, barriers, point-to-point
//!   byte messaging, and collectives.
//! * [`RankCtx::allreduce_sum_f32`] reduces in a configurable
//!   [`ReduceOrder`] — rank order (deterministic) or a seeded shuffle
//!   (modelling nondeterministic reduction trees, a classic source of
//!   run-to-run divergence in MPI codes).
//! * Each *node* owns a shared [`SimClock`], so storage traffic from
//!   co-located ranks contends on the same virtual device while
//!   different nodes proceed independently — what makes the strong
//!   scaling study (Figure 10) meaningful.
//!
//! # Example
//!
//! ```
//! use reprocmp_cluster::{Cluster, ReduceOrder};
//!
//! let cluster = Cluster::new(2, 4); // 2 nodes × 4 ranks
//! let sums = cluster.run(|ctx| {
//!     let mine = ctx.rank() as f32 + 1.0;
//!     ctx.allreduce_sum_f32(mine, ReduceOrder::Ranked)
//! });
//! assert!(sums.iter().all(|&s| s == 36.0)); // 1+2+…+8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use reprocmp_io::SimClock;
use std::sync::{Arc, Barrier};

/// The order collective reductions fold contributions in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOrder {
    /// Ascending rank order — bitwise reproducible.
    Ranked,
    /// Seeded pseudo-random order — models a nondeterministic
    /// reduction tree; two runs with different seeds may differ in the
    /// low bits of f32 results.
    Shuffled {
        /// Reduction-order seed for this run.
        seed: u64,
    },
}

impl ReduceOrder {
    fn order(&self, n: usize, salt: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        if let ReduceOrder::Shuffled { seed } = self {
            // A tiny splitmix-based Fisher–Yates; no rand dependency.
            let mut s = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut next = move || {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for i in (1..n).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                idx.swap(i, j);
            }
        }
        idx
    }
}

/// Per-rank point-to-point channel endpoints.
type Mailbox = (Sender<Vec<u8>>, Receiver<Vec<u8>>);

#[derive(Debug)]
struct Shared {
    barrier: Barrier,
    f64_slots: Mutex<Vec<f64>>,
    f64_result: Mutex<f64>,
    bytes_slot: Mutex<Vec<u8>>,
    node_clocks: Vec<SimClock>,
    mailboxes: Vec<Mailbox>,
}

/// A simulated cluster: `nodes × procs_per_node` ranks.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    nodes: usize,
    procs_per_node: usize,
}

impl Cluster {
    /// A cluster of `nodes` nodes with `procs_per_node` ranks each.
    ///
    /// # Panics
    ///
    /// If either dimension is zero.
    #[must_use]
    pub fn new(nodes: usize, procs_per_node: usize) -> Self {
        assert!(nodes > 0 && procs_per_node > 0, "empty cluster");
        Cluster {
            nodes,
            procs_per_node,
        }
    }

    /// Total rank count.
    #[must_use]
    pub fn size(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ranks per node.
    #[must_use]
    pub fn procs_per_node(&self) -> usize {
        self.procs_per_node
    }

    /// Runs `f` once per rank on its own thread; returns per-rank
    /// results in rank order.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankCtx) -> T + Sync,
    {
        let size = self.size();
        let shared = Arc::new(Shared {
            barrier: Barrier::new(size),
            f64_slots: Mutex::new(vec![0.0; size]),
            f64_result: Mutex::new(0.0),
            bytes_slot: Mutex::new(Vec::new()),
            node_clocks: (0..self.nodes).map(|_| SimClock::new()).collect(),
            mailboxes: (0..size).map(|_| unbounded()).collect(),
        });

        let ppn = self.procs_per_node;
        let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (rank, slot) in out.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                scope.spawn(move || {
                    let ctx = RankCtx {
                        rank,
                        size,
                        node: rank / ppn,
                        local_rank: rank % ppn,
                        collective_count: std::cell::Cell::new(0),
                        shared,
                    };
                    *slot = Some(f(ctx));
                });
            }
        });
        out.into_iter()
            .map(|v| v.expect("every rank completed"))
            .collect()
    }
}

/// One rank's handle to the cluster.
#[derive(Debug)]
pub struct RankCtx {
    rank: usize,
    size: usize,
    node: usize,
    local_rank: usize,
    collective_count: std::cell::Cell<u64>,
    shared: Arc<Shared>,
}

impl RankCtx {
    /// This rank's global id, `0..size`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The node this rank lives on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// This rank's index within its node.
    #[must_use]
    pub fn local_rank(&self) -> usize {
        self.local_rank
    }

    /// The virtual storage clock shared by all ranks on this node.
    #[must_use]
    pub fn node_clock(&self) -> SimClock {
        self.shared.node_clocks[self.node].clone()
    }

    /// Blocks until every rank has arrived.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    fn next_salt(&self) -> u64 {
        // Collectives execute in lockstep across ranks, so each rank's
        // private call count is the same global collective index —
        // deterministic, with no shared state to race on.
        let salt = self.collective_count.get() + 1;
        self.collective_count.set(salt);
        salt
    }

    /// All-reduce sum of one `f32` per rank, folding in `order` order;
    /// every rank receives the same result.
    #[must_use]
    pub fn allreduce_sum_f32(&self, value: f32, order: ReduceOrder) -> f32 {
        let salt = self.next_salt();
        self.shared.f64_slots.lock()[self.rank] = f64::from(value);
        self.barrier();
        if self.rank == 0 {
            let slots = self.shared.f64_slots.lock();
            let mut acc = 0.0f32;
            for i in order.order(self.size, salt) {
                acc += slots[i] as f32;
            }
            *self.shared.f64_result.lock() = f64::from(acc);
        }
        self.barrier();
        let result = *self.shared.f64_result.lock() as f32;
        self.barrier();
        result
    }

    /// All-reduce sum in `f64` (rank order; used for diagnostics where
    /// determinism is wanted regardless of policy).
    #[must_use]
    pub fn allreduce_sum_f64(&self, value: f64) -> f64 {
        let _ = self.next_salt();
        self.shared.f64_slots.lock()[self.rank] = value;
        self.barrier();
        if self.rank == 0 {
            let slots = self.shared.f64_slots.lock();
            *self.shared.f64_result.lock() = slots.iter().sum();
        }
        self.barrier();
        let result = *self.shared.f64_result.lock();
        self.barrier();
        result
    }

    /// All-reduce max in `f64`.
    #[must_use]
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        let _ = self.next_salt();
        self.shared.f64_slots.lock()[self.rank] = value;
        self.barrier();
        if self.rank == 0 {
            let slots = self.shared.f64_slots.lock();
            *self.shared.f64_result.lock() = slots.iter().copied().fold(f64::MIN, f64::max);
        }
        self.barrier();
        let result = *self.shared.f64_result.lock();
        self.barrier();
        result
    }

    /// Exclusive prefix sum: rank `r` receives the sum of ranks
    /// `0..r`'s values (rank 0 receives 0).
    #[must_use]
    pub fn exscan_sum_f64(&self, value: f64) -> f64 {
        let all = self.allgather_f64(value);
        all[..self.rank].iter().sum()
    }

    /// Gathers one `f64` per rank; every rank receives the full vector
    /// in rank order (an allgather).
    #[must_use]
    pub fn allgather_f64(&self, value: f64) -> Vec<f64> {
        let _ = self.next_salt();
        self.shared.f64_slots.lock()[self.rank] = value;
        self.barrier();
        let all = self.shared.f64_slots.lock().clone();
        self.barrier();
        all
    }

    /// Broadcasts `bytes` from rank 0 to everyone.
    #[must_use]
    pub fn broadcast_bytes(&self, bytes: &[u8]) -> Vec<u8> {
        let _ = self.next_salt();
        if self.rank == 0 {
            *self.shared.bytes_slot.lock() = bytes.to_vec();
        }
        self.barrier();
        let out = self.shared.bytes_slot.lock().clone();
        self.barrier();
        out
    }

    /// Gathers one byte buffer per rank at rank 0. The root receives
    /// the buffers in rank order (`Some(vec)` with `vec[r]` from rank
    /// `r`); every other rank receives `None`.
    ///
    /// Frames are rank-tagged on the wire, so the result is
    /// deterministic no matter what order the mailbox delivers them in
    /// — the collective that lets rank 0 batch-compare checkpoint
    /// payloads produced by the whole cluster.
    #[must_use]
    pub fn gather_bytes_to_root(&self, bytes: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let _ = self.next_salt();
        let result = if self.rank == 0 {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size];
            out[0] = bytes;
            for _ in 1..self.size {
                let mut frame = self.recv();
                assert!(frame.len() >= 8, "gather frame too short");
                let payload = frame.split_off(8);
                let sender =
                    u64::from_le_bytes(frame[..8].try_into().expect("8-byte rank tag")) as usize;
                assert!(sender > 0 && sender < self.size, "bad gather sender tag");
                out[sender] = payload;
            }
            Some(out)
        } else {
            let mut frame = (self.rank as u64).to_le_bytes().to_vec();
            frame.extend_from_slice(&bytes);
            self.send(0, frame);
            None
        };
        self.barrier();
        result
    }

    /// Sends a byte message to `to` (buffered, non-blocking).
    ///
    /// # Panics
    ///
    /// If `to` is out of range.
    pub fn send(&self, to: usize, bytes: Vec<u8>) {
        self.shared.mailboxes[to]
            .0
            .send(bytes)
            .expect("receiver rank alive for the duration of run()");
    }

    /// Receives the next byte message addressed to this rank,
    /// blocking until one arrives.
    #[must_use]
    pub fn recv(&self) -> Vec<u8> {
        self.shared.mailboxes[self.rank]
            .1
            .recv()
            .expect("senders alive for the duration of run()")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_is_exposed_correctly() {
        let cluster = Cluster::new(3, 4);
        assert_eq!(cluster.size(), 12);
        let ids = cluster.run(|ctx| (ctx.rank(), ctx.node(), ctx.local_rank()));
        for (rank, &(r, n, l)) in ids.iter().enumerate() {
            assert_eq!(r, rank);
            assert_eq!(n, rank / 4);
            assert_eq!(l, rank % 4);
        }
    }

    #[test]
    fn allreduce_sum_is_correct_and_uniform() {
        let cluster = Cluster::new(2, 3);
        let results =
            cluster.run(|ctx| ctx.allreduce_sum_f32(ctx.rank() as f32, ReduceOrder::Ranked));
        assert!(results.iter().all(|&v| v == 15.0)); // 0+1+..+5
    }

    #[test]
    fn repeated_collectives_do_not_interfere() {
        let cluster = Cluster::new(2, 2);
        let results = cluster.run(|ctx| {
            let a = ctx.allreduce_sum_f32(1.0, ReduceOrder::Ranked);
            let b = ctx.allreduce_sum_f32(2.0, ReduceOrder::Ranked);
            let c = ctx.allreduce_max_f64(ctx.rank() as f64);
            (a, b, c)
        });
        for &(a, b, c) in &results {
            assert_eq!(a, 4.0);
            assert_eq!(b, 8.0);
            assert_eq!(c, 3.0);
        }
    }

    #[test]
    fn shuffled_reduction_changes_f32_bits_sometimes() {
        // Values with mixed magnitudes so ordering matters.
        let contribution = |rank: usize| ((rank * 2654435761) % 1000) as f32 * 1e-3 + 1.0;
        let run = |order: ReduceOrder| {
            let cluster = Cluster::new(8, 4);
            cluster.run(move |ctx| ctx.allreduce_sum_f32(contribution(ctx.rank()), order))[0]
        };
        let ranked = run(ReduceOrder::Ranked);
        let mut any_diff = false;
        for seed in 0..20 {
            let shuffled = run(ReduceOrder::Shuffled { seed });
            assert!((f64::from(ranked) - f64::from(shuffled)).abs() < 1e-3);
            if shuffled.to_bits() != ranked.to_bits() {
                any_diff = true;
            }
        }
        assert!(any_diff, "32-way f32 reduction order never mattered");
    }

    #[test]
    fn same_shuffle_seed_is_reproducible() {
        let contribution = |rank: usize| (rank as f32).sin();
        let run = || {
            let cluster = Cluster::new(4, 4);
            cluster.run(move |ctx| {
                ctx.allreduce_sum_f32(contribution(ctx.rank()), ReduceOrder::Shuffled { seed: 5 })
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn allgather_returns_rank_order() {
        let cluster = Cluster::new(2, 2);
        let results = cluster.run(|ctx| ctx.allgather_f64(ctx.rank() as f64 * 10.0));
        for r in &results {
            assert_eq!(r, &vec![0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let cluster = Cluster::new(2, 2);
        let results = cluster.run(|ctx| {
            let payload = if ctx.rank() == 0 {
                vec![7, 8, 9]
            } else {
                vec![]
            };
            ctx.broadcast_bytes(&payload)
        });
        assert!(results.iter().all(|r| r == &vec![7, 8, 9]));
    }

    #[test]
    fn point_to_point_ring() {
        let cluster = Cluster::new(1, 4);
        let results = cluster.run(|ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            ctx.send(next, vec![ctx.rank() as u8]);
            ctx.recv()
        });
        // Rank r receives from r-1.
        assert_eq!(results, vec![vec![3], vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn gather_to_root_is_rank_ordered() {
        let cluster = Cluster::new(2, 3);
        let results = cluster.run(|ctx| {
            // Variable-length, rank-specific payloads sent in a rank-
            // dependent order (higher ranks send before lower ones
            // reach the collective often enough to matter).
            let payload = vec![ctx.rank() as u8; ctx.rank() + 1];
            ctx.gather_bytes_to_root(payload)
        });
        let gathered = results[0].as_ref().expect("root holds the gather");
        for (rank, buf) in gathered.iter().enumerate() {
            assert_eq!(buf, &vec![rank as u8; rank + 1]);
        }
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn gather_composes_with_other_collectives() {
        let cluster = Cluster::new(1, 4);
        let results = cluster.run(|ctx| {
            let total = ctx.allreduce_sum_f64(1.0);
            let g = ctx.gather_bytes_to_root(vec![ctx.rank() as u8]);
            let after = ctx.allreduce_sum_f64(2.0);
            (total, g, after)
        });
        assert_eq!(results[0].0, 4.0);
        assert_eq!(results[0].2, 8.0);
        let g = results[0].1.as_ref().unwrap();
        assert_eq!(g, &vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn node_clocks_shared_within_node_distinct_across() {
        let cluster = Cluster::new(2, 2);
        let results = cluster.run(|ctx| {
            // Local rank 0 advances its node clock; after the barrier,
            // everyone reports what they see.
            if ctx.local_rank() == 0 {
                ctx.node_clock()
                    .advance(std::time::Duration::from_millis(ctx.node() as u64 + 1));
            }
            ctx.barrier();
            ctx.node_clock().now().as_millis() as u64
        });
        assert_eq!(results, vec![1, 1, 2, 2]);
    }

    #[test]
    fn large_cluster_runs_to_completion() {
        let cluster = Cluster::new(32, 4); // 128 ranks — the paper's max
        let results = cluster.run(|ctx| ctx.allreduce_sum_f64(1.0));
        assert!(results.iter().all(|&v| (v - 128.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn zero_nodes_rejected() {
        let _ = Cluster::new(0, 4);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn exscan_is_exclusive_prefix() {
        let cluster = Cluster::new(2, 3);
        let results = cluster.run(|ctx| ctx.exscan_sum_f64((ctx.rank() + 1) as f64));
        // values 1..=6; exscan: 0,1,3,6,10,15
        assert_eq!(results, vec![0.0, 1.0, 3.0, 6.0, 10.0, 15.0]);
    }

    #[test]
    fn mixed_collectives_in_lockstep() {
        let cluster = Cluster::new(2, 2);
        let results = cluster.run(|ctx| {
            let prefix = ctx.exscan_sum_f64(1.0);
            let total = ctx.allreduce_sum_f64(1.0);
            let gathered = ctx.allgather_f64(prefix);
            (prefix, total, gathered)
        });
        for (rank, (prefix, total, gathered)) in results.iter().enumerate() {
            assert_eq!(*prefix, rank as f64);
            assert_eq!(*total, 4.0);
            assert_eq!(gathered, &vec![0.0, 1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn many_messages_between_ranks_fifo_per_sender() {
        let cluster = Cluster::new(1, 2);
        let results = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                for k in 0..50u8 {
                    ctx.send(1, vec![k]);
                }
                Vec::new()
            } else {
                (0..50).map(|_| ctx.recv()[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(results[1], (0..50).collect::<Vec<u8>>());
    }
}
