//! Shared harness for the per-figure/table benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §4 for the index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results). This
//! library holds what they share: the divergent-checkpoint-pair
//! workload generator, modeled-experiment plumbing, and table/JSON
//! output helpers.
//!
//! # The divergence model
//!
//! Two runs of a chaotic simulation do not differ IID-uniformly: most
//! values are *bitwise identical* (the runs execute the same
//! arithmetic on them), and where they do differ the divergence is
//! spatially clustered (particles in the same dense region diverge
//! together) with magnitudes spanning many decades (recently-diverged
//! regions differ by 1e-8, long-diverged ones by 1e-3). The
//! [`DivergenceSpec::Clustered`] generator reproduces exactly that
//! structure: a persistent Markov chain walks over 4 KiB segments
//! assigning each a *tier* (a magnitude decade, or quiet), and a few
//! values inside each active segment are perturbed within the tier's
//! decade. The result has the two properties every figure depends on:
//! the flagged-data fraction falls as the error bound grows, and
//! flagged chunks coalesce into contiguous runs (the I/O pattern the
//! paper's scattered-read optimizations target).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp_core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp_io::{CostModel, SimClock, Timeline};
use reprocmp_obs::StageBreakdown;
use serde::Serialize;
use std::time::Duration;

/// The paper's error-bound sweep (Table 2).
pub const ERROR_BOUNDS: [f64; 5] = [1e-3, 1e-4, 1e-5, 1e-6, 1e-7];

/// The paper's chunk-size sweep, 4 KiB – 512 KiB (Table 2).
pub const CHUNK_SIZES: [usize; 8] = [
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
];

/// Magnitude tiers of the clustered model: tier `t` perturbs within
/// `(10^-(3+t), 10^-(2+t)]`, so tier 0 exceeds every bound in
/// [`ERROR_BOUNDS`] and tier 5 is *sub-bound* noise even at 1e-7
/// (pure false-positive fodder).
pub const TIERS: usize = 6;

/// How run 2's values diverge from run 1's.
#[derive(Debug, Clone, Copy)]
pub enum DivergenceSpec {
    /// Bitwise identical runs (the reproducible best case).
    None,
    /// Every value perturbed above most bounds (worst case).
    Heavy,
    /// IID sparse perturbations, log-uniform magnitudes — a simple
    /// stress model for correctness tests.
    Sparse {
        /// Fraction of values perturbed.
        perturbed_fraction: f64,
        /// Smallest magnitude (log-uniform lower end).
        min_magnitude: f64,
        /// Largest magnitude (log-uniform upper end).
        max_magnitude: f64,
    },
    /// The HACC-like model described in the crate docs.
    Clustered {
        /// Marginal probability of each tier (quiet fills the rest).
        tier_probs: [f64; TIERS],
        /// Probability a segment keeps the previous segment's state
        /// (controls cluster length; 0 = IID segments).
        persistence: f64,
        /// Values per segment (4 KiB = 1024 f32 by default).
        segment_values: usize,
        /// Per-value perturbation probability inside an active
        /// segment (sparse keeps hash false positives realistic).
        per_value_prob: f64,
    },
}

impl DivergenceSpec {
    /// The default divergence used by the figure harnesses (see the
    /// crate docs for the reasoning behind each number).
    #[must_use]
    pub fn hacc_like() -> Self {
        DivergenceSpec::Clustered {
            // tiers:  >1e-3  >1e-4  >1e-5  >1e-6  >1e-7  sub-bound
            tier_probs: [0.04, 0.05, 0.07, 0.09, 0.24, 0.06],
            persistence: 63.0 / 64.0,
            segment_values: 1024,
            per_value_prob: 1.0 / 256.0,
        }
    }

    /// A later-iteration pair: the runs have drifted further, so far
    /// more data exceeds tight bounds (the regime of the paper's
    /// Figure 7, where 60–90% of the checkpoint is flagged at 1e-7).
    #[must_use]
    pub fn hacc_like_late() -> Self {
        DivergenceSpec::Clustered {
            // tiers:  >1e-3  >1e-4  >1e-5  >1e-6  >1e-7  sub-bound
            tier_probs: [0.06, 0.08, 0.10, 0.14, 0.40, 0.10],
            persistence: 0.9,
            segment_values: 1024,
            per_value_prob: 1.0 / 256.0,
        }
    }

    /// No divergence at all.
    #[must_use]
    pub fn none() -> Self {
        DivergenceSpec::None
    }

    /// Heavy divergence: every value perturbed above most bounds.
    #[must_use]
    pub fn heavy() -> Self {
        DivergenceSpec::Heavy
    }
}

/// A generated checkpoint pair.
#[derive(Debug, Clone)]
pub struct DivergentPair {
    /// Run 1's payload.
    pub run1: Vec<f32>,
    /// Run 2's payload.
    pub run2: Vec<f32>,
}

impl DivergentPair {
    /// Generates `n_values` HACC-flavoured values and a diverging
    /// partner, deterministically from `seed`.
    #[must_use]
    pub fn generate(n_values: usize, spec: DivergenceSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run1 = Vec::with_capacity(n_values);
        for i in 0..n_values {
            // Positions/velocities/potentials are O(1) quantities.
            let base = ((i as f32) * 1.618e-3).sin() * 2.0 + rng.gen_range(-0.5..0.5f32);
            run1.push(base);
        }
        let mut run2 = run1.clone();

        match spec {
            DivergenceSpec::None => {}
            DivergenceSpec::Heavy => {
                for v in run2.iter_mut() {
                    let mag = 10f64.powf(rng.gen_range(-6.0..-2.0));
                    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    *v += (mag * sign) as f32;
                }
            }
            DivergenceSpec::Sparse {
                perturbed_fraction,
                min_magnitude,
                max_magnitude,
            } => {
                let log_lo = min_magnitude.ln();
                let log_hi = max_magnitude.ln().max(log_lo + f64::EPSILON);
                for v in run2.iter_mut() {
                    if rng.gen_bool(perturbed_fraction) {
                        let mag = rng.gen_range(log_lo..log_hi).exp();
                        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        *v += (mag * sign) as f32;
                    }
                }
            }
            DivergenceSpec::Clustered {
                tier_probs,
                persistence,
                segment_values,
                per_value_prob,
            } => {
                let seg = segment_values.max(1);
                // state: None = quiet, Some(t) = active at tier t.
                let mut state: Option<usize> = None;
                let draw_state = |rng: &mut StdRng| -> Option<usize> {
                    let u: f64 = rng.gen();
                    let mut acc = 0.0;
                    for (t, &p) in tier_probs.iter().enumerate() {
                        acc += p;
                        if u < acc {
                            return Some(t);
                        }
                    }
                    None
                };
                let mut start = 0usize;
                while start < n_values {
                    if start == 0 || !rng.gen_bool(persistence) {
                        state = draw_state(&mut rng);
                    }
                    let end = (start + seg).min(n_values);
                    if let Some(tier) = state {
                        // Tier t: magnitudes in (10^-(3+t), 10^-(2+t)].
                        let hi = -(2.0 + tier as f64);
                        let lo = -(3.0 + tier as f64);
                        for v in run2[start..end].iter_mut() {
                            if rng.gen_bool(per_value_prob) {
                                let mag = 10f64.powf(rng.gen_range(lo..hi));
                                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                                *v += (mag * sign) as f32;
                            }
                        }
                    }
                    start = end;
                }
            }
        }
        DivergentPair { run1, run2 }
    }

    /// Payload size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.run1.len() * 4) as u64
    }

    /// Brute-force count of differences above `eps` (test oracle).
    #[must_use]
    pub fn diffs_above(&self, eps: f64) -> usize {
        self.run1
            .iter()
            .zip(&self.run2)
            .filter(|(a, b)| (f64::from(**a) - f64::from(**b)).abs() > eps)
            .count()
    }
}

/// Builds an engine with the harness defaults for one `(chunk, ε)`
/// grid point.
#[must_use]
pub fn engine_for(chunk_bytes: usize, error_bound: f64) -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes,
        error_bound,
        ..EngineConfig::default()
    })
}

/// Materializes a pair as simulated-PFS checkpoint sources sharing one
/// virtual clock, plus the timeline reading it.
///
/// # Panics
///
/// On engine/source construction failure (benchmark inputs are valid
/// by construction).
#[must_use]
pub fn modeled_sources(
    pair: &DivergentPair,
    engine: &CompareEngine,
    model: CostModel,
) -> (CheckpointSource, CheckpointSource, Timeline, SimClock) {
    let clock = SimClock::new();
    let a = CheckpointSource::in_memory_with_model(&pair.run1, engine, model, Some(clock.clone()))
        .expect("source 1");
    let b = CheckpointSource::in_memory_with_model(&pair.run2, engine, model, Some(clock.clone()))
        .expect("source 2");
    (a, b, Timeline::sim(clock.clone()), clock)
}

/// As [`modeled_sources`] but on Lustre-style striped storage: the
/// payloads and metadata live on files striped over `ost_count`
/// targets, all charging one clock.
///
/// # Panics
///
/// On construction failure (benchmark inputs are valid).
#[must_use]
pub fn striped_sources(
    pair: &DivergentPair,
    engine: &CompareEngine,
    model: CostModel,
    stripe_size: u64,
    ost_count: usize,
) -> (CheckpointSource, CheckpointSource, Timeline, SimClock) {
    use reprocmp_io::StripedStorage;
    use std::sync::Arc;

    let clock = SimClock::new();
    let make = |values: &[f32]| -> CheckpointSource {
        let mut payload = Vec::with_capacity(values.len() * 4);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let payload_len = payload.len() as u64;
        let (tree, capture) = engine.build_metadata_profiled(values);
        let meta = reprocmp_merkle::encode_tree(&tree);
        let data =
            StripedStorage::with_clock(payload, model, stripe_size, ost_count, clock.clone());
        let metadata =
            StripedStorage::with_clock(meta, model, stripe_size, ost_count, clock.clone());
        let mut src = CheckpointSource::new(Arc::new(data), 0, payload_len, Arc::new(metadata));
        src.capture = capture;
        src
    };
    let a = make(&pair.run1);
    let b = make(&pair.run2);
    (a, b, Timeline::sim(clock.clone()), clock)
}

/// Throughput in GB/s for `bytes` of *compared checkpoint data* (both
/// runs, the paper's Figure 5 metric) over `elapsed`.
#[must_use]
pub fn throughput_gbps(bytes_both_runs: u64, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    bytes_both_runs as f64 / elapsed.as_secs_f64() / 1e9
}

/// One labelled measurement for the JSON report.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Experiment id, e.g. `"fig5a"`.
    pub experiment: String,
    /// Free-form parameter map rendered as `key=value`.
    pub params: Vec<(String, String)>,
    /// Metric name, e.g. `"throughput_gbps"`.
    pub metric: String,
    /// The value.
    pub value: f64,
}

/// Accumulates measurements and writes them to
/// `bench_results/<name>.json` at the end.
#[derive(Debug, Default)]
pub struct Recorder {
    measurements: Vec<Measurement>,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Records one value.
    pub fn push(&mut self, experiment: &str, params: &[(&str, String)], metric: &str, value: f64) {
        self.measurements.push(Measurement {
            experiment: experiment.to_owned(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            metric: metric.to_owned(),
            value,
        });
    }

    /// Records a full [`StageBreakdown`] as one measurement per phase
    /// and dimension (`stage.<phase>.time_s` / `.bytes` / `.ops`,
    /// skipping zero-cost phases) plus `stage.total_time_s`, so every
    /// benchmark JSON carries the same machine-readable profile the
    /// CLI prints under `--profile`.
    pub fn push_breakdown(
        &mut self,
        experiment: &str,
        params: &[(&str, String)],
        stages: &StageBreakdown,
    ) {
        for (name, cost) in stages.phases() {
            if cost.is_zero() {
                continue;
            }
            self.push(
                experiment,
                params,
                &format!("stage.{name}.time_s"),
                cost.time.as_secs_f64(),
            );
            self.push(
                experiment,
                params,
                &format!("stage.{name}.bytes"),
                cost.bytes as f64,
            );
            self.push(
                experiment,
                params,
                &format!("stage.{name}.ops"),
                cost.ops as f64,
            );
        }
        self.push(
            experiment,
            params,
            "stage.total_time_s",
            stages.total_time().as_secs_f64(),
        );
    }

    /// Writes `bench_results/<name>.json`; best-effort (prints a
    /// warning instead of failing the run).
    pub fn save(&self, name: &str) {
        let dir = std::path::Path::new("bench_results");
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("warning: could not create bench_results/");
            return;
        }
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(&self.measurements) {
            Ok(json) => {
                if std::fs::write(&path, json).is_err() {
                    eprintln!("warning: could not write {}", path.display());
                } else {
                    println!(
                        "\n[recorded {} measurements to {}]",
                        self.measurements.len(),
                        path.display()
                    );
                }
            }
            Err(e) => eprintln!("warning: serialize failed: {e}"),
        }
    }
}

/// Formats a duration compactly for tables.
#[must_use]
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}us", d.as_secs_f64() * 1e6)
    }
}

/// Formats a chunk size as `4K`, `512K`.
#[must_use]
pub fn fmt_chunk(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else {
        format!("{}K", bytes >> 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = DivergentPair::generate(10_000, DivergenceSpec::hacc_like(), 7);
        let b = DivergentPair::generate(10_000, DivergenceSpec::hacc_like(), 7);
        assert_eq!(a.run1, b.run1);
        assert_eq!(a.run2, b.run2);
    }

    #[test]
    fn divergence_fraction_tracks_the_bound() {
        // The property every bound-sweep figure relies on: bigger
        // bounds flag fewer values.
        // Clusters are ~256 KiB, so use enough data for every tier to
        // appear (8 Mi values = 32 MiB ≈ 128 independent cluster draws).
        let pair = DivergentPair::generate(8 << 20, DivergenceSpec::hacc_like(), 3);
        let n3 = pair.diffs_above(1e-3);
        let n5 = pair.diffs_above(1e-5);
        let n7 = pair.diffs_above(1e-7);
        assert!(n3 < n5 && n5 < n7, "{n3} !< {n5} !< {n7}");
        assert!(n3 > 0);
    }

    #[test]
    fn most_values_are_bitwise_identical() {
        // The bimodality that keeps hash false positives low.
        let pair = DivergentPair::generate(1 << 20, DivergenceSpec::hacc_like(), 3);
        let changed = pair
            .run1
            .iter()
            .zip(&pair.run2)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        let frac = changed as f64 / pair.run1.len() as f64;
        assert!(frac < 0.02, "changed fraction {frac} too high");
        assert!(frac > 1e-4, "changed fraction {frac} suspiciously low");
    }

    #[test]
    fn divergence_is_spatially_clustered() {
        // Changed values should concentrate in a minority of 4 KiB
        // segments, not spread uniformly. With persistence 63/64 the
        // active fraction only has ~(segments/64) independent state
        // draws behind it, so use a payload large enough that its
        // variance stays well inside the asserted band.
        let pair = DivergentPair::generate(1 << 22, DivergenceSpec::hacc_like(), 9);
        let seg = 1024;
        let mut active_segments = 0usize;
        let total_segments = pair.run1.len() / seg;
        for s in 0..total_segments {
            let any =
                (s * seg..(s + 1) * seg).any(|i| pair.run1[i].to_bits() != pair.run2[i].to_bits());
            if any {
                active_segments += 1;
            }
        }
        let frac = active_segments as f64 / total_segments as f64;
        assert!(frac < 0.85, "almost every segment active ({frac})");
        assert!(frac > 0.2, "too few active segments ({frac})");
    }

    #[test]
    fn none_spec_is_identical() {
        let pair = DivergentPair::generate(50_000, DivergenceSpec::none(), 1);
        assert_eq!(pair.run1, pair.run2);
    }

    #[test]
    fn heavy_spec_perturbs_nearly_everything() {
        let pair = DivergentPair::generate(50_000, DivergenceSpec::heavy(), 1);
        let changed = pair
            .run1
            .iter()
            .zip(&pair.run2)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 49_000);
    }

    #[test]
    fn sparse_spec_respects_fraction() {
        let pair = DivergentPair::generate(
            100_000,
            DivergenceSpec::Sparse {
                perturbed_fraction: 0.01,
                min_magnitude: 1e-6,
                max_magnitude: 1e-3,
            },
            5,
        );
        let changed = pair
            .run1
            .iter()
            .zip(&pair.run2)
            .filter(|(a, b)| a != b)
            .count();
        assert!((500..2_000).contains(&changed), "changed = {changed}");
    }

    #[test]
    fn throughput_math() {
        assert!((throughput_gbps(2_000_000_000, Duration::from_secs(1)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_chunk(4096), "4K");
        assert_eq!(fmt_chunk(512 << 10), "512K");
        assert_eq!(fmt_chunk(1 << 20), "1M");
        assert!(fmt_dur(Duration::from_millis(1500)).ends_with('s'));
    }

    #[test]
    fn push_breakdown_records_each_nonzero_phase() {
        let pair = DivergentPair::generate(8_192, DivergenceSpec::hacc_like(), 2);
        let engine = engine_for(4096, 1e-5);
        let (_tree, stages) = engine.build_metadata_profiled(&pair.run1);
        let mut rec = Recorder::new();
        rec.push_breakdown("test", &[("chunk", "4K".into())], &stages);
        let metrics: Vec<&str> = rec.measurements.iter().map(|m| m.metric.as_str()).collect();
        for phase in ["quantize", "leaf_hash", "level_build"] {
            assert!(
                metrics.contains(&format!("stage.{phase}.time_s").as_str()),
                "missing {phase}: {metrics:?}"
            );
        }
        // Compare-side phases never ran, so they must be skipped.
        assert!(!metrics.iter().any(|m| m.contains("bfs")));
        assert!(metrics.contains(&"stage.total_time_s"));
        let total = rec
            .measurements
            .iter()
            .find(|m| m.metric == "stage.total_time_s")
            .expect("total row");
        assert!((total.value - stages.total_time().as_secs_f64()).abs() < 1e-12);
        assert_eq!(total.params[0], ("chunk".to_owned(), "4K".to_owned()));
    }

    #[test]
    fn striped_sources_carry_a_capture_profile() {
        let pair = DivergentPair::generate(4_096, DivergenceSpec::hacc_like(), 1);
        let engine = engine_for(4096, 1e-5);
        let (a, b, _timeline, _clock) =
            striped_sources(&pair, &engine, CostModel::lustre_pfs(), 1 << 20, 4);
        for src in [&a, &b] {
            assert!(!src.capture.quantize.is_zero(), "quantize phase missing");
            assert!(!src.capture.leaf_hash.is_zero(), "leaf-hash phase missing");
            assert_eq!(src.capture.quantize.bytes, pair.bytes());
        }
        assert_eq!(b.capture.bfs, StageBreakdown::default().bfs);
    }

    #[test]
    fn modeled_sources_share_a_clock() {
        let pair = DivergentPair::generate(4_096, DivergenceSpec::hacc_like(), 1);
        let engine = engine_for(4096, 1e-5);
        let (a, b, _timeline, clock) = modeled_sources(&pair, &engine, CostModel::lustre_pfs());
        use reprocmp_io::storage::AccessMode;
        a.data.charge_batch(&[(0, 1024)], AccessMode::Sync);
        b.data.charge_batch(&[(0, 1024)], AccessMode::Sync);
        assert!(clock.now() > Duration::ZERO);
    }
}
