//! Figure 8 — Merkle-tree construction cost on CPU vs GPU across
//! chunk sizes (paper: 500 M-particle checkpoint, ε = 1e-7, log-scale
//! y-axis, GPU about four orders of magnitude faster, chunk size
//! irrelevant because the hashed volume is constant).
//!
//! This repository has no GPU, so the figure is reproduced from the
//! roofline timing model: construction runs on host threads either
//! way, but each kernel is charged against the single-EPYC-core model
//! (`Device::sim_cpu_core`) or the A100 model (`Device::sim_gpu`).
//! Wall-clock times on the build host are reported alongside for
//! honesty; the CPU/GPU *ratio* comes from the models, which encode
//! published hardware numbers rather than this machine.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig8 --release
//! ```

use reprocmp_bench::{engine_for, fmt_chunk, fmt_dur, DivergenceSpec, DivergentPair, Recorder};
use reprocmp_core::EngineConfig;
use reprocmp_device::{Device, TimingModel, Workload};
use reprocmp_merkle::MerkleTree;
use std::time::Instant;

fn main() {
    let mut rec = Recorder::new();
    // 500 M-particle scale stand-in (8 MiB payload).
    let n_values = 2usize << 20;
    let pair = DivergentPair::generate(n_values, DivergenceSpec::none(), 0xf18);
    let engine = engine_for(4096, 1e-7);
    let _ = EngineConfig::default(); // (engine defaults documented in core)

    println!("=== Figure 8: tree construction time, CPU vs GPU (modeled), ε = 1e-7 ===");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>14} {:>14}",
        "chunk", "CPU(model)", "GPU(model)", "ratio", "wall-serial", "wall-parallel"
    );

    for chunk in [4 << 10, 8 << 10, 16 << 10, 32 << 10] {
        let hasher = reprocmp_hash::ChunkHasher::new(*engine.quantizer());

        let cpu = Device::sim_cpu_core();
        let t0 = Instant::now();
        let (tree_cpu, stages_cpu) =
            MerkleTree::build_from_f32_profiled(&pair.run1, chunk, &hasher, &cpu);
        let wall_serial = t0.elapsed();
        let cpu_model = cpu.modeled_time();

        let gpu = Device::sim_gpu();
        let t0 = Instant::now();
        let (tree_gpu, stages_gpu) =
            MerkleTree::build_from_f32_profiled(&pair.run1, chunk, &hasher, &gpu);
        let wall_parallel = t0.elapsed();
        let gpu_model = gpu.modeled_time();

        assert_eq!(tree_cpu.root(), tree_gpu.root(), "devices must agree");
        let ratio = cpu_model.as_secs_f64() / gpu_model.as_secs_f64();
        println!(
            "{:>8} {:>14} {:>14} {:>9.0}x {:>14} {:>14}",
            fmt_chunk(chunk),
            fmt_dur(cpu_model),
            fmt_dur(gpu_model),
            ratio,
            fmt_dur(wall_serial),
            fmt_dur(wall_parallel),
        );
        rec.push(
            "fig8",
            &[("chunk", fmt_chunk(chunk)), ("device", "cpu".into())],
            "modeled_secs",
            cpu_model.as_secs_f64(),
        );
        rec.push(
            "fig8",
            &[("chunk", fmt_chunk(chunk)), ("device", "gpu".into())],
            "modeled_secs",
            gpu_model.as_secs_f64(),
        );
        rec.push(
            "fig8",
            &[("chunk", fmt_chunk(chunk))],
            "cpu_gpu_ratio",
            ratio,
        );
        // Per-phase capture breakdown for both devices (quantize /
        // leaf-hash / level-build under the respective roofline model).
        rec.push_breakdown(
            "fig8",
            &[("chunk", fmt_chunk(chunk)), ("device", "cpu".into())],
            &stages_cpu,
        );
        rec.push_breakdown(
            "fig8",
            &[("chunk", fmt_chunk(chunk)), ("device", "gpu".into())],
            &stages_gpu,
        );
    }

    // Extrapolation to the paper's 7 GB checkpoint, straight from the
    // roofline models (no memory needed).
    let bytes = 7u64 << 30;
    let w = Workload::new(bytes, bytes * 10);
    let cpu7 = TimingModel::cpu_single_core().kernel_time(w);
    let gpu7 = TimingModel::gpu_a100().kernel_time(w);
    let ratio7 = cpu7.as_secs_f64() / gpu7.as_secs_f64();
    println!("\nExtrapolated to the paper's 7 GB checkpoint:");
    println!(
        "  CPU {} vs GPU {} — ratio {:.0}x (paper: ~4 orders of magnitude)",
        fmt_dur(cpu7),
        fmt_dur(gpu7),
        ratio7
    );
    println!("  chunk size does not change the hashed volume, so rows are flat — as in the paper.");
    rec.push("fig8", &[("scale", "7GB".into())], "cpu_gpu_ratio", ratio7);
    rec.save("fig8");
}
