//! Table 2 — the evaluation parameter grid, plus the metadata-size
//! worked example from §3.3.3 ("with 4 KB chunks and 16-byte digests,
//! the metadata size for a 7 GB checkpoint is ~55 MB").
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin table2 --release
//! ```

use reprocmp_bench::{
    engine_for, fmt_chunk, DivergenceSpec, DivergentPair, Recorder, CHUNK_SIZES, ERROR_BOUNDS,
};

fn main() {
    let mut rec = Recorder::new();
    println!("=== Table 2: setup used to evaluate performance and scalability ===\n");
    println!("{:<18} Values", "Description");
    println!(
        "{:<18} 1, 2, 4, 8, 16, 32   (simulated; 4 ranks per node)",
        "Number of nodes"
    );
    print!("{:<18} ", "Error bounds");
    for (i, eps) in ERROR_BOUNDS.iter().enumerate() {
        print!("{}{eps:e}", if i > 0 { ", " } else { "" });
    }
    println!();
    print!("{:<18} ", "Chunk sizes");
    for (i, c) in CHUNK_SIZES.iter().enumerate() {
        print!("{}{}", if i > 0 { ", " } else { "" }, fmt_chunk(*c));
    }
    println!("\n");

    // §3.3.3 worked example at paper scale, from the exact formula the
    // serializer implements: nodes = 2 * next_pow2(ceil(N/C)) - 1,
    // 16 bytes each.
    let n: u64 = 7 << 30;
    let c: u64 = 4 << 10;
    let leaves = n.div_ceil(c);
    let nodes = 2 * leaves.next_power_of_two() - 1;
    let metadata = nodes * 16;
    println!(
        "metadata for a 7 GB checkpoint at 4 KiB chunks: {} leaves -> {:.1} MB (paper: ~55 MB)",
        leaves,
        metadata as f64 / 1e6
    );
    rec.push(
        "table2",
        &[("scale", "7GB".into())],
        "metadata_mb",
        metadata as f64 / 1e6,
    );

    // And measured on a real (scaled) tree to confirm the formula,
    // with the capture-side stage profile alongside.
    let pair = DivergentPair::generate(2 << 20, DivergenceSpec::none(), 1);
    let engine = engine_for(4096, 1e-5);
    let (tree, stages) = engine.build_metadata_profiled(&pair.run1);
    let encoded = reprocmp_merkle::encode_tree(&tree);
    let ratio = encoded.len() as f64 / (pair.run1.len() * 4) as f64;
    println!(
        "measured: 8 MiB checkpoint at 4 KiB chunks -> {} B of metadata ({:.2}% of the data)",
        encoded.len(),
        100.0 * ratio
    );
    assert!(ratio < 0.02, "metadata must stay below 2% of data");
    rec.push(
        "table2",
        &[("scale", "8MiB".into())],
        "metadata_ratio",
        ratio,
    );
    rec.push_breakdown("table2", &[("scale", "8MiB".into())], &stages);
    rec.save("table2");
}
