//! Figure 6 — comparison-runtime breakdown: the five phase timers
//! (setup / read / deserialize / compare-tree / compare-direct) across
//! chunk sizes, at a low (1e-7) and a high (1e-3) error bound.
//!
//! Expected shape (paper §3.4.2):
//!
//! * tree deserialization and tree comparison are negligible;
//! * at ε = 1e-7 the verification phase (compare-direct, which
//!   includes the scattered data reads) dominates and *shrinks* as
//!   chunks grow (better I/O pattern), levelling off near 1 MiB;
//! * at ε = 1e-3 total runtime is much shorter and flat-ish, with
//!   verification *growing* with chunk size (unnecessary data read);
//! * metadata read time falls as chunks grow (fewer hashes).
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig6 --release
//! ```

use reprocmp_bench::{
    engine_for, fmt_chunk, fmt_dur, modeled_sources, DivergenceSpec, DivergentPair, Recorder,
    CHUNK_SIZES,
};
use reprocmp_io::CostModel;

fn main() {
    let mut rec = Recorder::new();
    let n_values = 4usize << 20; // 16 MiB checkpoint
    let pair = DivergentPair::generate(n_values, DivergenceSpec::hacc_like_late(), 0xb0b);
    let model = CostModel::lustre_pfs();

    for (panel, eps) in [("fig6a", 1e-7f64), ("fig6b", 1e-3f64)] {
        println!("\n=== Figure 6 panel {panel}: error bound {eps:e} ===");
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>13} {:>15} {:>10}",
            "chunk", "setup", "read", "deserialize", "compare-tree", "compare-direct", "total"
        );
        for &chunk in &CHUNK_SIZES {
            let engine = engine_for(chunk, eps);
            let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
            let report = engine.compare_with_timeline(&a, &b, &timeline).unwrap();
            let bd = report.breakdown;
            println!(
                "{:>8} {:>10} {:>10} {:>12} {:>13} {:>15} {:>10}",
                fmt_chunk(chunk),
                fmt_dur(bd.setup),
                fmt_dur(bd.read),
                fmt_dur(bd.deserialize),
                fmt_dur(bd.compare_tree),
                fmt_dur(bd.compare_direct),
                fmt_dur(bd.total()),
            );
            for (phase, dur) in bd.phases() {
                rec.push(
                    panel,
                    &[("chunk", fmt_chunk(chunk)), ("eps", format!("{eps:e}"))],
                    phase,
                    dur.as_secs_f64(),
                );
            }
            rec.push(
                panel,
                &[("chunk", fmt_chunk(chunk)), ("eps", format!("{eps:e}"))],
                "total",
                bd.total().as_secs_f64(),
            );
        }
    }

    println!("\nShape checks (paper §3.4.2): tree compare ≪ verification;");
    println!("low-ε verification shrinks with chunk size; high-ε total is far smaller.");
    rec.save("fig6");
}
