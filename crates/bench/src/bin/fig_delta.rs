//! Figure DC — differential capture: physical bytes versus churn at
//! chain depths 1, 4, and 16.
//!
//! Full-capture dedup already stores identical chunks once, but every
//! version still hashes and refcounts its whole payload. Differential
//! capture diffs each version against the previous manifest and writes
//! (and accounts) only the churned chunks. The headline claim this
//! figure pins: at low churn the physical bytes a delta version writes
//! track `churn x checkpoint_bytes` — within 1.2x — independent of the
//! checkpoint size and of how deep the chain is allowed to grow, while
//! the four-term ledger (`logical = physical + deduped + skipped`)
//! stays exact.
//!
//! Depth 1 (`anchor_every = 1`) is the full-capture baseline: every
//! version is an anchor, nothing is ever skipped.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig_delta --release
//! ```

use reprocmp_bench::Recorder;
use reprocmp_store::{ChunkStore, DeltaPolicy};
use std::path::PathBuf;

const CHUNK: usize = 1024;
const VALUES_PER_CHUNK: usize = CHUNK / 4;
const CHUNKS: usize = 64; // 64 KiB per checkpoint
const ITERATIONS: u64 = 17; // one anchor + 16 deltas at depth 16

/// Deterministic xorshift stream, salted so every (iteration, chunk)
/// rewrite produces globally unique bytes — dedup cannot flatter the
/// delta numbers.
fn fill_chunk(values: &mut [f32], salt: u64) {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for v in values {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state as f32) * 1e-9;
    }
}

/// Advances one iteration of churn: rewrites `churned` chunks, the
/// window rotating with the iteration so the same indices are not hit
/// every time.
fn churn_step(values: &mut [f32], churned: usize, iteration: u64) {
    for k in 0..churned {
        let chunk = (iteration as usize * 7 + k * 11) % CHUNKS;
        let lo = chunk * VALUES_PER_CHUNK;
        fill_chunk(
            &mut values[lo..lo + VALUES_PER_CHUNK],
            iteration * 1_000_003 + chunk as u64,
        );
    }
}

struct Cell {
    bytes_physical: u64,
    bytes_skipped: u64,
    /// Mean physical bytes per *delta* version (anchors excluded).
    delta_physical_mean: f64,
    delta_versions: u64,
}

fn capture(churn: f64, depth: u64) -> Cell {
    let root = std::env::temp_dir().join(format!(
        "reprocmp-fig-delta-{}-{churn}-{depth}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();
    let store = ChunkStore::open(&root).expect("open store");
    let policy = DeltaPolicy {
        anchor_every: depth,
        max_depth: depth,
    };
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let churned = ((churn * CHUNKS as f64).round() as usize).min(CHUNKS);

    let mut values = vec![0f32; CHUNKS * VALUES_PER_CHUNK];
    for (chunk, window) in values.chunks_mut(VALUES_PER_CHUNK).enumerate() {
        fill_chunk(window, chunk as u64);
    }
    let mut delta_physical = 0u64;
    let mut delta_versions = 0u64;
    for iteration in 1..=ITERATIONS {
        if iteration > 1 {
            churn_step(&mut values, churned, iteration);
        }
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let stats = store
            .ingest_delta(
                "run",
                iteration,
                &[("payload", &bytes)],
                CHUNK,
                &[],
                &policy,
            )
            .expect("ingest_delta");
        assert_eq!(
            stats.bytes_logical,
            stats.bytes_physical + stats.bytes_deduped + stats.bytes_skipped,
            "per-capture ledger must balance exactly"
        );
        if stats.parent.is_some() {
            delta_physical += stats.bytes_physical;
            delta_versions += 1;
        }
    }
    let stats = store.stats();
    assert_eq!(
        stats.bytes_logical,
        stats.bytes_physical + stats.bytes_deduped + stats.bytes_skipped,
        "store-wide ledger must balance exactly"
    );
    // Spot-check restore integrity at the deepest link before tearing
    // the store down: the last version must materialize the live state.
    let tail: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    assert_eq!(
        store.materialize("run", ITERATIONS).expect("materialize"),
        tail,
        "deepest chain link must restore byte-exactly"
    );
    std::fs::remove_dir_all(&root).ok();
    Cell {
        bytes_physical: stats.bytes_physical,
        bytes_skipped: stats.bytes_skipped,
        delta_physical_mean: if delta_versions == 0 {
            0.0
        } else {
            delta_physical as f64 / delta_versions as f64
        },
        delta_versions,
    }
}

fn main() {
    let mut rec = Recorder::new();
    let checkpoint_bytes = (CHUNKS * CHUNK) as f64;
    println!("=== Figure DC: differential capture, physical bytes vs churn at depth 1/4/16 ===");
    println!(
        "({} KiB/checkpoint, {ITERATIONS} versions, chunk {CHUNK} B; depth 1 = full capture)",
        (CHUNKS * CHUNK) >> 10,
    );
    println!(
        "{:>7} {:>6} {:>14} {:>14} {:>16} {:>8}",
        "churn", "depth", "physical KB", "skipped KB", "KB/delta-vers", "ratio"
    );
    for churn in [0.01f64, 0.05, 0.10, 0.25, 0.50] {
        for depth in [1u64, 4, 16] {
            let cell = capture(churn, depth);
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let churn_bytes = ((churn * CHUNKS as f64).round() as usize).min(CHUNKS) * CHUNK;
            let ratio = if churn_bytes == 0 {
                0.0
            } else {
                cell.delta_physical_mean / churn_bytes as f64
            };
            println!(
                "{:>6.0}% {:>6} {:>14.1} {:>14.1} {:>16.1} {:>7.2}x",
                churn * 100.0,
                depth,
                cell.bytes_physical as f64 / 1e3,
                cell.bytes_skipped as f64 / 1e3,
                cell.delta_physical_mean / 1e3,
                ratio,
            );
            let labels = [("churn", format!("{churn}")), ("depth", depth.to_string())];
            for (metric, value) in [
                ("bytes_physical", cell.bytes_physical as f64),
                ("bytes_skipped", cell.bytes_skipped as f64),
                ("delta_physical_mean", cell.delta_physical_mean),
                ("physical_over_churn", ratio),
            ] {
                rec.push("fig_delta", &labels, metric, value);
            }
            if depth == 1 {
                assert_eq!(cell.delta_versions, 0, "depth 1 must disable deltas");
                assert_eq!(cell.bytes_skipped, 0, "full capture never skips");
            } else {
                // The acceptance bound: at <=10% churn a delta version
                // writes within 1.2x of churn x checkpoint_bytes —
                // capture cost tracks what moved, not what exists.
                if churn <= 0.10 {
                    assert!(
                        cell.delta_physical_mean <= churn_bytes as f64 * 1.2,
                        "churn {churn} depth {depth}: mean delta physical \
                         {:.0} B exceeds 1.2x churn bytes {churn_bytes}",
                        cell.delta_physical_mean
                    );
                }
                assert!(
                    cell.bytes_skipped > 0,
                    "churn {churn} depth {depth}: deltas must skip something"
                );
                // Affordability versus the full-capture column: at low
                // churn the delta store hashes far less and writes no
                // more than the full baseline.
                assert!(
                    cell.delta_physical_mean <= checkpoint_bytes,
                    "a delta version can never out-write a full one"
                );
            }
        }
    }
    rec.save("fig_delta");

    let out = PathBuf::from("bench_results/fig_delta.json");
    println!("\nresults saved to {}", out.display());
    println!("OK: delta physical bytes track churn x checkpoint volume at every depth.");
}
