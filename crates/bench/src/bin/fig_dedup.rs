//! Figure DD — capture-side dedup: logical versus physical bytes when
//! N runs of the same workload flow through the content-addressed
//! store.
//!
//! The paper's capture cost is N x the raw checkpoint volume: every
//! run writes its own copy of every iteration. The chunk store keys
//! chunks by raw-content digest, so across N runs that diverge in only
//! a few percent of their chunks (the nondeterministic reduction
//! perturbs the same regions every run), the physical bytes written
//! approach one run's volume plus the divergence — while the logical
//! ledger still accounts the full N x capture.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig_dedup --release
//! ```

use reprocmp_bench::Recorder;
use reprocmp_store::ChunkStore;
use std::path::PathBuf;

const N_VALUES: usize = 1 << 16; // 256 KiB per checkpoint
const CHUNK: usize = 1024;
const ITERATIONS: u64 = 4;
/// Every 33rd chunk of a non-baseline run is perturbed (~3% of the
/// checkpoint diverges, the paper's "small fraction of the data").
const PERTURB_STRIDE: usize = 33;

/// One run's checkpoint at one iteration. The trajectory (shared by
/// all runs) changes every chunk every iteration, so there is no
/// cross-iteration dedup to flatter the numbers — only genuine
/// cross-run redundancy.
fn payload(run: usize, iteration: u64) -> Vec<u8> {
    let mut values: Vec<f32> = (0..N_VALUES)
        .map(|i| ((i as u64 + iteration * 7_919) as f32 * 1e-3).sin())
        .collect();
    if run > 0 {
        let values_per_chunk = CHUNK / 4;
        let chunks = N_VALUES / values_per_chunk;
        for c in (run % PERTURB_STRIDE..chunks).step_by(PERTURB_STRIDE) {
            values[c * values_per_chunk] += run as f32 * 1e-3;
        }
    }
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn capture_fleet(n_runs: usize) -> (u64, u64, u64) {
    let root = std::env::temp_dir().join(format!(
        "reprocmp-fig-dedup-{}-{n_runs}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();
    let store = ChunkStore::open(&root).expect("open store");
    for run in 0..n_runs {
        for iteration in 1..=ITERATIONS {
            let bytes = payload(run, iteration);
            let stats = store
                .ingest(
                    &format!("run{run}"),
                    iteration,
                    &[("payload", &bytes)],
                    CHUNK,
                    &[],
                )
                .expect("ingest");
            assert_eq!(
                stats.bytes_logical,
                stats.bytes_physical + stats.bytes_deduped,
                "per-ingest ledger must balance exactly"
            );
        }
    }
    let stats = store.stats();
    assert_eq!(
        stats.bytes_logical,
        stats.bytes_physical + stats.bytes_deduped,
        "store-wide ledger must balance exactly"
    );
    std::fs::remove_dir_all(&root).ok();
    (
        stats.bytes_logical,
        stats.bytes_physical,
        stats.bytes_deduped,
    )
}

fn main() {
    let mut rec = Recorder::new();
    println!("=== Figure DD: N-run capture, logical vs physical bytes in the chunk store ===");
    println!(
        "({} KiB/checkpoint, {ITERATIONS} iterations/run, chunk {CHUNK} B, ~3% cross-run divergence)",
        (N_VALUES * 4) >> 10,
    );
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>8}",
        "N", "logical MB", "physical MB", "deduped MB", "ratio"
    );
    let mut last_physical = 0u64;
    for n in [1usize, 2, 4, 8] {
        let (logical, physical, deduped) = capture_fleet(n);
        let ratio = logical as f64 / physical as f64;
        println!(
            "{:>4} {:>14.2} {:>14.2} {:>14.2} {:>7.2}x",
            n,
            logical as f64 / 1e6,
            physical as f64 / 1e6,
            deduped as f64 / 1e6,
            ratio,
        );
        for (metric, value) in [
            ("bytes_logical", logical as f64),
            ("bytes_physical", physical as f64),
            ("bytes_deduped", deduped as f64),
            ("dedup_ratio", ratio),
        ] {
            rec.push("fig_dedup", &[("runs", n.to_string())], metric, value);
        }
        if n > 1 {
            assert!(
                physical < logical,
                "{n} runs must store strictly fewer physical bytes than logical"
            );
            // Each added run contributes only its divergent chunks, so
            // physical growth is far below one run's full volume.
            let single_run = logical / n as u64;
            assert!(
                physical - last_physical < single_run,
                "marginal physical cost of added runs must be sublinear"
            );
        }
        last_physical = physical;
    }
    rec.save("fig_dedup");

    let out = PathBuf::from("bench_results/fig_dedup.json");
    println!("\nresults saved to {}", out.display());
    println!("OK: physical bytes track unique content, not N x raw capture volume.");
}
