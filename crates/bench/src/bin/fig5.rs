//! Figure 5 — comparison throughput: AllClose vs Direct vs Our Method
//! across chunk sizes and error bounds, for three checkpoint sizes.
//!
//! Paper setup: HACC checkpoints of 7 / 14 / 28 GB (0.5 / 1 / 2 B
//! particles) on two Polaris nodes against Lustre. Here: the same grid
//! over scaled checkpoints (8 / 16 / 32 MiB) on the simulated PFS with
//! deterministic virtual time. Expected shape (paper §3.4.1):
//!
//! * AllClose plateaus lowest, Direct higher, both flat across ε;
//! * our method beats Direct everywhere, most at large ε (up to ~11×);
//! * at tight ε small chunks suffer from scattered I/O, larger chunks
//!   recover throughput; at loose ε small chunks win slightly.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig5 --release
//! ```

use reprocmp_bench::{
    engine_for, fmt_chunk, modeled_sources, throughput_gbps, DivergenceSpec, DivergentPair,
    Recorder, CHUNK_SIZES, ERROR_BOUNDS,
};
use reprocmp_core::{AllClose, Direct};
use reprocmp_io::CostModel;

fn main() {
    let mut rec = Recorder::new();
    // (panel, label, values) — scaled stand-ins for 0.5/1/2 B particles.
    let sizes = [
        (
            "fig5a",
            "500M-particle scale (8 MiB/checkpoint)",
            2usize << 20,
        ),
        (
            "fig5b",
            "1B-particle scale (16 MiB/checkpoint)",
            4usize << 20,
        ),
        (
            "fig5c",
            "2B-particle scale (32 MiB/checkpoint)",
            8usize << 20,
        ),
    ];
    let model = CostModel::lustre_pfs();
    let mut global_best_speedup: f64 = 0.0;

    for (panel, label, n_values) in sizes {
        println!("\n=== Figure 5 panel {panel}: {label} ===");
        let pair = DivergentPair::generate(n_values, DivergenceSpec::hacc_like(), 0x5eed);
        let both = 2 * pair.bytes();

        // Header.
        print!("{:>10} {:>9} {:>9} |", "eps", "AllClose", "Direct");
        for &chunk in &CHUNK_SIZES {
            print!(" {:>7}", fmt_chunk(chunk));
        }
        println!("   (Our Method by chunk size, GB/s)");

        for &eps in &ERROR_BOUNDS {
            // Baselines are chunk-independent: measure once per ε.
            let engine = engine_for(4096, eps);
            let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
            let t0 = timeline.now();
            let _ = AllClose::new(eps)
                .unwrap()
                .compare_with_timeline(&a, &b, &timeline)
                .unwrap();
            let t_allclose = timeline.now() - t0;

            let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
            let t0 = timeline.now();
            let _ = Direct::new(eps)
                .unwrap()
                .compare_with_timeline(&a, &b, &timeline)
                .unwrap();
            let t_direct = timeline.now() - t0;

            let gb_allclose = throughput_gbps(both, t_allclose);
            let gb_direct = throughput_gbps(both, t_direct);
            print!("{:>10.0e} {:>9.2} {:>9.2} |", eps, gb_allclose, gb_direct);
            rec.push(
                panel,
                &[("eps", format!("{eps:e}")), ("method", "allclose".into())],
                "throughput_gbps",
                gb_allclose,
            );
            rec.push(
                panel,
                &[("eps", format!("{eps:e}")), ("method", "direct".into())],
                "throughput_gbps",
                gb_direct,
            );

            for &chunk in &CHUNK_SIZES {
                let engine = engine_for(chunk, eps);
                let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
                let t0 = timeline.now();
                let report = engine.compare_with_timeline(&a, &b, &timeline).unwrap();
                let t_ours = report.breakdown.total().max(timeline.now() - t0);
                let gb_ours = throughput_gbps(both, t_ours);
                print!(" {:>7.2}", gb_ours);
                rec.push(
                    panel,
                    &[
                        ("eps", format!("{eps:e}")),
                        ("method", "ours".into()),
                        ("chunk", fmt_chunk(chunk)),
                    ],
                    "throughput_gbps",
                    gb_ours,
                );
                let speedup = gb_ours / gb_direct;
                if speedup > global_best_speedup {
                    global_best_speedup = speedup;
                }
            }
            println!();
        }
    }

    println!("\nSummary (paper §3.4.1 claims):");
    println!(
        "  max speedup of Our Method over Direct: {global_best_speedup:.1}x  (paper: up to 11x)"
    );
    rec.push("fig5", &[], "max_speedup_vs_direct", global_best_speedup);
    rec.save("fig5");
}
