//! Ablation study — each design principle of §2.1, removed one at a
//! time, measured on the same workload. Quantifies *why* the design
//! choices DESIGN.md calls out are there:
//!
//! 1. **BFS start level** — root vs middle vs leaves (§2.5.1 says
//!    starting mid-tree keeps lanes busy; starting at the leaves
//!    degenerates to a full scan with no pruning above).
//! 2. **Asynchronous scattered I/O** — io_uring-style rings vs
//!    synchronous blocking reads in stage two.
//! 3. **Double buffering** — 1 vs 2 vs 4 pipeline buffers.
//! 4. **Queue depth** — 1 … 256 in-flight ops.
//! 5. **Hash block chaining granularity** — 16 B (the paper's 128-bit
//!    blocks) vs larger blocks, wall-clock hashing cost.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin ablate --release
//! ```

use reprocmp_bench::{fmt_dur, modeled_sources, DivergenceSpec, DivergentPair, Recorder};
use reprocmp_core::{CompareEngine, EngineConfig};
use reprocmp_device::Device;
use reprocmp_hash::{ChunkHasher, Quantizer};
use reprocmp_io::pipeline::{BackendKind, PipelineConfig};
use reprocmp_io::CostModel;
use reprocmp_merkle::{compare_trees, MerkleTree};
use std::time::Instant;

fn main() {
    let mut rec = Recorder::new();
    let pair = DivergentPair::generate(4 << 20, DivergenceSpec::hacc_like(), 0xab1a7e);
    let model = CostModel::lustre_pfs();

    // ---- 1. BFS start level --------------------------------------
    println!("=== Ablation 1: BFS start level (nodes visited; mid-tree is the paper's choice) ===");
    let hasher = ChunkHasher::new(Quantizer::new(1e-6).unwrap());
    let dev = Device::host_auto();
    let ta = MerkleTree::build_from_f32(&pair.run1, 16 << 10, &hasher, &dev);
    let tb = MerkleTree::build_from_f32(&pair.run2, 16 << 10, &hasher, &dev);
    for (label, lanes) in [
        ("root (lanes=1)", 1usize),
        ("middle (lanes=64)", 64),
        ("middle (lanes=4096)", 4096),
        ("leaves (lanes=max)", usize::MAX / 2),
    ] {
        let t0 = Instant::now();
        let out = compare_trees(&ta, &tb, &dev, lanes).unwrap();
        let wall = t0.elapsed();
        println!(
            "  {label:<22} visited {:>6} nodes, pruned {:>5} subtrees, {:>5} mismatched leaves, {}",
            out.nodes_visited,
            out.pruned_subtrees,
            out.mismatched_leaves.len(),
            fmt_dur(wall),
        );
        rec.push(
            "ablate-bfs",
            &[("start", label.into())],
            "nodes_visited",
            out.nodes_visited as f64,
        );
    }

    // ---- 2 & 3 & 4: stage-two I/O strategy ------------------------
    println!("\n=== Ablation 2: stage-two I/O strategy (modeled time, ε = 1e-6, 16K chunks) ===");
    let run = |io: PipelineConfig| {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 16 << 10,
            error_bound: 1e-6,
            io,
            ..EngineConfig::default()
        });
        let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
        let report = engine.compare_with_timeline(&a, &b, &timeline).unwrap();
        report.breakdown.total()
    };

    let base = PipelineConfig::default();
    let t_uring = run(base);
    let t_blocking = run(PipelineConfig {
        backend: BackendKind::Blocking,
        ..base
    });
    let t_mmap = run(PipelineConfig {
        backend: BackendKind::Mmap,
        ..base
    });
    println!("  uring rings     : {}", fmt_dur(t_uring));
    println!(
        "  mmap faulting   : {}  ({:.1}x slower)",
        fmt_dur(t_mmap),
        t_mmap.as_secs_f64() / t_uring.as_secs_f64()
    );
    println!(
        "  blocking reads  : {}  ({:.1}x slower)",
        fmt_dur(t_blocking),
        t_blocking.as_secs_f64() / t_uring.as_secs_f64()
    );
    rec.push(
        "ablate-io",
        &[("backend", "uring".into())],
        "total_secs",
        t_uring.as_secs_f64(),
    );
    rec.push(
        "ablate-io",
        &[("backend", "mmap".into())],
        "total_secs",
        t_mmap.as_secs_f64(),
    );
    rec.push(
        "ablate-io",
        &[("backend", "blocking".into())],
        "total_secs",
        t_blocking.as_secs_f64(),
    );
    assert!(t_uring < t_mmap && t_uring < t_blocking);

    println!("\n=== Ablation 3: pipeline buffer pool (1 = no overlap, 2 = double buffering) ===");
    for buffers in [1usize, 2, 4] {
        let t = run(PipelineConfig { buffers, ..base });
        println!("  {buffers} buffers: {}", fmt_dur(t));
        rec.push(
            "ablate-buffers",
            &[("buffers", buffers.to_string())],
            "total_secs",
            t.as_secs_f64(),
        );
    }
    println!("  (the virtual clock charges device time, not host stalls, so buffer");
    println!("   count shows up in wall clock — see the stream_pipeline Criterion bench)");

    println!("\n=== Ablation 4: ring queue depth ===");
    let mut prev = None;
    for depth in [1usize, 4, 16, 64, 256] {
        let t = run(PipelineConfig {
            queue_depth: depth,
            ..base
        });
        println!("  qd {depth:>3}: {}", fmt_dur(t));
        rec.push(
            "ablate-qd",
            &[("depth", depth.to_string())],
            "total_secs",
            t.as_secs_f64(),
        );
        if let Some(p) = prev {
            assert!(t <= p, "deeper queues must not be slower (qd {depth})");
        }
        prev = Some(t);
    }

    // ---- 4b. read coalescing ---------------------------------------
    println!("\n=== Ablation 4b: coalescing adjacent flagged chunks into one request ===");
    for (label, coalesce) in [("coalesced", true), ("per-chunk requests", false)] {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 16 << 10,
            error_bound: 1e-6,
            coalesce_reads: coalesce,
            ..EngineConfig::default()
        });
        let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
        let t = engine
            .compare_with_timeline(&a, &b, &timeline)
            .unwrap()
            .breakdown
            .total();
        println!("  {label:<20}: {}", fmt_dur(t));
        rec.push(
            "ablate-coalesce",
            &[("mode", label.into())],
            "total_secs",
            t.as_secs_f64(),
        );
    }

    // ---- 4c. Lustre striping ---------------------------------------
    println!("\n=== Ablation 4c: file striping over OSTs (modeled, ε = 1e-6, 16K chunks) ===");
    for osts in [1usize, 2, 4, 8] {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 16 << 10,
            error_bound: 1e-6,
            ..EngineConfig::default()
        });
        let (a, b, timeline, _) =
            reprocmp_bench::striped_sources(&pair, &engine, model, 1 << 20, osts);
        let t = engine
            .compare_with_timeline(&a, &b, &timeline)
            .unwrap()
            .breakdown
            .total();
        println!("  {osts} OST(s): {}", fmt_dur(t));
        rec.push(
            "ablate-stripes",
            &[("osts", osts.to_string())],
            "total_secs",
            t.as_secs_f64(),
        );
    }

    // ---- 5. hash chaining block size ------------------------------
    println!("\n=== Ablation 5: hash chaining block size (wall clock, one 512 KiB chunk) ===");
    let chunk = vec![1.5f32; (512 << 10) / 4];
    let q = Quantizer::new(1e-5).unwrap();
    for block in [16usize, 64, 256, 1024] {
        let h = ChunkHasher::with_block_bytes(q, block);
        let mut scratch = Vec::new();
        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            std::hint::black_box(h.hash_chunk_with_scratch(&chunk, &mut scratch));
        }
        let per = t0.elapsed() / reps;
        let gbps = (chunk.len() * 4) as f64 / per.as_secs_f64() / 1e9;
        println!(
            "  {block:>4} B blocks: {} per chunk ({gbps:.2} GB/s)",
            fmt_dur(per)
        );
        rec.push(
            "ablate-block",
            &[("block", block.to_string())],
            "gbps",
            gbps,
        );
    }
    println!("\n(16 B chaining is the paper's fidelity point; larger blocks trade");
    println!(" chain length for per-call throughput — same digests-within-config,");
    println!(" different format.)");
    rec.save("ablate");
}
