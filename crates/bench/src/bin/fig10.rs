//! Figure 10 — strong scaling: total throughput and runtime of
//! comparing a fixed set of checkpoint pairs as the process count
//! grows 16 → 128 (four per node), for Our Method vs Direct, at
//! ε = 1e-7 (worst case) and ε = 1e-3 (best case).
//!
//! Expected shape (paper §3.4.6): both methods scale near-perfectly
//! (≈1.9× per process doubling); ours stays above Direct everywhere —
//! ≥1.6× at 1e-7, up to 4.6× at 1e-3.
//!
//! Scaled setup: 128 checkpoint pairs of 1 MiB each (the paper used
//! 1024 pairs of 4.4 GB). Ranks on one node share that node's PFS
//! link (one virtual clock per node); nodes proceed independently.
//! Total runtime is the slowest node's clock.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig10 --release
//! ```

use reprocmp_bench::{throughput_gbps, DivergenceSpec, DivergentPair, Recorder};
use reprocmp_cluster::Cluster;
use reprocmp_core::{CheckpointSource, CompareEngine, Direct, EngineConfig};
use reprocmp_io::{CostModel, Timeline};
use std::time::Duration;

const TOTAL_PAIRS: usize = 128;
const PAIR_VALUES: usize = 1 << 18; // 1 MiB per checkpoint

#[derive(Clone, Copy)]
enum Method {
    Ours,
    DirectCmp,
}

/// Runs all pairs over `procs` ranks (4 per node); returns (total
/// runtime = slowest node, aggregate GB/s, per-process GB/s).
fn run_config(method: Method, eps: f64, procs: usize) -> (Duration, f64, f64) {
    let nodes = procs / 4;
    let cluster = Cluster::new(nodes, 4);
    let node_times = cluster.run(move |ctx| {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 16 << 10,
            error_bound: eps,
            ..EngineConfig::default()
        });
        let direct = Direct::new(eps).unwrap();
        let clock = ctx.node_clock();
        // Static cyclic distribution of pairs over ranks. Cluster
        // length is kept well under the pair size so per-pair flagged
        // fractions concentrate (long clusters would make 1 MiB pairs
        // wildly uneven and turn the scaling study into a
        // load-imbalance study).
        let spec = DivergenceSpec::Clustered {
            tier_probs: [0.04, 0.05, 0.07, 0.09, 0.24, 0.06],
            persistence: 0.9,
            segment_values: 1024,
            per_value_prob: 1.0 / 256.0,
        };
        let mut p = ctx.rank();
        while p < TOTAL_PAIRS {
            let pair = DivergentPair::generate(PAIR_VALUES, spec, 42 + p as u64);
            let a = CheckpointSource::in_memory_with_model(
                &pair.run1,
                &engine,
                CostModel::lustre_pfs(),
                Some(clock.clone()),
            )
            .unwrap();
            let b = CheckpointSource::in_memory_with_model(
                &pair.run2,
                &engine,
                CostModel::lustre_pfs(),
                Some(clock.clone()),
            )
            .unwrap();
            let timeline = Timeline::sim(clock.clone());
            match method {
                Method::Ours => {
                    engine.compare_with_timeline(&a, &b, &timeline).unwrap();
                }
                Method::DirectCmp => {
                    direct.compare_with_timeline(&a, &b, &timeline).unwrap();
                }
            }
            p += ctx.size();
        }
        ctx.barrier();
        clock.now()
    });
    let total = node_times.into_iter().max().unwrap_or_default();
    let bytes = (TOTAL_PAIRS * PAIR_VALUES * 4 * 2) as u64;
    let agg = throughput_gbps(bytes, total);
    (total, agg, agg / procs as f64)
}

fn main() {
    let mut rec = Recorder::new();
    for (panel, eps) in [("fig10a", 1e-7f64), ("fig10b", 1e-3f64)] {
        println!("\n=== Figure 10 panel {panel}: ε = {eps:e}, {TOTAL_PAIRS} checkpoint pairs ===");
        println!(
            "{:>6} {:>14} {:>12} {:>14} {:>12} {:>9}",
            "procs", "direct-time", "direct-GB/s", "ours-time", "ours-GB/s", "speedup"
        );
        let mut prev_ours: Option<f64> = None;
        for procs in [16usize, 32, 64, 128] {
            let (dt, dagg, _dper) = run_config(Method::DirectCmp, eps, procs);
            let (ot, oagg, _oper) = run_config(Method::Ours, eps, procs);
            let speedup = dt.as_secs_f64() / ot.as_secs_f64();
            println!(
                "{:>6} {:>13.2?} {:>12.2} {:>13.2?} {:>12.2} {:>8.1}x",
                procs, dt, dagg, ot, oagg, speedup
            );
            rec.push(
                panel,
                &[("procs", procs.to_string()), ("method", "direct".into())],
                "runtime_secs",
                dt.as_secs_f64(),
            );
            rec.push(
                panel,
                &[("procs", procs.to_string()), ("method", "ours".into())],
                "runtime_secs",
                ot.as_secs_f64(),
            );
            rec.push(panel, &[("procs", procs.to_string())], "speedup", speedup);
            assert!(speedup >= 1.0, "ours must not lose to direct");
            if let Some(prev) = prev_ours {
                let scaling = prev / ot.as_secs_f64();
                println!("{:>6} scaling vs previous: {scaling:.2}x per doubling", "");
                rec.push(
                    panel,
                    &[("procs", procs.to_string())],
                    "scaling_per_doubling",
                    scaling,
                );
            }
            prev_ours = Some(ot.as_secs_f64());
        }
    }
    println!("\npaper: near-perfect scaling (~1.9x per doubling); ours ≥1.6x at 1e-7, up to 4.6x at 1e-3.");
    rec.save("fig10");
}
