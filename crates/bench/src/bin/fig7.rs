//! Figure 7 — effectiveness of the error-bounded hash: (a) percentage
//! of checkpoint data flagged for re-reading and (b) false-positive
//! rate, per chunk size and error bound.
//!
//! Expected shape (paper §3.4.3):
//!
//! * flagged percentage grows with chunk size (sub-linearly: adjacent
//!   changes coalesce) and shrinks as ε grows;
//! * zero false *negatives* always (checked here against brute force);
//! * false-positive rate is small, larger for small ε (more sub-bound
//!   noise straddling grid boundaries within surviving chunks).
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig7 --release
//! ```

use reprocmp_bench::{
    engine_for, fmt_chunk, modeled_sources, DivergenceSpec, DivergentPair, Recorder, CHUNK_SIZES,
    ERROR_BOUNDS,
};
use reprocmp_io::CostModel;

fn main() {
    let mut rec = Recorder::new();
    // 2 B-particle scale stand-in: 32 MiB payload.
    let n_values = 8usize << 20;
    let pair = DivergentPair::generate(n_values, DivergenceSpec::hacc_like_late(), 0x717);
    let model = CostModel::free(); // accuracy study, time is irrelevant

    println!("=== Figure 7a: % of checkpoint data flagged as potentially changed ===");
    print!("{:>10} |", "eps");
    for &chunk in &CHUNK_SIZES {
        print!(" {:>7}", fmt_chunk(chunk));
    }
    println!();
    let mut flagged_tbl = Vec::new();
    for &eps in &ERROR_BOUNDS {
        print!("{:>10.0e} |", eps);
        let mut row = Vec::new();
        for &chunk in &CHUNK_SIZES {
            let engine = engine_for(chunk, eps);
            let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
            let report = engine.compare_with_timeline(&a, &b, &timeline).unwrap();
            let pct = 100.0 * report.stats.flagged_fraction();
            print!(" {pct:>6.1}%");
            rec.push(
                "fig7a",
                &[("eps", format!("{eps:e}")), ("chunk", fmt_chunk(chunk))],
                "flagged_pct",
                pct,
            );
            row.push((report, pct));
        }
        println!();
        flagged_tbl.push((eps, row));
    }

    println!("\n=== Figure 7b: false positive rate (flagged-but-clean chunks / all chunks) ===");
    print!("{:>10} |", "eps");
    for &chunk in &CHUNK_SIZES {
        print!(" {:>7}", fmt_chunk(chunk));
    }
    println!();
    for (eps, row) in &flagged_tbl {
        print!("{:>10.0e} |", eps);
        for ((report, _), &chunk) in row.iter().zip(&CHUNK_SIZES) {
            let rate = report.stats.false_positive_rate();
            print!(" {rate:>7.4}");
            rec.push(
                "fig7b",
                &[("eps", format!("{eps:e}")), ("chunk", fmt_chunk(chunk))],
                "false_positive_rate",
                rate,
            );
        }
        println!();
    }

    // Zero-false-negative audit against brute force, per ε.
    println!("\n=== Zero-false-negative audit (hash must never miss a real diff) ===");
    for &eps in &ERROR_BOUNDS {
        let brute = pair
            .run1
            .iter()
            .zip(&pair.run2)
            .filter(|(a, b)| (f64::from(**a) - f64::from(**b)).abs() > eps)
            .count() as u64;
        let engine = engine_for(4096, eps);
        let (a, b, timeline, _) = modeled_sources(&pair, &engine, model);
        let report = engine.compare_with_timeline(&a, &b, &timeline).unwrap();
        let verdict = if report.stats.diff_count == brute {
            "OK"
        } else {
            "MISMATCH"
        };
        println!(
            "  eps {:>6.0e}: engine {} diffs, brute force {} — {}",
            eps, report.stats.diff_count, brute, verdict
        );
        assert_eq!(
            report.stats.diff_count, brute,
            "false negative at eps {eps:e}"
        );
        rec.push(
            "fig7",
            &[("eps", format!("{eps:e}"))],
            "diffs",
            report.stats.diff_count as f64,
        );
    }

    rec.save("fig7");
}
