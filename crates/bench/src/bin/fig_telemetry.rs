//! Figure TM — the cost of being watched: daemon job throughput with
//! the background telemetry sampler off, at 10 Hz, and at 100 Hz.
//!
//! The telemetry plane's contract is that observation is free: the
//! sampler reads atomics and appends a JSONL line per tick, entirely
//! off the job execution path. This harness puts a number on "free" —
//! the same fixed mixed job load (compare/materialize/ingest) runs
//! against three otherwise-identical daemons whose only difference is
//! the sampling cadence, and the figure reports jobs/s for each.
//! Overhead at 100 Hz should be lost in run-to-run noise.
//!
//! The binary also emits `bench_results/telemetry_profile.json`: the
//! canonical compare report produced *while a 100 Hz sampler runs*.
//! Its modeled stage breakdown is deterministic, so `make perf-diff`
//! can gate it against the committed baseline in `tests/goldens/` —
//! if sampling ever leaks into the science path, the stage numbers
//! move and the gate trips. `--profile-only` skips the throughput
//! sweep and writes just that file.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig_telemetry --release
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use reprocmp_bench::Recorder;
use reprocmp_server::{
    execute_spec, pair, serve_connection, JobSpec, ObjectRef, Server, ServerClient, ServerConfig,
};
use serde::{Serialize, Value};

const CHUNK: usize = 4096;
const VALUES: usize = 1 << 16; // 64 Ki f32 = 256 KiB per object
const JOBS_PER_CLIENT: usize = 24;
const CLIENTS: usize = 4;
/// Sampling cadences under test, expressed in Hz (0 = sampler off).
const CADENCES_HZ: [u64; 3] = [0, 10, 100];

/// The vendored serde has no blanket `Serialize` for `Value`.
struct Shim(Value);

impl Serialize for Shim {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-figtm-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// Deterministic payload in a per-salt value band, so objects never
/// share chunks and dedup stays independent of submission order.
fn payload(salt: u32) -> Vec<u8> {
    (0..VALUES)
        .flat_map(|i| (salt as f32 * 1e3 + (i as f32 * 1e-3).sin()).to_le_bytes())
        .collect()
}

/// The baseline pair every compare job reads: `base@1` and a run that
/// diverges in one contiguous region.
fn seed_store(server: &Server) {
    let base = payload(1);
    let mut run = base.clone();
    // Perturb 1% of the values, mid-payload.
    for i in (VALUES / 2)..(VALUES / 2 + VALUES / 100) {
        let at = i * 4;
        let v = f32::from_le_bytes(run[at..at + 4].try_into().expect("4 bytes")) + 0.25;
        run[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
    for (version, data) in [(1u64, base), (2, run)] {
        let outcome = execute_spec(
            server.store(),
            server.engine(),
            &JobSpec::Ingest {
                name: "base".to_owned(),
                version,
                chunk_bytes: CHUNK,
                data,
            },
        );
        outcome.result.expect("seed ingest");
    }
}

fn obj(name: &str, version: u64) -> ObjectRef {
    ObjectRef {
        name: name.to_owned(),
        version,
    }
}

fn cadence(hz: u64) -> Duration {
    1_000_000_000u64
        .checked_div(hz)
        .map_or(Duration::ZERO, Duration::from_nanos)
}

fn start_server(tag: &str, hz: u64) -> (Arc<Server>, PathBuf) {
    let root = fresh_root(tag);
    let server = Arc::new(
        Server::start(ServerConfig {
            chunk_bytes: CHUNK,
            queue_capacity: 256,
            telemetry_cadence: cadence(hz),
            ..ServerConfig::rooted_at(&root)
        })
        .expect("daemon start"),
    );
    seed_store(&server);
    (server, root)
}

/// One client's session: the same mixed traffic as Figure SV.
fn drive_client(server: &Arc<Server>, client_no: usize) {
    let (client_end, server_end) = pair();
    let handle = {
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let mut conn = server_end;
            let _ = serve_connection(&server, &mut conn);
        })
    };
    let mut session =
        ServerClient::over(Box::new(client_end), &format!("client-{client_no}")).expect("hello");
    let ingest_data = payload(100 + client_no as u32);
    for i in 0..JOBS_PER_CLIENT {
        let job = match i % 4 {
            0 | 1 => session
                .compare(obj("base", 1), obj("base", 2))
                .expect("submit"),
            2 => session.materialize("base", 1).expect("submit"),
            _ => session
                .ingest(
                    &format!("c{client_no}"),
                    i as u64 + 1,
                    CHUNK as u64,
                    &ingest_data,
                )
                .expect("submit"),
        };
        let status = session.wait(job).expect("wait");
        assert!(status.error.is_none(), "job failed: {:?}", status.error);
    }
    drop(session);
    let _ = handle.join();
}

/// Writes the deterministic compare profile produced under a live
/// 100 Hz sampler, for `make perf-diff` to gate. If the telemetry
/// plane ever perturbs the science path, the modeled stage numbers
/// shift and the committed baseline catches it.
fn write_profile() {
    let (server, root) = start_server("profile", 100);
    let outcome = execute_spec(
        server.store(),
        server.engine(),
        &JobSpec::Compare {
            left: obj("base", 1),
            right: obj("base", 2),
        },
    );
    let report = outcome.result.expect("profile compare");
    server.shutdown();
    drop(server);
    std::fs::remove_dir_all(&root).ok();

    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create bench_results/");
        return;
    }
    let path = dir.join("telemetry_profile.json");
    let mut json = serde_json::to_string_pretty(&Shim(report)).expect("encode profile");
    json.push('\n');
    if std::fs::write(&path, json).is_err() {
        eprintln!("warning: could not write {}", path.display());
    } else {
        println!("sampled compare profile written to {}", path.display());
    }
}

fn main() {
    let profile_only = std::env::args().any(|a| a == "--profile-only");
    write_profile();
    if profile_only {
        return;
    }

    let mut rec = Recorder::new();
    println!("=== Figure TM: telemetry sampling overhead on job throughput ===");
    println!(
        "(256 KiB objects, chunk {CHUNK} B, {CLIENTS} clients × {JOBS_PER_CLIENT} mixed jobs, \
         2 workers)"
    );
    println!(
        "{:>10} {:>8} {:>12} {:>10}",
        "cadence", "jobs", "jobs/s", "samples"
    );
    for &hz in &CADENCES_HZ {
        let (server, root) = start_server(&format!("hz{hz}"), hz);
        let started = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || drive_client(&server, c))
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
        });
        let wall = started.elapsed();
        // How many snapshots the sampler actually landed (ring +
        // evictions were taken while the load ran).
        let samples = server.sample_telemetry_now().seq;
        server.shutdown();
        drop(server);
        std::fs::remove_dir_all(&root).ok();

        let jobs = CLIENTS * JOBS_PER_CLIENT;
        let throughput = jobs as f64 / wall.as_secs_f64();
        let label = if hz == 0 {
            "off".to_owned()
        } else {
            format!("{hz} Hz")
        };
        println!("{label:>10} {jobs:>8} {throughput:>12.1} {samples:>10}");
        let params = [("cadence_hz", hz.to_string())];
        rec.push(
            "telemetry_overhead",
            &params,
            "throughput_jobs_per_s",
            throughput,
        );
        rec.push("telemetry_overhead", &params, "samples", samples as f64);
    }
    rec.save("fig_telemetry");
}
