//! Figure 9 — comparison time of the mmap vs io_uring I/O backends
//! for scattered stage-two reads (paper: 500 M particles, ε = 1e-7,
//! eight processes, chunk sizes 4–16 KiB; io_uring is >3× faster with
//! visibly less variance, and mmap's cost scales with the data
//! volume).
//!
//! Eight simulated ranks (2 nodes × 4) each compare one checkpoint
//! pair through the full engine, with stage two streaming through
//! either the mmap-style or the uring-style backend. Per-rank modeled
//! times give the mean and spread.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig9 --release
//! ```

use reprocmp_bench::{fmt_chunk, fmt_dur, DivergenceSpec, DivergentPair, Recorder};
use reprocmp_cluster::Cluster;
use reprocmp_core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp_io::pipeline::{BackendKind, PipelineConfig};
use reprocmp_io::{CostModel, SimClock, Timeline};
use std::time::Duration;

fn run_backend(backend: BackendKind, chunk: usize) -> Vec<Duration> {
    let cluster = Cluster::new(2, 4);
    cluster.run(move |ctx| {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: chunk,
            error_bound: 1e-7,
            io: PipelineConfig {
                backend,
                ..PipelineConfig::default()
            },
            ..EngineConfig::default()
        });
        // One pair per rank; rank-specific divergence. Each rank gets
        // its own clock: the paper reports per-process times.
        let pair = DivergentPair::generate(
            1 << 20,
            DivergenceSpec::hacc_like_late(),
            0x919 + ctx.rank() as u64,
        );
        let clock = SimClock::new();
        let a = CheckpointSource::in_memory_with_model(
            &pair.run1,
            &engine,
            CostModel::lustre_pfs(),
            Some(clock.clone()),
        )
        .unwrap();
        let b = CheckpointSource::in_memory_with_model(
            &pair.run2,
            &engine,
            CostModel::lustre_pfs(),
            Some(clock.clone()),
        )
        .unwrap();
        let report = engine
            .compare_with_timeline(&a, &b, &Timeline::sim(clock))
            .unwrap();
        report.breakdown.total()
    })
}

fn stats(times: &[Duration]) -> (Duration, Duration) {
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let var = times
        .iter()
        .map(|t| (t.as_secs_f64() - mean.as_secs_f64()).powi(2))
        .sum::<f64>()
        / times.len() as f64;
    (mean, Duration::from_secs_f64(var.sqrt()))
}

fn main() {
    let mut rec = Recorder::new();
    println!("=== Figure 9: scattered-I/O backend, 8 processes, ε = 1e-7 ===");
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>12} {:>12}",
        "chunk", "mmap(mean)", "mmap(std)", "uring(mean)", "uring(std)", "mmap/uring"
    );
    for chunk in [4 << 10, 8 << 10, 16 << 10] {
        let t_mmap = run_backend(BackendKind::Mmap, chunk);
        let t_uring = run_backend(BackendKind::Uring, chunk);
        let (m_mean, m_std) = stats(&t_mmap);
        let (u_mean, u_std) = stats(&t_uring);
        let speedup = m_mean.as_secs_f64() / u_mean.as_secs_f64();
        println!(
            "{:>8} {:>14} {:>12} {:>14} {:>12} {:>11.1}x",
            fmt_chunk(chunk),
            fmt_dur(m_mean),
            fmt_dur(m_std),
            fmt_dur(u_mean),
            fmt_dur(u_std),
            speedup,
        );
        rec.push(
            "fig9",
            &[("chunk", fmt_chunk(chunk)), ("backend", "mmap".into())],
            "mean_secs",
            m_mean.as_secs_f64(),
        );
        rec.push(
            "fig9",
            &[("chunk", fmt_chunk(chunk)), ("backend", "uring".into())],
            "mean_secs",
            u_mean.as_secs_f64(),
        );
        rec.push(
            "fig9",
            &[("chunk", fmt_chunk(chunk))],
            "mmap_over_uring",
            speedup,
        );
        assert!(
            speedup > 3.0,
            "io_uring should be >3x faster (got {speedup:.1}x)"
        );
    }
    println!("\npaper: io_uring over 3x faster than mmap, with less variance.");
    rec.save("fig9");
}
