//! Figure MR — multi-run baseline comparison cost: the batch scheduler
//! with its content-addressed metadata cache versus N independent
//! pairwise comparisons.
//!
//! N runs of the same application diverge from a blessed baseline in
//! mostly the *same* places (a nondeterministic reduction perturbs the
//! same region every run), so after the first job adjudicates a
//! subtree pair or verifies a chunk pair, later jobs answer from the
//! cache. Independent pairwise comparisons redo everything: the
//! baseline's metadata is decoded N times and every job re-walks and
//! re-reads what its predecessors already proved. The batch's marginal
//! cost per added run is the per-job frontier walk plus that run's
//! unique divergence — sublinear in the work, not just the constants.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig_multirun --release
//! ```

use reprocmp_bench::{fmt_dur, Recorder};
use reprocmp_core::{BatchConfig, CheckpointSource, CompareEngine, EngineConfig};
use reprocmp_io::{CostModel, SimClock, Timeline};
use std::time::Duration;

const N_VALUES: usize = 1 << 18; // 256 Ki f32 per run = 1 MiB
const CHUNK: usize = 1024;
const EPS: f64 = 1e-5;

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: EPS,
        // Few lanes start the pruning BFS high in the tree, so cache
        // hits skip whole subtree walks. With the default 64 Ki-lane
        // device the start level clamps to the leaves of a tree this
        // size and the subtree cache would have nothing to save.
        lane_hint: Some(8),
        ..EngineConfig::default()
    })
}

/// Baseline values plus N run payloads: every run carries the same
/// perturbation of the first half (>= 50% of chunks shared across
/// runs) plus one run-unique value near the end.
fn payloads(n_runs: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let base: Vec<f32> = (0..N_VALUES).map(|i| (i as f32 * 1e-3).sin()).collect();
    let mut shared = base.clone();
    for v in shared.iter_mut().take(N_VALUES / 2) {
        *v += 0.25;
    }
    let runs = (0..n_runs)
        .map(|r| {
            let mut values = shared.clone();
            values[N_VALUES - 64 * (r + 1)] += 0.5;
            values
        })
        .collect();
    (base, runs)
}

struct Cost {
    nodes_visited: u64,
    bytes_reread: u64,
    trees_decoded: u64,
    modeled: Duration,
}

fn source(values: &[f32], e: &CompareEngine, clock: &SimClock) -> CheckpointSource {
    CheckpointSource::in_memory_with_model(values, e, CostModel::lustre_pfs(), Some(clock.clone()))
        .unwrap()
}

/// The batch scheduler: one decode per source, shared cache.
fn batched(base: &[f32], runs: &[Vec<f32>]) -> Cost {
    let e = engine();
    let clock = SimClock::new();
    let baseline = source(base, &e, &clock);
    let sources: Vec<CheckpointSource> = runs.iter().map(|r| source(r, &e, &clock)).collect();
    let report = e
        .compare_many_with_timeline(
            &baseline,
            &sources,
            &Timeline::sim(clock),
            &BatchConfig::default(),
        )
        .unwrap();
    Cost {
        nodes_visited: report.total_nodes_visited(),
        bytes_reread: report.total_bytes_reread(),
        trees_decoded: report.trees_decoded,
        modeled: report.elapsed,
    }
}

/// N independent pairwise comparisons — the status quo.
fn pairwise(base: &[f32], runs: &[Vec<f32>]) -> Cost {
    let e = engine();
    let mut cost = Cost {
        nodes_visited: 0,
        bytes_reread: 0,
        trees_decoded: 0,
        modeled: Duration::ZERO,
    };
    for r in runs {
        // A fresh clock per job: each pairwise comparison re-opens the
        // baseline and decodes both trees from scratch.
        let clock = SimClock::new();
        let a = source(base, &e, &clock);
        let b = source(r, &e, &clock);
        let report = e
            .compare_with_timeline(&a, &b, &Timeline::sim(clock))
            .unwrap();
        cost.nodes_visited += report.stages.bfs.ops;
        cost.bytes_reread += report.stats.bytes_reread;
        cost.trees_decoded += 2;
        cost.modeled += report.breakdown.total();
    }
    cost
}

fn main() {
    let mut rec = Recorder::new();
    println!("=== Figure MR: N-run baseline comparison, batch+cache vs independent pairwise ===");
    println!(
        "(1 MiB/run, chunk 1 KiB, eps = {EPS:e}, runs share 50% divergence from the baseline)"
    );
    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "N",
        "nodes(batch)",
        "nodes(pair)",
        "MB(batch)",
        "MB(pair)",
        "decodes",
        "time(batch)",
        "time(pair)"
    );
    for n in [2usize, 4, 8] {
        let (base, runs) = payloads(n);
        let b = batched(&base, &runs);
        let p = pairwise(&base, &runs);
        println!(
            "{:>4} {:>14} {:>14} {:>12.2} {:>12.2} {:>5}/{:<2} {:>14} {:>14}",
            n,
            b.nodes_visited,
            p.nodes_visited,
            b.bytes_reread as f64 / 1e6,
            p.bytes_reread as f64 / 1e6,
            b.trees_decoded,
            p.trees_decoded,
            fmt_dur(b.modeled),
            fmt_dur(p.modeled),
        );
        for (metric, batch_v, pair_v) in [
            (
                "nodes_visited",
                b.nodes_visited as f64,
                p.nodes_visited as f64,
            ),
            ("bytes_reread", b.bytes_reread as f64, p.bytes_reread as f64),
            (
                "trees_decoded",
                b.trees_decoded as f64,
                p.trees_decoded as f64,
            ),
            (
                "modeled_secs",
                b.modeled.as_secs_f64(),
                p.modeled.as_secs_f64(),
            ),
        ] {
            rec.push(
                "fig_multirun",
                &[("runs", n.to_string()), ("mode", "batch".into())],
                metric,
                batch_v,
            );
            rec.push(
                "fig_multirun",
                &[("runs", n.to_string()), ("mode", "pairwise".into())],
                metric,
                pair_v,
            );
        }
        assert!(
            b.nodes_visited < p.nodes_visited,
            "batch must visit strictly fewer node pairs ({} vs {})",
            b.nodes_visited,
            p.nodes_visited
        );
        assert!(
            b.bytes_reread < p.bytes_reread,
            "batch must re-read strictly fewer bytes ({} vs {})",
            b.bytes_reread,
            p.bytes_reread
        );
        assert_eq!(b.trees_decoded as usize, n + 1, "one decode per source");
    }

    // Sublinearity: going from 2 to 8 runs must grow batch bytes
    // re-read by far less than 4x (the shared divergence is read once).
    let (base2, runs2) = payloads(2);
    let (base8, runs8) = payloads(8);
    let b2 = batched(&base2, &runs2);
    let b8 = batched(&base8, &runs8);
    let growth = b8.bytes_reread as f64 / b2.bytes_reread as f64;
    rec.push("fig_multirun", &[], "bytes_growth_2_to_8", growth);
    println!(
        "\nbatch bytes re-read grow {growth:.2}x from N=2 to N=8 (pairwise: 4.00x): \
         the shared divergence streams once, later runs pay only their unique chunks."
    );
    assert!(
        growth < 2.0,
        "cached growth should be well under the 4x of pairwise (got {growth:.2}x)"
    );
    rec.save("fig_multirun");
}
