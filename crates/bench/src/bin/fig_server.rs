//! Figure SV — comparison-as-a-service scaling: job throughput and
//! client-observed latency (p50/p95/p99) as 1, 4, and 16 concurrent
//! clients drive mixed traffic at one `reprocmp-server` daemon.
//!
//! Each client holds its own in-process session (the channel
//! transport — the same frames as TCP without kernel socket noise)
//! and round-trips a mixed stream of compare, materialize, and ingest
//! jobs, timing each submit→result cycle. The daemon runs its
//! default two-worker pool throughout, so the figure shows how the
//! DRR queue degrades *fairly*: added clients shrink each client's
//! share of the pool, stretching p99 roughly linearly while aggregate
//! throughput holds.
//!
//! The binary also emits `bench_results/server_compare_profile.json`:
//! the canonical server-path compare report, whose *modeled* stage
//! breakdown is deterministic (every job runs on a fresh sim
//! timeline). `make perf-diff` diffs it against the committed
//! baseline in `tests/goldens/`, gating server-path performance
//! regressions without wall-clock flakiness. `--profile-only` skips
//! the throughput sweep and writes just that file.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig_server --release
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use reprocmp_bench::{fmt_dur, Recorder};
use reprocmp_server::{
    execute_spec, pair, serve_connection, JobSpec, ObjectRef, Server, ServerClient, ServerConfig,
};
use serde::{Serialize, Value};

const CHUNK: usize = 4096;
const VALUES: usize = 1 << 16; // 64 Ki f32 = 256 KiB per object
const JOBS_PER_CLIENT: usize = 24;
const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

/// The vendored serde has no blanket `Serialize` for `Value`.
struct Shim(Value);

impl Serialize for Shim {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-figsv-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// Deterministic payload in a per-salt value band, so objects never
/// share chunks and dedup stays independent of submission order.
fn payload(salt: u32) -> Vec<u8> {
    (0..VALUES)
        .flat_map(|i| (salt as f32 * 1e3 + (i as f32 * 1e-3).sin()).to_le_bytes())
        .collect()
}

/// The baseline pair every compare job reads: `base@1` and a run that
/// diverges in one contiguous region.
fn seed_store(server: &Server) {
    let base = payload(1);
    let mut run = base.clone();
    // Perturb 1% of the values, mid-payload.
    for i in (VALUES / 2)..(VALUES / 2 + VALUES / 100) {
        let at = i * 4;
        let v = f32::from_le_bytes(run[at..at + 4].try_into().expect("4 bytes")) + 0.25;
        run[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
    for (version, data) in [(1u64, base), (2, run)] {
        let outcome = execute_spec(
            server.store(),
            server.engine(),
            &JobSpec::Ingest {
                name: "base".to_owned(),
                version,
                chunk_bytes: CHUNK,
                data,
            },
        );
        outcome.result.expect("seed ingest");
    }
}

fn obj(name: &str, version: u64) -> ObjectRef {
    ObjectRef {
        name: name.to_owned(),
        version,
    }
}

fn start_server(tag: &str) -> (Arc<Server>, PathBuf) {
    let root = fresh_root(tag);
    let server = Arc::new(
        Server::start(ServerConfig {
            chunk_bytes: CHUNK,
            queue_capacity: 256,
            ..ServerConfig::rooted_at(&root)
        })
        .expect("daemon start"),
    );
    seed_store(&server);
    (server, root)
}

/// One client's session: mixed traffic, each job timed submit→result.
fn drive_client(server: &Arc<Server>, client_no: usize) -> Vec<Duration> {
    let (client_end, server_end) = pair();
    let handle = {
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let mut conn = server_end;
            let _ = serve_connection(&server, &mut conn);
        })
    };
    let mut session =
        ServerClient::over(Box::new(client_end), &format!("client-{client_no}")).expect("hello");

    let mut latencies = Vec::with_capacity(JOBS_PER_CLIENT);
    let ingest_data = payload(100 + client_no as u32);
    for i in 0..JOBS_PER_CLIENT {
        let started = Instant::now();
        // 2:1:1 compare : materialize : ingest — reads dominate, as
        // they would for a daemon serving a CI fleet.
        let job = match i % 4 {
            0 | 1 => session
                .compare(obj("base", 1), obj("base", 2))
                .expect("submit"),
            2 => session.materialize("base", 1).expect("submit"),
            _ => session
                .ingest(
                    &format!("c{client_no}"),
                    i as u64 + 1,
                    CHUNK as u64,
                    &ingest_data,
                )
                .expect("submit"),
        };
        let status = session.wait(job).expect("wait");
        assert!(status.error.is_none(), "job failed: {:?}", status.error);
        latencies.push(started.elapsed());
    }
    drop(session);
    let _ = handle.join();
    latencies
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let at = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[at]
}

/// Writes the deterministic server-path compare profile that
/// `make perf-diff` gates against the committed baseline.
fn write_profile() {
    let (server, root) = start_server("profile");
    let outcome = execute_spec(
        server.store(),
        server.engine(),
        &JobSpec::Compare {
            left: obj("base", 1),
            right: obj("base", 2),
        },
    );
    let report = outcome.result.expect("profile compare");
    drop(server);
    std::fs::remove_dir_all(&root).ok();

    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create bench_results/");
        return;
    }
    let path = dir.join("server_compare_profile.json");
    let mut json = serde_json::to_string_pretty(&Shim(report)).expect("encode profile");
    json.push('\n');
    if std::fs::write(&path, json).is_err() {
        eprintln!("warning: could not write {}", path.display());
    } else {
        println!("server-path compare profile written to {}", path.display());
    }
}

fn main() {
    let profile_only = std::env::args().any(|a| a == "--profile-only");
    write_profile();
    if profile_only {
        return;
    }

    let mut rec = Recorder::new();
    println!("=== Figure SV: daemon throughput & latency vs concurrent clients ===");
    println!("(256 KiB objects, chunk {CHUNK} B, {JOBS_PER_CLIENT} mixed jobs/client, 2 workers)");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "clients", "jobs", "jobs/s", "p50", "p95", "p99"
    );
    for &clients in &CLIENT_COUNTS {
        let (server, root) = start_server(&format!("n{clients}"));
        let started = Instant::now();
        let mut all: Vec<Duration> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || drive_client(&server, c))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = started.elapsed();
        server.shutdown();
        drop(server);
        std::fs::remove_dir_all(&root).ok();

        all.sort_unstable();
        let jobs = all.len();
        let throughput = jobs as f64 / wall.as_secs_f64();
        let (p50, p95, p99) = (
            quantile(&all, 0.50),
            quantile(&all, 0.95),
            quantile(&all, 0.99),
        );
        println!(
            "{:>8} {:>8} {:>12.1} {:>10} {:>10} {:>10}",
            clients,
            jobs,
            throughput,
            fmt_dur(p50),
            fmt_dur(p95),
            fmt_dur(p99),
        );
        let params = [("clients", clients.to_string())];
        rec.push(
            "server_scaling",
            &params,
            "throughput_jobs_per_s",
            throughput,
        );
        rec.push("server_scaling", &params, "p50_ms", p50.as_secs_f64() * 1e3);
        rec.push("server_scaling", &params, "p95_ms", p95.as_secs_f64() * 1e3);
        rec.push("server_scaling", &params, "p99_ms", p99.as_secs_f64() * 1e3);
    }
    rec.save("fig_server");
}
