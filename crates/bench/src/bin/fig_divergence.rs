//! Figure DV — divergence forensics: timeline bisection vs the linear
//! history scan as the timeline grows, M ∈ {16, 64, 256} checkpoints.
//!
//! Each grid point builds one seeded divergent history pair (divergence
//! injected at the ¾ mark, persisting and growing — the restart model),
//! then localizes the first divergent iteration both ways:
//!
//! * **linear** — `CompareEngine::compare_history`, which adjudicates
//!   all M iterations and re-reads payload at every flagged one;
//! * **bisect** — `analyze::bisect_first_divergence`, ⌈log₂ M⌉
//!   metadata-only stage-1 probes plus one stage-2 confirmation at the
//!   boundary.
//!
//! Both must name the same `(iteration, rank)` — asserted here, and
//! proven exhaustively by `tests/analyze_oracle.rs`. The figure shows
//! the cost gap: comparisons (M vs 2·⌈log₂ M⌉+1) and payload bytes
//! (every divergent iteration vs the boundary alone).
//!
//! The binary also emits `bench_results/divergence_profile.json`: the
//! boundary confirmation's compare report on a simulated Lustre
//! timeline, fully deterministic, diffed by `make perf-diff` against
//! the committed baseline in `tests/goldens/`. `--profile-only` skips
//! the sweep and writes just that file.
//!
//! ```sh
//! cargo run -p reprocmp-bench --bin fig_divergence --release
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp_analyze::bisect_first_divergence;
use reprocmp_bench::Recorder;
use reprocmp_core::{CheckpointHistory, CheckpointSource, CompareEngine, EngineConfig};
use reprocmp_io::{CostModel, SimClock, Timeline};
use reprocmp_obs::Observer;

const CHUNK: usize = 4096;
const VALUES: usize = 4096; // 16 KiB per checkpoint payload
const CHURN: f64 = 0.05;
const TIMELINES: [usize; 3] = [16, 64, 256];

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: 1e-5,
        ..EngineConfig::default()
    })
}

/// Seeded history pair on one shared sim clock: M checkpoints,
/// divergence at the ¾ mark through a fixed churned index set whose
/// deltas grow with iteration.
fn seeded_pair(
    e: &CompareEngine,
    m: usize,
    clock: &SimClock,
) -> (CheckpointHistory, CheckpointHistory, u64) {
    let model = CostModel::lustre_pfs();
    let mut a = CheckpointHistory::new();
    let mut b = CheckpointHistory::new();
    let diverge_at = (m as u64) * 3 / 4;
    let mut rng = StdRng::seed_from_u64(0xD1);
    let n_churn = (VALUES as f64 * CHURN).ceil() as usize;
    let churned: Vec<usize> = (0..n_churn).map(|_| rng.gen_range(0..VALUES)).collect();
    for it in 0..m as u64 {
        let mut vrng = StdRng::seed_from_u64(0xFACE ^ it);
        let base: Vec<f32> = (0..VALUES).map(|_| vrng.gen_range(-1.0..1.0)).collect();
        let mut other = base.clone();
        if it >= diverge_at {
            let step = it - diverge_at + 1;
            for &ix in &churned {
                other[ix] += 0.01 * step as f32;
            }
        }
        let sa = CheckpointSource::in_memory_with_model(&base, e, model, Some(clock.clone()))
            .expect("source");
        let sb = CheckpointSource::in_memory_with_model(&other, e, model, Some(clock.clone()))
            .expect("source");
        a.insert(0, it, sa);
        b.insert(0, it, sb);
    }
    (a, b, diverge_at)
}

/// Writes the deterministic boundary-confirmation compare report that
/// `make perf-diff` gates against the committed baseline.
fn write_profile() {
    let e = engine();
    let clock = SimClock::new();
    let (a, b, _) = seeded_pair(&e, 64, &clock);
    let bis = bisect_first_divergence(&e, &a, &b, &Timeline::sim(clock), &Observer::disabled())
        .expect("bisect");
    let report = bis.boundary_report.expect("boundary report");

    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create bench_results/");
        return;
    }
    let path = dir.join("divergence_profile.json");
    let mut json = serde_json::to_string_pretty(&report).expect("encode profile");
    json.push('\n');
    if std::fs::write(&path, json).is_err() {
        eprintln!("warning: could not write {}", path.display());
    } else {
        println!("divergence boundary profile written to {}", path.display());
    }
}

fn main() {
    let profile_only = std::env::args().any(|a| a == "--profile-only");
    write_profile();
    if profile_only {
        return;
    }

    let mut rec = Recorder::new();
    println!("=== Figure DV: bisection vs linear scan over M checkpoints ===");
    println!("({VALUES} f32/checkpoint, chunk {CHUNK} B, churn {CHURN}, divergence at 3M/4)");
    println!(
        "{:>6} {:>10} {:>10} {:>14} {:>14} {:>14}",
        "M", "linear", "bisect", "linear payld", "bisect payld", "bisect meta"
    );
    for &m in &TIMELINES {
        let e = engine();
        let clock = SimClock::new();
        let (a, b, diverge_at) = seeded_pair(&e, m, &clock);
        let timeline = Timeline::sim(clock);

        let linear = e.compare_history(&a, &b).expect("linear scan");
        let bis =
            bisect_first_divergence(&e, &a, &b, &timeline, &Observer::disabled()).expect("bisect");
        assert_eq!(
            bis.first_divergence,
            linear.first_divergence(),
            "bisection disagrees with the linear scan at M={m}"
        );
        assert_eq!(
            bis.first_divergence,
            Some((diverge_at, 0)),
            "wrong boundary at M={m}"
        );

        let linear_payload = linear.total_bytes_reread();
        println!(
            "{:>6} {:>10} {:>10} {:>14} {:>14} {:>14}",
            m,
            m, // the linear scan adjudicates every iteration
            bis.comparisons(),
            linear_payload,
            bis.payload_bytes_read,
            bis.probes.metadata_bytes_read,
        );

        let params = [("m", m.to_string())];
        rec.push("fig_divergence", &params, "linear_comparisons", m as f64);
        rec.push(
            "fig_divergence",
            &params,
            "bisect_comparisons",
            bis.comparisons() as f64,
        );
        rec.push(
            "fig_divergence",
            &params,
            "linear_payload_bytes",
            linear_payload as f64,
        );
        rec.push(
            "fig_divergence",
            &params,
            "bisect_payload_bytes",
            bis.payload_bytes_read as f64,
        );
        rec.push(
            "fig_divergence",
            &params,
            "bisect_metadata_bytes",
            bis.probes.metadata_bytes_read as f64,
        );
    }
    rec.save("fig_divergence");
}
