//! Wall-clock overhead of the I/O engines themselves (ring
//! round-trips, pipeline slicing, page bookkeeping) on cost-free
//! storage — the engine-implementation companion to Figure 9's
//! modeled device times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reprocmp_io::cost::OpSpec;
use reprocmp_io::pipeline::{read_all, BackendKind, PipelineConfig};
use reprocmp_io::{MemStorage, MmapSim, UringSim};
use std::sync::Arc;

fn scattered_ops(file_len: usize, chunk: usize, every: usize) -> Vec<OpSpec> {
    (0..file_len / chunk)
        .filter(|i| i % every == 3)
        .map(|i| ((i * chunk) as u64, chunk))
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("scattered_read_engines");
    group.sample_size(20);
    let file_len = 16 << 20;
    let data: Vec<u8> = (0..file_len).map(|i| (i % 251) as u8).collect();
    let ops = scattered_ops(file_len, 4096, 16);
    let bytes: u64 = ops.iter().map(|&(_, l)| l as u64).sum();
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("uring_sim", |b| {
        b.iter_with_setup(
            || UringSim::new(MemStorage::free(data.clone()), 4, 64),
            |mut ring| {
                ring.read_scattered(std::hint::black_box(&ops)).unwrap();
            },
        );
    });
    group.bench_function("mmap_sim", |b| {
        b.iter_with_setup(
            || MmapSim::new(MemStorage::free(data.clone())),
            |map| {
                map.read_scattered(std::hint::black_box(&ops)).unwrap();
            },
        );
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_pipeline");
    group.sample_size(20);
    let file_len = 16 << 20;
    let data: Vec<u8> = vec![7u8; file_len];
    let storage: Arc<MemStorage> = Arc::new(MemStorage::free(data));
    let ops = scattered_ops(file_len, 16 << 10, 4);
    let bytes: u64 = ops.iter().map(|&(_, l)| l as u64).sum();
    group.throughput(Throughput::Bytes(bytes));

    for backend in [BackendKind::Uring, BackendKind::Blocking] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let cfg = PipelineConfig {
                    backend,
                    ..PipelineConfig::default()
                };
                b.iter(|| {
                    read_all(
                        Arc::clone(&storage) as Arc<dyn reprocmp_io::Storage>,
                        &ops,
                        cfg,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_pipeline);
criterion_main!(benches);
