//! Flight-recorder overhead benchmarks: a journaled end-to-end
//! comparison against the identical unjournaled one (the cost of
//! recording every chunk read, slice fill, and span), and the raw
//! per-event cost of the journal's emit path, enabled and disabled
//! (the disabled path is the one every instrumented hot loop pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reprocmp_bench::{engine_for, DivergenceSpec, DivergentPair};
use reprocmp_core::CheckpointSource;
use reprocmp_io::Timeline;
use reprocmp_obs::{EventKind, Journal, ObsClock, Observer};

fn bench_journaled_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("flight_recorder");
    group.sample_size(10);
    let pair = DivergentPair::generate(1 << 20, DivergenceSpec::hacc_like(), 42);
    group.throughput(Throughput::Bytes(2 * pair.bytes()));

    let engine = engine_for(16 << 10, 1e-7);
    let a = CheckpointSource::in_memory(&pair.run1, &engine).unwrap();
    let b = CheckpointSource::in_memory(&pair.run2, &engine).unwrap();

    for journaled in [false, true] {
        let label = if journaled {
            "journal_on"
        } else {
            "journal_off"
        };
        group.bench_with_input(
            BenchmarkId::new("compare", label),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| {
                    let timeline = Timeline::wall();
                    let obs = if journaled {
                        Observer::with_journal(timeline.obs_clock())
                    } else {
                        Observer::disabled()
                    };
                    engine.compare_observed(a, b, &timeline, &obs).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_emit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_emit");
    group.throughput(Throughput::Elements(1));

    let disabled = Journal::disabled();
    group.bench_function("disabled", |bch| {
        bch.iter(|| {
            disabled.emit(
                "lane",
                EventKind::IoSubmit {
                    ops: 1,
                    bytes: 4096,
                    queue_depth: 64,
                },
            );
        });
    });

    let enabled = Journal::new(ObsClock::wall());
    group.bench_function("enabled", |bch| {
        bch.iter(|| {
            enabled.emit(
                "lane",
                EventKind::IoSubmit {
                    ops: 1,
                    bytes: 4096,
                    queue_depth: 64,
                },
            );
        });
    });
    group.finish();
}

criterion_group!(benches, bench_journaled_compare, bench_emit_path);
criterion_main!(benches);
