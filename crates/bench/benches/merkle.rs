//! Microbenchmarks of Merkle-tree construction (serial vs threaded —
//! the wall-clock companion to the modeled Figure 8) and the pruning
//! BFS comparison against a full leaf scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reprocmp_device::Device;
use reprocmp_hash::{ChunkHasher, Quantizer};
use reprocmp_merkle::{compare_trees, MerkleTree};

fn data(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    let values = data(1 << 20); // 4 MiB
    let hasher = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
    group.throughput(Throughput::Bytes((values.len() * 4) as u64));
    group.sample_size(10);
    for (name, device) in [
        ("serial", Device::host_serial()),
        ("parallel", Device::host_auto()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &values, |b, values| {
            b.iter(|| {
                MerkleTree::build_from_f32(std::hint::black_box(values), 4096, &hasher, &device)
            });
        });
    }
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_compare");
    let base = data(1 << 20);
    let mut other = base.clone();
    other[500_000] += 1.0; // one divergent chunk
    let hasher = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
    let dev = Device::host_serial();
    let ta = MerkleTree::build_from_f32(&base, 4096, &hasher, &dev);
    let tb = MerkleTree::build_from_f32(&other, 4096, &hasher, &dev);

    group.bench_function("pruning_bfs", |b| {
        b.iter(|| compare_trees(std::hint::black_box(&ta), &tb, &dev, 64).unwrap());
    });
    group.bench_function("full_leaf_scan", |b| {
        b.iter(|| {
            (0..ta.leaf_count())
                .filter(|&i| ta.leaf(i) != tb.leaf(i))
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_compare);
criterion_main!(benches);
