//! Capture-side overhead: what the application pays at checkpoint
//! time. Supports the paper's §2.5.1 claim that tree creation is
//! cheap enough to "minimize the interruptions to the application":
//! metadata hashing vs the checkpoint write itself vs a compacted
//! append.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reprocmp_bench::{engine_for, DivergenceSpec, DivergentPair};
use reprocmp_core::CompactionStore;
use reprocmp_veloc::{Client, VelocConfig};

fn bench_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("capture_side");
    group.sample_size(10);
    let pair = DivergentPair::generate(1 << 20, DivergenceSpec::hacc_like(), 5);
    let values = &pair.run1;
    group.throughput(Throughput::Bytes((values.len() * 4) as u64));

    // Metadata hashing alone, per chunk size.
    for chunk in [4096usize, 64 << 10] {
        let engine = engine_for(chunk, 1e-5);
        group.bench_with_input(
            BenchmarkId::new("build_metadata", chunk),
            values,
            |b, values| {
                b.iter(|| engine.build_metadata(std::hint::black_box(values)));
            },
        );
    }

    // The VELOC local write the metadata rides along with.
    let dir = std::env::temp_dir().join(format!("reprocmp-capture-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let client = Client::new(VelocConfig::rooted_at(&dir)).unwrap();
    let mut version = 0u64;
    group.bench_function("veloc_checkpoint_local", |b| {
        b.iter(|| {
            version += 1;
            client
                .checkpoint("bench", version, &[("x", values.as_slice())])
                .unwrap();
        });
    });
    client.wait_all().ok();
    std::fs::remove_dir_all(&dir).ok();

    // Compacted append against an almost-identical predecessor.
    let engine = engine_for(4096, 1e-5);
    group.bench_function("compaction_append_delta", |b| {
        b.iter_with_setup(
            || {
                let mut store = CompactionStore::new();
                store.append(&engine, 0, &pair.run1).unwrap();
                store
            },
            |mut store| {
                store
                    .append(&engine, 1, std::hint::black_box(&pair.run2))
                    .unwrap();
            },
        );
    });
    group.finish();
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
