//! Microbenchmarks of the error-bounded hashing primitives: Murmur3F
//! throughput, quantization, and block-chained chunk digests at the
//! evaluation's chunk sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reprocmp_hash::{murmur3::murmur3_x64_128, ChunkHasher, Quantizer};

fn bench_murmur(c: &mut Criterion) {
    let mut group = c.benchmark_group("murmur3_x64_128");
    for size in [16usize, 256, 4096, 65_536] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| murmur3_x64_128(std::hint::black_box(data), 0));
        });
    }
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize");
    let values: Vec<f32> = (0..65_536).map(|i| (i as f32).sin()).collect();
    for bound in [1e-3f64, 1e-7] {
        let q = Quantizer::new(bound).unwrap();
        group.throughput(Throughput::Bytes((values.len() * 4) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bound:e}")),
            &values,
            |b, values| {
                let mut out = Vec::new();
                b.iter(|| q.quantize_to_bytes(std::hint::black_box(values), &mut out));
            },
        );
    }
    group.finish();
}

fn bench_chunk_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_digest");
    let hasher = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
    for chunk_bytes in [4096usize, 65_536, 512 << 10] {
        let values = vec![1.25f32; chunk_bytes / 4];
        group.throughput(Throughput::Bytes(chunk_bytes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(chunk_bytes),
            &values,
            |b, values| {
                let mut scratch = Vec::new();
                b.iter(|| {
                    hasher.hash_chunk_with_scratch(std::hint::black_box(values), &mut scratch)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_murmur, bench_quantize, bench_chunk_hash);
criterion_main!(benches);
