//! Wall-clock end-to-end comparison benchmarks on cost-free in-memory
//! storage: our engine vs the Direct and AllClose baselines, at a
//! loose and a tight bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reprocmp_bench::{engine_for, DivergenceSpec, DivergentPair};
use reprocmp_core::{AllClose, CheckpointSource, Direct};

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let pair = DivergentPair::generate(1 << 20, DivergenceSpec::hacc_like(), 99);
    group.throughput(Throughput::Bytes(2 * pair.bytes()));

    for eps in [1e-3f64, 1e-7] {
        let engine = engine_for(16 << 10, eps);
        let a = CheckpointSource::in_memory(&pair.run1, &engine).unwrap();
        let b = CheckpointSource::in_memory(&pair.run2, &engine).unwrap();

        group.bench_with_input(
            BenchmarkId::new("ours", format!("{eps:e}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| engine.compare(a, b).unwrap());
            },
        );
        let direct = Direct::new(eps).unwrap();
        group.bench_with_input(
            BenchmarkId::new("direct", format!("{eps:e}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| direct.compare(a, b).unwrap());
            },
        );
        let allclose = AllClose::new(eps).unwrap();
        group.bench_with_input(
            BenchmarkId::new("allclose", format!("{eps:e}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| allclose.compare(a, b).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
