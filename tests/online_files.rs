//! Future-work features over real files: a reference history captured
//! with the VELOC client on disk, consumed by the online comparator
//! and the history API through `StdFsStorage` sources.

use reprocmp::core::{
    CheckpointHistory, CheckpointSource, CompareEngine, EngineConfig, OnlineComparator,
    OnlinePolicy, OnlineVerdict,
};
use reprocmp::veloc::{decode_checkpoint, Client, VelocConfig};
use std::path::Path;

const ITERS: [u64; 3] = [10, 20, 30];

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-6,
        ..EngineConfig::default()
    })
}

fn payload(iter: u64, perturb: Option<(usize, f32)>) -> Vec<f32> {
    let mut v: Vec<f32> = (0..4_000)
        .map(|k| ((k as f32) * 0.002 + iter as f32 * 0.1).sin())
        .collect();
    if let Some((idx, delta)) = perturb {
        v[idx] += delta;
    }
    v
}

/// Captures the reference run to disk and returns a history whose
/// sources read the *files* (payload via `StdFsStorage`, metadata from
/// sidecar tree files).
fn capture_reference(base: &Path, e: &CompareEngine) -> CheckpointHistory {
    let client = Client::new(VelocConfig::rooted_at(base)).unwrap();
    let mut history = CheckpointHistory::new();
    for &iter in &ITERS {
        let values = payload(iter, None);
        client
            .checkpoint("ref.rank0", iter, &[("obs", &values)])
            .unwrap();
        client.wait("ref.rank0", iter).unwrap();

        let ckpt_path = client.persistent_path("ref.rank0", iter);
        let bytes = std::fs::read(&ckpt_path).unwrap();
        let file = decode_checkpoint(&bytes).unwrap();

        // Sidecar metadata, as the capture side would write it.
        let tree_path = base.join(format!("ref.rank0.v{iter:06}.tree"));
        std::fs::write(&tree_path, e.encode_metadata(&values)).unwrap();

        let source = CheckpointSource::from_files(
            &ckpt_path,
            file.payload_offset,
            file.payload_len,
            &tree_path,
        )
        .unwrap();
        history.insert(0, iter, source);
    }
    history
}

#[test]
fn online_comparator_over_on_disk_reference() {
    let base = std::env::temp_dir().join(format!("reprocmp-onlinefiles-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let e = engine();
    let reference = capture_reference(&base, &e);

    let mut online = OnlineComparator::new(e.clone(), reference, OnlinePolicy::Continue);

    // Iteration 10 reproduces; 20 drifts within bound; 30 diverges.
    match online.observe(0, 10, &payload(10, None)).unwrap() {
        OnlineVerdict::Clean { bytes_read } => assert_eq!(bytes_read, 0),
        other => panic!("{other:?}"),
    }
    match online
        .observe(0, 20, &payload(20, Some((123, 5e-7))))
        .unwrap()
    {
        OnlineVerdict::Clean { .. } => {}
        other => panic!("{other:?}"),
    }
    match online
        .observe(0, 30, &payload(30, Some((2_222, 0.5))))
        .unwrap()
    {
        OnlineVerdict::Diverged {
            diff_count,
            differences,
        } => {
            assert_eq!(diff_count, 1);
            assert_eq!(differences[0].index, 2_222);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(online.first_divergence(), Some((30, 0)));
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn history_api_over_on_disk_histories() {
    let base = std::env::temp_dir().join(format!("reprocmp-histfiles-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let e = engine();
    let run1 = capture_reference(&base.join("run1"), &e);

    // Run 2 in memory (mixed storage kinds are fine): diverges from
    // iteration 20 on.
    let mut run2 = CheckpointHistory::new();
    for &iter in &ITERS {
        let perturb = if iter >= 20 {
            Some((7usize, 1e-3f32))
        } else {
            None
        };
        let values = payload(iter, perturb);
        run2.insert(0, iter, CheckpointSource::in_memory(&values, &e).unwrap());
    }

    let report = e.compare_history(&run1, &run2).unwrap();
    assert_eq!(report.first_divergence(), Some((20, 0)));
    let curve = report.diffs_by_iteration();
    assert_eq!(curve[&10], 0);
    assert_eq!(curve[&20], 1);
    assert_eq!(curve[&30], 1);
    std::fs::remove_dir_all(&base).ok();
}
