//! End-to-end integration: simulate → capture (VELOC) → hash to
//! metadata files on disk → compare through real-file sources,
//! cross-checked against the Direct baseline.

use reprocmp::core::{CheckpointSource, CompareEngine, Direct, EngineConfig};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation, SlabDecomposition};
use reprocmp::veloc::{decode_checkpoint, read_region, Client, VelocConfig};
use std::path::{Path, PathBuf};

const CHUNK: usize = 512;
// Below one ulp of the O(1) position scale (ulp(1.0) ≈ 6e-8 for f32),
// so single-rounding-difference drift — the scheduling noise the paper
// targets — is already above the bound. How far ulp-level noise
// amplifies in 30 steps depends on the RNG's permutation stream, so a
// looser bound would make this test a coin flip.
const BOUND: f64 = 1e-8;

fn temp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("reprocmp-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn capture_run(base: &Path, run: &str, order: OrderPolicy, steps: u64) {
    let client = Client::new(VelocConfig::rooted_at(base)).unwrap();
    let mut cfg = HaccConfig::small();
    cfg.particles = 1_024;
    cfg.order = order;
    let box_size = cfg.box_size;
    let mut sim = Simulation::new(cfg);
    let decomp = SlabDecomposition::new(2);
    for step in 1..=steps {
        sim.step();
        if step % 10 == 0 {
            for rank in 0..2 {
                let regions = decomp.rank_regions(sim.particles(), box_size, rank);
                let borrowed: Vec<(&str, &[f32])> =
                    regions.iter().map(|(n, v)| (*n, v.as_slice())).collect();
                client
                    .checkpoint(&format!("{run}.rank{rank}"), step, &borrowed)
                    .unwrap();
            }
        }
    }
    client.wait_all().unwrap();
}

/// Loads one captured checkpoint's fields, aligned to a common prefix
/// per field with its cross-run partner.
fn aligned_values(bytes1: &[u8], bytes2: &[u8]) -> (Vec<f32>, Vec<f32>) {
    let f1 = decode_checkpoint(bytes1).unwrap();
    let f2 = decode_checkpoint(bytes2).unwrap();
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for field in reprocmp::hacc::CHECKPOINT_FIELDS {
        let a = read_region(bytes1, &f1, field).unwrap();
        let b = read_region(bytes2, &f2, field).unwrap();
        let common = a.len().min(b.len());
        v1.extend_from_slice(&a[..common]);
        v2.extend_from_slice(&b[..common]);
    }
    (v1, v2)
}

#[test]
fn full_pipeline_from_simulation_to_verdict() {
    let base = temp("pipeline");
    capture_run(&base, "run1", OrderPolicy::Shuffled { seed: 10 }, 30);
    capture_run(&base, "run2", OrderPolicy::Shuffled { seed: 20 }, 30);

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: BOUND,
        ..EngineConfig::default()
    });
    let direct = Direct::new(BOUND).unwrap();
    let client = Client::new(VelocConfig::rooted_at(&base)).unwrap();

    let mut any_diffs = 0u64;
    for iter in [10u64, 20, 30] {
        for rank in 0..2usize {
            let b1 =
                std::fs::read(client.persistent_path(&format!("run1.rank{rank}"), iter)).unwrap();
            let b2 =
                std::fs::read(client.persistent_path(&format!("run2.rank{rank}"), iter)).unwrap();
            let (v1, v2) = aligned_values(&b1, &b2);

            let a = CheckpointSource::in_memory(&v1, &engine).unwrap();
            let b = CheckpointSource::in_memory(&v2, &engine).unwrap();
            let ours = engine.compare(&a, &b).unwrap();
            let theirs = direct.compare(&a, &b).unwrap();

            // The headline correctness property: our method finds
            // exactly what exhaustive comparison finds.
            assert_eq!(
                ours.stats.diff_count, theirs.stats.diff_count,
                "iter {iter} rank {rank}"
            );
            let oi: Vec<u64> = ours.differences.iter().map(|d| d.index).collect();
            let ti: Vec<u64> = theirs.differences.iter().map(|d| d.index).collect();
            assert_eq!(oi, ti, "difference locations must agree");

            // And it must do so while reading less data.
            assert!(ours.stats.bytes_reread <= theirs.stats.bytes_reread);
            any_diffs += ours.stats.diff_count;
        }
    }
    // Two shuffled runs over 30 steps should have drifted somewhere.
    assert!(
        any_diffs > 0,
        "no divergence found in a nondeterministic pair"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn deterministic_runs_reproduce_bitwise_through_the_whole_stack() {
    let base = temp("deterministic");
    capture_run(&base, "run1", OrderPolicy::Sequential, 20);
    capture_run(&base, "run2", OrderPolicy::Sequential, 20);

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: 1e-12, // essentially bitwise
        ..EngineConfig::default()
    });
    let client = Client::new(VelocConfig::rooted_at(&base)).unwrap();
    for iter in [10u64, 20] {
        for rank in 0..2usize {
            let b1 =
                std::fs::read(client.persistent_path(&format!("run1.rank{rank}"), iter)).unwrap();
            let b2 =
                std::fs::read(client.persistent_path(&format!("run2.rank{rank}"), iter)).unwrap();
            let (v1, v2) = aligned_values(&b1, &b2);
            assert_eq!(v1, v2, "sequential runs must be bitwise identical");
            let a = CheckpointSource::in_memory(&v1, &engine).unwrap();
            let b = CheckpointSource::in_memory(&v2, &engine).unwrap();
            let report = engine.compare(&a, &b).unwrap();
            assert!(report.identical());
            assert_eq!(
                report.stats.chunks_flagged, 0,
                "identical data flags nothing"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn compare_through_real_files_on_disk() {
    let base = temp("files");
    // Two raw payload files + their metadata files.
    let values: Vec<f32> = (0..20_000).map(|i| (i as f32 * 0.003).cos()).collect();
    let mut tweaked = values.clone();
    tweaked[15_000] += 0.25;

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 1024,
        error_bound: 1e-5,
        ..EngineConfig::default()
    });

    let write_pair = |name: &str, vals: &[f32]| -> (PathBuf, PathBuf) {
        let data_path = base.join(format!("{name}.f32"));
        let meta_path = base.join(format!("{name}.tree"));
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&data_path, &bytes).unwrap();
        std::fs::write(&meta_path, engine.encode_metadata(vals)).unwrap();
        (data_path, meta_path)
    };

    let (d1, m1) = write_pair("run1", &values);
    let (d2, m2) = write_pair("run2", &tweaked);

    let a = CheckpointSource::from_files(&d1, 0, 80_000, &m1).unwrap();
    let b = CheckpointSource::from_files(&d2, 0, 80_000, &m2).unwrap();
    let report = engine.compare(&a, &b).unwrap();

    assert_eq!(report.stats.diff_count, 1);
    assert_eq!(report.differences[0].index, 15_000);
    // One 1 KiB chunk re-read out of ~79.
    assert_eq!(report.stats.chunks_flagged, 1);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn restart_resumes_a_simulation_state() {
    let base = temp("restart");
    let client = Client::new(VelocConfig::rooted_at(&base)).unwrap();
    let mut cfg = HaccConfig::small();
    cfg.particles = 256;
    let mut sim = Simulation::new(cfg);
    sim.run(5);
    let p = sim.particles();
    client
        .checkpoint(
            "state",
            5,
            &[("x", p.x.as_slice()), ("vx", p.vx.as_slice())],
        )
        .unwrap();
    client.wait_all().unwrap();

    let (ver, regions) = client.restart_latest("state").unwrap().unwrap();
    assert_eq!(ver, 5);
    assert_eq!(regions["x"], sim.particles().x);
    assert_eq!(regions["vx"], sim.particles().vx);
    std::fs::remove_dir_all(&base).ok();
}
