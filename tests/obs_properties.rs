//! Property tests over the observability layer: span trees are
//! well-nested, registry-backed metrics agree with the legacy counter
//! plumbing on every pipeline backend, histogram totals track counter
//! sums, and the stage breakdown stays consistent with the phase
//! timers.

use proptest::prelude::*;
use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::device::Device;
use reprocmp::io::{
    BackendKind, CostModel, MemStorage, PipelineConfig, PipelineMetrics, SimClock, StreamPipeline,
    Timeline,
};
use reprocmp::obs::{ObsClock, Registry, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------

/// A strictly monotonic test clock: every reading is one tick later
/// than the previous one, so interval containment is unambiguous.
fn ticking_clock() -> ObsClock {
    let ticks = AtomicU64::new(0);
    ObsClock::from_fn(move || Duration::from_nanos(ticks.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any push/pop program produces a well-nested span forest: closed
    /// intervals, parents preceding children, depths tracking the
    /// stack, and every child interval contained in its parent's.
    #[test]
    fn span_trees_are_well_nested(program in proptest::collection::vec(0u8..3, 0..64)) {
        let tracer = Tracer::new(ticking_clock());
        let mut live = Vec::new();
        for (i, op) in program.iter().enumerate() {
            if *op == 0 {
                drop(live.pop()); // no-op when the stack is empty
            } else {
                live.push(tracer.span(format!("s{i}")));
            }
        }
        // Close the remaining spans innermost-first (a Vec drops
        // front-to-back, which would close parents before children).
        while live.pop().is_some() {}

        let records = tracer.records();
        for (i, r) in records.iter().enumerate() {
            prop_assert!(r.start <= r.end, "span {i} never closed cleanly");
            match r.parent {
                None => prop_assert_eq!(r.depth, 0),
                Some(p) => {
                    let p = usize::try_from(p).unwrap();
                    prop_assert!(p < i, "parent {p} must precede child {i}");
                    let parent = &records[p];
                    prop_assert_eq!(r.depth, parent.depth + 1);
                    prop_assert!(parent.start <= r.start, "child {i} starts before parent {p}");
                    prop_assert!(r.end <= parent.end, "child {i} outlives parent {p}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pipeline metrics across backends
// ---------------------------------------------------------------------

fn pipeline_config(backend: BackendKind) -> PipelineConfig {
    PipelineConfig {
        backend,
        slice_bytes: 4 << 10,
        io_threads: 2,
        queue_depth: 8,
        ..PipelineConfig::default()
    }
}

/// Chops `total` bytes into ops of varying sizes from `cuts`.
fn ops_over(total: usize, cuts: &[usize]) -> Vec<(u64, usize)> {
    let mut ops = Vec::new();
    let mut offset = 0usize;
    let mut i = 0usize;
    while offset < total {
        let len = cuts[i % cuts.len()].clamp(1, total - offset);
        ops.push((offset as u64, len));
        offset += len;
        i += 1;
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The registry-backed counters report exactly what the legacy
    /// detached `RingCounters` report for the same op stream, on every
    /// backend — swapping the plumbing changed no numbers. Histogram
    /// totals agree with the counter sums: `read_bytes` has one sample
    /// per completed op and its sum is the bytes moved.
    #[test]
    fn registry_metrics_match_legacy_counters_on_every_backend(
        payload_kib in 1usize..32,
        cuts in proptest::collection::vec(64usize..2048, 1..6),
    ) {
        let total = payload_kib << 10;
        let bytes: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let ops = ops_over(total, &cuts);
        let expected_bytes: u64 = ops.iter().map(|&(_, len)| len as u64).sum();

        for backend in [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking] {
            let storage: Arc<MemStorage> = Arc::new(MemStorage::free(bytes.clone()));
            let config = pipeline_config(backend);

            // Legacy path: detached counters, no histograms.
            let legacy = PipelineMetrics::default();
            let legacy_counters = Arc::clone(&legacy.counters);
            let pipe = StreamPipeline::start_observed(
                Arc::clone(&storage) as _, ops.clone(), config, legacy,
            );
            for slice in pipe {
                prop_assert!(slice.is_ok());
            }

            // Registry path: same ops, counters bound into a registry.
            let registry = Registry::new();
            let observed = PipelineMetrics::in_registry(&registry, "io");
            let observed_counters = Arc::clone(&observed.counters);
            let pipe = StreamPipeline::start_observed(
                Arc::clone(&storage) as _, ops.clone(), config, observed,
            );
            for slice in pipe {
                prop_assert!(slice.is_ok());
            }

            let want = legacy_counters.snapshot();
            let got = observed_counters.snapshot();
            prop_assert!(got == want, "counter drift on {backend:?}: {got:?} vs {want:?}");

            // The registry sees the same totals through the names.
            prop_assert_eq!(registry.counter("io.submitted").get(), want.submitted);
            prop_assert_eq!(registry.counter("io.completed").get(), want.completed);
            prop_assert_eq!(registry.counter("io.retried").get(), want.retried);
            prop_assert_eq!(registry.counter("io.gave_up").get(), want.gave_up);
            prop_assert_eq!(want.completed, ops.len() as u64);

            // Histogram totals == counter sums.
            let hist = registry.histogram("io.read_bytes").snapshot();
            // One sample per completed op; its sum is the bytes moved.
            prop_assert_eq!(hist.count, want.completed);
            prop_assert_eq!(hist.sum, expected_bytes);
        }
    }
}

// ---------------------------------------------------------------------
// Stage breakdown consistency
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On a simulated timeline the compare-side stage times partition
    /// the phase timers: BFS equals the tree walk, stream + verify
    /// equals the direct pass, and the whole compare side never
    /// exceeds the phase-timer total. Capture phases account for both
    /// runs' bytes.
    #[test]
    fn stage_breakdown_is_consistent_with_phase_timers(
        n_chunks in 1usize..24,
        flips in proptest::collection::vec(0usize..24usize * 256, 0..12),
    ) {
        let n_values = n_chunks * 256; // 1 KiB chunks
        let mut run1: Vec<f32> = (0..n_values).map(|i| (i % 97) as f32 * 0.25).collect();
        let mut run2 = run1.clone();
        for &f in &flips {
            if f < n_values {
                run2[f] += 1.0;
            }
        }
        // Keep at least one value different so stage 2 runs sometimes,
        // and none in other cases — both paths must hold.
        let _ = &mut run1;

        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 1024,
            error_bound: 1e-3,
            device: Device::sim_cpu_core(),
            ..EngineConfig::default()
        });
        let clock = SimClock::new();
        let model = CostModel::lustre_pfs();
        let a = CheckpointSource::in_memory_with_model(&run1, &engine, model, Some(clock.clone()))
            .unwrap();
        let b = CheckpointSource::in_memory_with_model(&run2, &engine, model, Some(clock.clone()))
            .unwrap();
        let report = engine
            .compare_with_timeline(&a, &b, &Timeline::sim(clock))
            .unwrap();

        let s = &report.stages;
        prop_assert_eq!(s.bfs.time, report.breakdown.compare_tree);
        prop_assert_eq!(
            s.stage2_stream.time + s.verify.time,
            report.breakdown.compare_direct
        );
        let compare_side = s.bfs.time + s.stage2_stream.time + s.verify.time;
        prop_assert!(compare_side <= report.breakdown.total());
        prop_assert!(s.total_time() >= compare_side);

        // Capture covers both runs: quantize touched every byte twice.
        prop_assert_eq!(s.quantize.bytes, 2 * report.stats.total_bytes);
        prop_assert_eq!(s.quantize.ops as usize, 2 * n_values);
        prop_assert!(!s.leaf_hash.is_zero());
        prop_assert!(!s.level_build.is_zero());

        // Stage-2 accounting matches the I/O counters.
        prop_assert_eq!(s.stage2_stream.ops, report.io.submitted);
        prop_assert_eq!(s.verify.bytes, 2 * report.stats.bytes_reread);
    }
}

// ---------------------------------------------------------------------
// Batch scheduler cache accounting
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The metadata cache's ledger obeys exact partition invariants on
    /// random multi-run workloads: per job, nodes visited with the
    /// cache plus `nodes_saved` equals the nodes the same job visits
    /// with the cache disabled (and likewise for stage-2 bytes), hits
    /// plus misses partition the lookups, and the registry's `cache.*`
    /// counters mirror the batch ledger exactly.
    #[test]
    fn cache_ledger_partitions_the_uncached_work(
        n_chunks in 4usize..32,
        shared in proptest::collection::vec(0usize..32usize * 128, 1..10),
        unique in proptest::collection::vec(0usize..32usize * 128, 0..6),
        n_runs in 2usize..5,
    ) {
        use reprocmp::core::BatchConfig;
        use reprocmp::obs::Observer;

        let n_values = n_chunks * 128; // 512 B chunks
        let base: Vec<f32> = (0..n_values).map(|i| (i % 89) as f32 * 0.5).collect();
        let mut with_shared = base.clone();
        for &f in &shared {
            if f < n_values {
                with_shared[f] += 2.0;
            }
        }
        let runs_values: Vec<Vec<f32>> = (0..n_runs)
            .map(|r| {
                let mut v = with_shared.clone();
                for (k, &f) in unique.iter().enumerate() {
                    // Perturb run-specific positions so some chunks are
                    // unique to each run and stay cache misses.
                    let idx = (f + r * 37 + k) % n_values;
                    v[idx] += 1.0 + r as f32;
                }
                v
            })
            .collect();

        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 512,
            error_bound: 1e-3,
            lane_hint: Some(4),
            ..EngineConfig::default()
        });
        let baseline = CheckpointSource::in_memory(&base, &engine).unwrap();
        let runs: Vec<CheckpointSource> = runs_values
            .iter()
            .map(|v| CheckpointSource::in_memory(v, &engine).unwrap())
            .collect();

        let run_batch = |use_cache: bool| {
            let obs = Observer::default();
            let mut cache = reprocmp::core::MetaCache::new();
            let batch = engine
                .compare_many_observed(
                    &baseline,
                    &runs,
                    &Timeline::wall(),
                    &obs,
                    &BatchConfig { use_cache, ..BatchConfig::default() },
                    &mut cache,
                )
                .unwrap();
            (batch, obs.registry)
        };
        let (cached, registry) = run_batch(true);
        let (uncached, _) = run_batch(false);

        // The uncached ledger is all-zero except misses.
        prop_assert_eq!(uncached.cache.node_hits, 0);
        prop_assert_eq!(uncached.cache.verdict_hits, 0);
        prop_assert_eq!(uncached.cache.nodes_saved, 0);
        prop_assert_eq!(uncached.cache.bytes_saved, 0);

        for (jc, ju) in cached.jobs.iter().zip(&uncached.jobs) {
            // Partition: cached visits + saved == uncached visits.
            prop_assert_eq!(
                jc.report.stages.bfs.ops + jc.report.cache.nodes_saved,
                ju.report.stages.bfs.ops
            );
            prop_assert_eq!(
                jc.report.stats.bytes_reread + jc.report.cache.bytes_saved,
                ju.report.stats.bytes_reread
            );
            // Verdict lookups partition the flagged chunks (in-memory
            // sources always carry raw digests).
            prop_assert_eq!(
                jc.report.cache.verdict_hits + jc.report.cache.verdict_misses,
                jc.report.stats.chunks_flagged
            );
            // Verdicts are unchanged by caching.
            prop_assert_eq!(jc.report.stats.diff_count, ju.report.stats.diff_count);
        }

        // The batch ledger is the per-job ledgers summed, and the
        // registry's cache.* counters mirror it exactly.
        let summed = cached
            .jobs
            .iter()
            .fold(reprocmp::obs::CacheStats::default(), |acc, j| {
                acc.merged(j.report.cache)
            });
        prop_assert_eq!(cached.cache, summed);
        prop_assert_eq!(registry.counter("cache.node_hits").get(), summed.node_hits);
        prop_assert_eq!(registry.counter("cache.node_misses").get(), summed.node_misses);
        prop_assert_eq!(registry.counter("cache.verdict_hits").get(), summed.verdict_hits);
        prop_assert_eq!(
            registry.counter("cache.verdict_misses").get(),
            summed.verdict_misses
        );
        prop_assert_eq!(
            registry.counter("cache.short_circuits").get(),
            summed.short_circuits
        );
        prop_assert_eq!(registry.counter("cache.nodes_saved").get(), summed.nodes_saved);
        prop_assert_eq!(registry.counter("cache.bytes_saved").get(), summed.bytes_saved);
    }
}
