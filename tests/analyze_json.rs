//! Golden lock-in for the `analyze` JSON document.
//!
//! A fixed-seed divergent history pair runs through the full forensics
//! pipeline (bisection → front tracking → per-region attribution) and
//! the serialized [`DivergenceReport`] is compared byte-for-byte
//! against `tests/goldens/analyze_divergence.json`. The report
//! contains no durations — only counts and bytes — so the golden is
//! exact on every host.
//!
//! `legacy_analyze_v1.json` is the document as the schema's first
//! consumers saw it (bisection + front only, before per-region
//! attribution); the additive-schema test proves every field they
//! read is still present with the identical value.
//!
//! To regenerate after an *intentional* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test analyze_json
//! git diff tests/goldens/   # review before committing
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::analyze::attribution::{RegionDType, TypedRegionMap};
use reprocmp::analyze::{analyze, AnalyzeOptions};
use reprocmp::core::{CheckpointHistory, CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::io::Timeline;
use reprocmp::obs::Observer;
use std::path::PathBuf;

const CHUNK: usize = 256; // 64 values per chunk
const VALUES: usize = 1024;

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: 1e-5,
        max_recorded_diffs: 8,
        ..EngineConfig::default()
    })
}

/// Fixed-seed history pair: 12 checkpoints, divergence at iteration 60
/// spreading forward through a fixed churned index set.
fn seeded_pair(e: &CompareEngine) -> (CheckpointHistory, CheckpointHistory) {
    let mut a = CheckpointHistory::new();
    let mut b = CheckpointHistory::new();
    let mut rng = StdRng::seed_from_u64(2024);
    let churned: Vec<usize> = (0..VALUES / 16).map(|_| rng.gen_range(0..VALUES)).collect();
    for it in (0..12u64).map(|i| i * 10) {
        let mut vrng = StdRng::seed_from_u64(0x5EED ^ it);
        let base: Vec<f32> = (0..VALUES).map(|_| vrng.gen_range(-1.0..1.0)).collect();
        let mut other = base.clone();
        if it >= 60 {
            let step = (it - 60) / 10 + 1;
            for &ix in &churned {
                other[ix] += 0.01 * step as f32;
            }
        }
        a.insert(0, it, CheckpointSource::in_memory(&base, e).unwrap());
        b.insert(0, it, CheckpointSource::in_memory(&other, e).unwrap());
    }
    (a, b)
}

fn report_json() -> String {
    let e = engine();
    let (a, b) = seeded_pair(&e);
    let options = AnalyzeOptions {
        regions: Some(TypedRegionMap::from_regions([
            ("position", RegionDType::F32, (VALUES / 2) as u64),
            ("velocity", RegionDType::F32, (VALUES / 2) as u64),
        ])),
    };
    let report = analyze(
        &e,
        &a,
        &b,
        &Timeline::wall(),
        &Observer::disabled(),
        &options,
    )
    .expect("analyze");
    let mut json = report.to_json();
    json.push('\n');
    json
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}

#[test]
fn golden_analyze_divergence() {
    let actual = report_json();
    let path = golden_path("analyze_divergence");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        let diverged = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match diverged {
            Some((line, (a, e))) => panic!(
                "analyze golden mismatch at line {}:\n  actual:   {a}\n  expected: {e}\n\
                 (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                line + 1
            ),
            None => panic!(
                "analyze golden mismatch: lengths differ ({} vs {} bytes)",
                actual.len(),
                expected.len()
            ),
        }
    }
}

#[test]
fn report_json_is_deterministic_and_duration_free() {
    let one = report_json();
    let two = report_json();
    assert_eq!(one, two);
    assert!(one.contains("\"schema_version\": 1"));
    assert!(one.contains("\"bisection\""));
    assert!(one.contains("\"front\""));
    assert!(one.contains("\"regions\""));
    // The document carries no timing: goldens stay host-independent.
    for banned in ["secs", "nanos", "duration"] {
        assert!(!one.contains(banned), "report leaks timing: `{banned}`");
    }
}

// ---------------------------------------------------------------------
// Legacy-schema compatibility
// ---------------------------------------------------------------------

/// Minimal JSON value for schema comparisons; numbers keep their raw
/// lexemes so equality is exact.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Recursive-descent parser for the subset our documents emit (the
/// vendored `serde_json` stand-in only serializes).
fn parse_json(text: &str) -> Json {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn expect(&mut self, c: u8) {
            self.ws();
            assert_eq!(
                self.b[self.i], c,
                "expected {} at byte {}",
                c as char, self.i
            );
            self.i += 1;
        }
        fn string(&mut self) -> String {
            self.expect(b'"');
            let mut out = String::new();
            loop {
                let c = self.b[self.i];
                self.i += 1;
                match c {
                    b'"' => return out,
                    b'\\' => {
                        let e = self.b[self.i];
                        self.i += 1;
                        out.push(match e {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                    }
                    other => out.push(other as char),
                }
            }
        }
        fn value(&mut self) -> Json {
            self.ws();
            match self.b[self.i] {
                b'{' => {
                    self.i += 1;
                    let mut fields = Vec::new();
                    self.ws();
                    if self.b[self.i] == b'}' {
                        self.i += 1;
                        return Json::Obj(fields);
                    }
                    loop {
                        let key = self.string();
                        self.expect(b':');
                        fields.push((key, self.value()));
                        self.ws();
                        match self.b[self.i] {
                            b',' => self.i += 1,
                            b'}' => {
                                self.i += 1;
                                return Json::Obj(fields);
                            }
                            other => panic!("bad object separator {}", other as char),
                        }
                        self.ws();
                    }
                }
                b'[' => {
                    self.i += 1;
                    let mut items = Vec::new();
                    self.ws();
                    if self.b[self.i] == b']' {
                        self.i += 1;
                        return Json::Arr(items);
                    }
                    loop {
                        items.push(self.value());
                        self.ws();
                        match self.b[self.i] {
                            b',' => self.i += 1,
                            b']' => {
                                self.i += 1;
                                return Json::Arr(items);
                            }
                            other => panic!("bad array separator {}", other as char),
                        }
                    }
                }
                b'"' => Json::Str(self.string()),
                b't' => {
                    self.i += 4;
                    Json::Bool(true)
                }
                b'f' => {
                    self.i += 5;
                    Json::Bool(false)
                }
                b'n' => {
                    self.i += 4;
                    Json::Null
                }
                _ => {
                    let start = self.i;
                    while self.i < self.b.len()
                        && matches!(
                            self.b[self.i],
                            b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                        )
                    {
                        self.i += 1;
                    }
                    Json::Num(String::from_utf8(self.b[start..self.i].to_vec()).unwrap())
                }
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, text.len(), "trailing garbage after JSON value");
    v
}

/// Recursive *additive* comparison: every field the legacy document
/// has must exist in the current one with an additively-equal value.
fn assert_additive(legacy: &Json, current: &Json, path: &str) {
    match (legacy, current) {
        (Json::Obj(old), Json::Obj(new)) => {
            for (key, old_value) in old {
                let (_, new_value) = new
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("new schema dropped `{path}.{key}`"));
                assert_additive(old_value, new_value, &format!("{path}.{key}"));
            }
        }
        _ => assert_eq!(current, legacy, "value of `{path}` changed"),
    }
}

/// Documents written by the schema's first consumers (bisection +
/// front tracking only, before per-region attribution and boundary
/// detail) must stay readable: every field they parse is present with
/// the identical value, and the only additions since are the
/// `regions` and `boundary` sections.
#[test]
fn v1_analyze_documents_remain_readable_and_schema_is_additive() {
    let legacy_text =
        std::fs::read_to_string(golden_path("legacy_analyze_v1")).expect("legacy fixture");
    let Json::Obj(legacy) = parse_json(&legacy_text) else {
        panic!("legacy fixture is not an object")
    };
    let legacy_keys: Vec<&str> = legacy.iter().map(|(k, _)| k.as_str()).collect();
    for key in [
        "schema_version",
        "divergent",
        "iterations",
        "ranks",
        "bisection",
        "front",
    ] {
        assert!(legacy_keys.contains(&key), "legacy document lost `{key}`");
    }
    assert!(
        !legacy_keys.contains(&"regions") && !legacy_keys.contains(&"boundary"),
        "the legacy fixture must predate per-region attribution"
    );

    let current_text =
        std::fs::read_to_string(golden_path("analyze_divergence")).expect("current golden");
    let Json::Obj(current) = parse_json(&current_text) else {
        panic!("current golden is not an object")
    };
    for (key, legacy_value) in &legacy {
        let (_, current_value) = current
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("new schema dropped `{key}`"));
        assert_additive(legacy_value, current_value, key);
    }
    let added: Vec<&str> = current
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !legacy_keys.contains(k))
        .collect();
    assert_eq!(
        added,
        vec!["regions", "boundary"],
        "additions beyond the attribution sections"
    );
}
