//! The differential-oracle suite that locks in the batch scheduler.
//!
//! The oracle is the dumbest possible comparator: an element-wise
//! `|a - b| > ε` scan over the raw payloads. Everything the optimized
//! stack does — ε-quantized hashing, the pruning BFS, scattered
//! stage-2 streaming, the content-addressed metadata cache — is an
//! implementation detail that must not change a single verdict. These
//! tests pin that equivalence across every I/O backend (uring-style,
//! mmap-style, blocking) with the cache both enabled and disabled, for
//! randomly generated multi-run workloads.

use proptest::prelude::*;
use reprocmp::core::{BatchConfig, CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::io::pipeline::{BackendKind, PipelineConfig};

const BACKENDS: [BackendKind; 3] = [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking];

fn engine(chunk_bytes: usize, bound: f64, backend: BackendKind) -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes,
        error_bound: bound,
        // A small lane hint starts the BFS above the leaves so the
        // subtree cache has real work to memoize even on small trees.
        lane_hint: Some(8),
        // The oracle needs every difference, not a capped sample.
        max_recorded_diffs: 1 << 20,
        io: PipelineConfig {
            backend,
            ..PipelineConfig::default()
        },
        ..EngineConfig::default()
    })
}

/// Ground truth: indices where the runs differ beyond the bound, and
/// the set of chunks containing at least one such index.
fn oracle(a: &[f32], b: &[f32], bound: f64, chunk_bytes: usize) -> (Vec<u64>, Vec<usize>) {
    let indices: Vec<u64> = a
        .iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (x, y))| (f64::from(**x) - f64::from(**y)).abs() > bound)
        .map(|(i, _)| i as u64)
        .collect();
    let per_chunk = chunk_bytes / 4;
    let mut chunks: Vec<usize> = indices.iter().map(|&i| i as usize / per_chunk).collect();
    chunks.dedup();
    (indices, chunks)
}

fn apply(base: &[f32], perturbations: &[(usize, f32)]) -> Vec<f32> {
    let mut out = base.to_vec();
    for &(idx, delta) in perturbations {
        if idx < out.len() {
            out[idx] += delta;
        }
    }
    out
}

/// Checks one engine configuration against the oracle for a baseline
/// and a set of runs, with the cache on and off, and returns the
/// diff-index vectors (one per run) so callers can cross-check
/// configurations against each other.
fn check_against_oracle(
    backend: BackendKind,
    chunk_bytes: usize,
    bound: f64,
    base: &[f32],
    runs: &[Vec<f32>],
) -> Result<Vec<Vec<u64>>, TestCaseError> {
    let e = engine(chunk_bytes, bound, backend);
    let baseline = CheckpointSource::in_memory(base, &e).unwrap();
    let sources: Vec<CheckpointSource> = runs
        .iter()
        .map(|r| CheckpointSource::in_memory(r, &e).unwrap())
        .collect();

    let mut first: Option<Vec<Vec<u64>>> = None;
    for use_cache in [true, false] {
        let cfg = BatchConfig {
            use_cache,
            ..BatchConfig::default()
        };
        let batch = e.compare_many(&baseline, &sources, &cfg).unwrap();
        prop_assert_eq!(batch.jobs.len(), runs.len());

        let mut per_run: Vec<Vec<u64>> = Vec::new();
        for (job, run) in batch.jobs.iter().zip(runs) {
            let (want_indices, want_chunks) = oracle(base, run, bound, chunk_bytes);
            let report = &job.report;
            prop_assert!(report.fully_verified());
            prop_assert_eq!(report.stats.diff_count, want_indices.len() as u64);
            let got: Vec<u64> = report.differences.iter().map(|d| d.index).collect();
            prop_assert_eq!(&got, &want_indices);
            // Every reported value pair must be the payloads' values.
            for d in &report.differences {
                let i = d.index as usize;
                prop_assert_eq!(d.a.to_bits(), base[i].to_bits());
                prop_assert_eq!(d.b.to_bits(), run[i].to_bits());
            }
            // Conservative hashing: every oracle-mismatched chunk was
            // flagged (the reverse need not hold — false positives are
            // allowed, silent false negatives are not).
            prop_assert!(
                report.stats.chunks_flagged as usize >= want_chunks.len(),
                "flagged {} < oracle chunks {}",
                report.stats.chunks_flagged,
                want_chunks.len()
            );
            per_run.push(got);
        }
        match &first {
            None => first = Some(per_run),
            Some(reference) => {
                prop_assert_eq!(reference, &per_run);
            }
        }
    }
    Ok(first.expect("both cache modes ran"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batch scheduler reports exactly the oracle's difference set
    /// for every backend, cache on and off, on random 3-run workloads
    /// whose runs share some perturbations (exercising cache hits) and
    /// carry some of their own (exercising fresh work after hits).
    #[test]
    fn batch_scheduler_matches_the_elementwise_oracle(
        base in proptest::collection::vec(-1000.0f32..1000.0, 64..1200),
        shared in proptest::collection::vec((0usize..1200, -2.0f32..2.0), 0..12),
        unique0 in proptest::collection::vec((0usize..1200, -2.0f32..2.0), 0..6),
        unique1 in proptest::collection::vec((0usize..1200, -2.0f32..2.0), 0..6),
        unique2 in proptest::collection::vec((0usize..1200, -2.0f32..2.0), 0..6),
        chunk_pow in 4u32..8,   // 16..128 B chunks
        bound_pow in 2i32..6,   // 1e-2..1e-5
        backend_pick in 0u8..3,
    ) {
        let bound = 10f64.powi(-bound_pow);
        let chunk_bytes = 1usize << chunk_pow;
        let with_shared = apply(&base, &shared);
        let runs: Vec<Vec<f32>> = [&unique0, &unique1, &unique2]
            .iter()
            .map(|u| apply(&with_shared, u))
            .collect();
        let backend = BACKENDS[backend_pick as usize];
        check_against_oracle(backend, chunk_bytes, bound, &base, &runs)?;
    }

    /// All three backends agree with each other (and, transitively
    /// through the test above, with the oracle) on identical inputs.
    #[test]
    fn backends_are_interchangeable(
        base in proptest::collection::vec(-100.0f32..100.0, 64..600),
        shared in proptest::collection::vec((0usize..600, -1.0f32..1.0), 1..8),
        unique in proptest::collection::vec((0usize..600, -1.0f32..1.0), 0..4),
    ) {
        let bound = 1e-3;
        let chunk_bytes = 64;
        let with_shared = apply(&base, &shared);
        let runs = vec![with_shared.clone(), apply(&with_shared, &unique)];
        let mut results = Vec::new();
        for backend in BACKENDS {
            results.push(check_against_oracle(backend, chunk_bytes, bound, &base, &runs)?);
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }
}

/// A fixed scenario driven through the full cross-product of
/// 3 backends × cache on/off, so every combination is exercised on
/// every test run (proptest only samples the space).
#[test]
fn every_backend_and_cache_mode_matches_the_oracle() {
    let base: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
    // Shared divergence over the first half + per-run unique values,
    // including one sub-bound perturbation (a guaranteed hash false
    // positive candidate) and one exactly-at-bound value (must NOT
    // count: the oracle is a strict inequality).
    let mut shared = base.clone();
    for v in shared.iter_mut().take(2048) {
        *v += 0.125;
    }
    shared[3000] += 5e-4; // below the 1e-3 bound: not a difference
    let runs: Vec<Vec<f32>> = (0..3)
        .map(|r| {
            let mut v = shared.clone();
            v[3500 + 7 * r] += 0.25;
            v
        })
        .collect();

    let bound = 1e-3;
    let chunk_bytes = 64;
    let mut all: Vec<Vec<Vec<u64>>> = Vec::new();
    for backend in BACKENDS {
        let got = check_against_oracle(backend, chunk_bytes, bound, &base, &runs)
            .expect("oracle equivalence");
        all.push(got);
    }
    assert_eq!(all[0], all[1], "uring vs mmap");
    assert_eq!(all[1], all[2], "mmap vs blocking");
    // Sanity: the scenario is non-trivial — every run really diverges.
    assert!(all[0].iter().all(|diffs| diffs.len() > 2048));
}
