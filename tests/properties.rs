//! Property-based tests over the core invariants the paper's method
//! rests on.

use proptest::prelude::*;
use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::device::Device;
use reprocmp::hash::{ChunkHasher, Quantizer};
use reprocmp::merkle::{compare_trees, decode_tree, encode_tree, MerkleTree};

/// Well-behaved f32 payload values (finite, moderate magnitude).
fn value() -> impl Strategy<Value = f32> {
    (-1000.0f32..1000.0).prop_map(|v| v)
}

fn payload(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(value(), 1..max_len)
}

fn engine(chunk_bytes: usize, bound: f64) -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes,
        error_bound: bound,
        ..EngineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE conservative-hash guarantee: the engine never misses a
    /// difference the brute-force scan finds, and never invents one.
    #[test]
    fn engine_agrees_with_brute_force(
        base in payload(2_000),
        perturbations in proptest::collection::vec((0usize..2_000, -1.0f32..1.0), 0..20),
        chunk_pow in 4u32..9, // 64..1024 bytes
        bound_pow in 2i32..7, // 1e-2..1e-6
    ) {
        let bound = 10f64.powi(-bound_pow);
        let mut other = base.clone();
        for &(idx, delta) in &perturbations {
            if idx < other.len() {
                other[idx] += delta;
            }
        }
        let brute: Vec<u64> = base
            .iter()
            .zip(&other)
            .enumerate()
            .filter(|(_, (a, b))| (f64::from(**a) - f64::from(**b)).abs() > bound)
            .map(|(i, _)| i as u64)
            .collect();

        let e = engine(1usize << chunk_pow, bound);
        let a = CheckpointSource::in_memory(&base, &e).unwrap();
        let b = CheckpointSource::in_memory(&other, &e).unwrap();
        let report = e.compare(&a, &b).unwrap();

        prop_assert_eq!(report.stats.diff_count, brute.len() as u64);
        let found: Vec<u64> = report.differences.iter().map(|d| d.index).collect();
        prop_assert_eq!(found, brute);
    }

    /// Quantizer conservativeness: a difference strictly above the
    /// bound always lands in different grid cells (no false negatives
    /// at the hash level).
    #[test]
    fn quantizer_never_hides_a_real_difference(
        a in value(),
        delta_factor in 1.01f64..1e4,
        bound_pow in 1i32..7,
        positive in any::<bool>(),
    ) {
        let bound = 10f64.powi(-bound_pow);
        let delta = (bound * delta_factor) as f32 * if positive { 1.0 } else { -1.0 };
        let b = a + delta;
        // Only meaningful when f32 arithmetic preserved the gap.
        prop_assume!((f64::from(a) - f64::from(b)).abs() > bound);
        let q = Quantizer::new(bound).unwrap();
        prop_assert_ne!(q.quantize(a), q.quantize(b));
    }

    /// Quantized-equal implies within bound (the other direction).
    #[test]
    fn equal_codes_imply_within_bound(
        a in value(),
        b in value(),
        bound_pow in 1i32..7,
    ) {
        let bound = 10f64.powi(-bound_pow);
        let q = Quantizer::new(bound).unwrap();
        if q.quantize(a) == q.quantize(b) {
            prop_assert!((f64::from(a) - f64::from(b)).abs() < bound);
        }
    }

    /// The pruning BFS returns exactly the leaf-scan mismatch set, for
    /// every tree geometry and start level.
    #[test]
    fn bfs_equals_leaf_scan(
        base in payload(1_500),
        perturbations in proptest::collection::vec((0usize..1_500, 0.5f32..2.0), 0..10),
        chunk_pow in 3u32..8,
        lanes in 1usize..4096,
    ) {
        let chunk_bytes = 1usize << chunk_pow;
        let mut other = base.clone();
        for &(idx, delta) in &perturbations {
            if idx < other.len() {
                other[idx] += delta;
            }
        }
        let h = ChunkHasher::new(Quantizer::new(1e-5).unwrap());
        let dev = Device::host_serial();
        let ta = MerkleTree::build_from_f32(&base, chunk_bytes, &h, &dev);
        let tb = MerkleTree::build_from_f32(&other, chunk_bytes, &h, &dev);

        let scan: Vec<usize> = (0..ta.leaf_count())
            .filter(|&i| ta.leaf(i) != tb.leaf(i))
            .collect();
        let bfs = compare_trees(&ta, &tb, &dev, lanes).unwrap();
        prop_assert_eq!(bfs.mismatched_leaves, scan);
    }

    /// Merkle metadata round-trips through serialization.
    #[test]
    fn tree_codec_round_trip(
        data in payload(1_000),
        chunk_pow in 3u32..8,
    ) {
        let h = ChunkHasher::new(Quantizer::new(1e-4).unwrap());
        let t = MerkleTree::build_from_f32(&data, 1usize << chunk_pow, &h, &Device::host_serial());
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Checkpoint format round-trips values exactly.
    #[test]
    fn checkpoint_codec_round_trip(
        x in payload(500),
        v in payload(500),
        version in 0u64..1_000_000,
    ) {
        use reprocmp::veloc::{decode_checkpoint, encode_checkpoint, read_region};
        let bytes = encode_checkpoint(version, &[("x", &x), ("v", &v)]);
        let file = decode_checkpoint(&bytes).unwrap();
        prop_assert_eq!(file.checkpoint_version, version);
        let rx = read_region(&bytes, &file, "x").unwrap();
        let rv = read_region(&bytes, &file, "v").unwrap();
        prop_assert_eq!(rx, x);
        prop_assert_eq!(rv, v);
    }

    /// The streaming pipeline delivers every requested byte exactly
    /// once, in order, for any op layout and backend.
    #[test]
    fn pipeline_delivers_all_bytes(
        chunks in proptest::collection::vec(1usize..2_000, 1..40),
        slice_bytes in 512usize..8_192,
        backend_pick in 0u8..3,
    ) {
        use reprocmp::io::pipeline::{read_all, BackendKind, PipelineConfig};
        use reprocmp::io::MemStorage;
        use std::sync::Arc;

        let total: usize = chunks.iter().sum();
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let mut ops = Vec::new();
        let mut off = 0u64;
        for &len in &chunks {
            ops.push((off, len));
            off += len as u64;
        }
        let backend = [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking]
            [backend_pick as usize];
        let cfg = PipelineConfig {
            backend,
            slice_bytes,
            ..PipelineConfig::default()
        };
        let out = read_all(Arc::new(MemStorage::free(data.clone())), &ops, cfg).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Robustness invariant: a transient outage shorter than the retry
    /// budget is invisible — under `FirstN { n }` faults with more than
    /// `n` attempts allowed, a Quarantine-policy comparison produces a
    /// report identical to the fault-free run (nothing quarantined,
    /// same differences).
    #[test]
    fn retried_transient_faults_never_change_the_report(
        base in payload(2_000),
        perturbations in proptest::collection::vec((0usize..2_000, 0.5f32..1.5), 1..10),
        faults in 0u64..6,
    ) {
        use reprocmp::core::FailurePolicy;
        use reprocmp::io::{FaultPlan, FaultyStorage, RetryPolicy};
        use std::sync::Arc;

        let mut other = base.clone();
        for &(idx, delta) in &perturbations {
            if idx < other.len() {
                other[idx] += delta;
            }
        }

        let make_engine = || CompareEngine::new(EngineConfig {
            chunk_bytes: 64,
            error_bound: 1e-4,
            failure_policy: FailurePolicy::Quarantine,
            // Only the first `faults` reads fail, so `faults + 1`
            // attempts always suffice.
            io: reprocmp::io::PipelineConfig {
                retry: RetryPolicy::with_attempts(faults as u32 + 1),
                ..reprocmp::io::PipelineConfig::default()
            },
            ..EngineConfig::default()
        });

        let e = make_engine();
        let a = CheckpointSource::in_memory(&base, &e).unwrap();
        let mut b = CheckpointSource::in_memory(&other, &e).unwrap();
        b.data = Arc::new(FaultyStorage::new(
            Arc::clone(&b.data),
            FaultPlan::FirstN { n: faults },
        ));
        let report = e.compare(&a, &b).unwrap();

        let clean_a = CheckpointSource::in_memory(&base, &e).unwrap();
        let clean_b = CheckpointSource::in_memory(&other, &e).unwrap();
        let clean = e.compare(&clean_a, &clean_b).unwrap();

        prop_assert!(report.fully_verified());
        prop_assert_eq!(report.stats.diff_count, clean.stats.diff_count);
        prop_assert_eq!(report.stats.chunks_flagged, clean.stats.chunks_flagged);
        let got: Vec<u64> = report.differences.iter().map(|d| d.index).collect();
        let want: Vec<u64> = clean.differences.iter().map(|d| d.index).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(report.io.gave_up, 0);
    }

    /// Identical payloads always produce identical roots; a payload
    /// with any value changed by more than the bound never does.
    #[test]
    fn root_digest_soundness(
        data in payload(1_000),
        victim in 0usize..1_000,
        chunk_pow in 3u32..8,
    ) {
        prop_assume!(victim < data.len());
        let h = ChunkHasher::new(Quantizer::new(1e-4).unwrap());
        let dev = Device::host_serial();
        let chunk_bytes = 1usize << chunk_pow;
        let t1 = MerkleTree::build_from_f32(&data, chunk_bytes, &h, &dev);
        let t2 = MerkleTree::build_from_f32(&data, chunk_bytes, &h, &dev);
        prop_assert_eq!(t1.root(), t2.root());

        let mut other = data.clone();
        other[victim] += 1.0; // 10^4 times the bound
        let t3 = MerkleTree::build_from_f32(&other, chunk_bytes, &h, &dev);
        prop_assert_ne!(t1.root(), t3.root());
    }
}
