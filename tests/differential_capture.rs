//! Restart-equivalence oracle suite for differential capture.
//!
//! Two stores ingest the *same* HACC-seeded checkpoint sequence — one
//! through the full-capture path, one through the copy-on-write delta
//! path — under churn schedules from "nothing moved" to "everything
//! moved". Three oracles must hold at every version of every schedule:
//!
//! 1. **Materialize**: every chain link materializes byte-identical to
//!    the full-capture baseline (and to the in-memory expected bytes).
//! 2. **Restart**: a VELOC client in differential mode restores through
//!    `restart_latest` exactly what a full-mode client restores, even
//!    when the flat PFS copies are gone and the restore walks packs.
//! 3. **Ledger**: `bytes_logical == bytes_physical + bytes_deduped +
//!    bytes_skipped` exactly, per capture and store-wide.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::hacc::ParticleSet;
use reprocmp::store::{ChunkStore, DeltaPolicy};
use reprocmp::veloc::client::{Client, VelocConfig};

/// Store chunk size: small enough that a checkpoint spans many chunks.
const CHUNK: usize = 256;
/// f32 values per chunk.
const VALS: usize = CHUNK / 4;
/// Chunks per checkpoint payload.
const NCHUNKS: usize = 40;
/// Checkpoint iterations per schedule.
const ITERS: u64 = 10;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-diffcap-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// The HACC-seeded base state: particle fields of a seeded
/// initial-conditions set, flattened field-by-field and cut to exactly
/// `NCHUNKS` chunks of f32s.
fn hacc_base(seed: u64) -> Vec<f32> {
    let particles = ParticleSet::initial_conditions(512, 1.0, seed);
    let mut vals = Vec::with_capacity(NCHUNKS * VALS);
    for field in ["x", "y", "z", "vx", "vy", "vz"] {
        vals.extend_from_slice(particles.field(field).expect("Table 1 field"));
    }
    vals.truncate(NCHUNKS * VALS);
    assert_eq!(vals.len(), NCHUNKS * VALS, "seed state too small");
    vals
}

/// Advances one churn iteration in place: rewrites `fraction` of the
/// payload's chunks (chosen and filled deterministically from the rng)
/// with fresh values, as a timestep that moved only some particles
/// would. Returns how many chunks changed.
fn churn(vals: &mut [f32], fraction: f64, rng: &mut StdRng) -> usize {
    let nchunks = vals.len().div_ceil(VALS);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let count = ((fraction * nchunks as f64).round() as usize).min(nchunks);
    let mut indices: Vec<usize> = (0..nchunks).collect();
    for i in (1..indices.len()).rev() {
        indices.swap(i, rng.gen_range(0..i + 1));
    }
    for &chunk in &indices[..count] {
        let lo = chunk * VALS;
        let hi = ((chunk + 1) * VALS).min(vals.len());
        for v in &mut vals[lo..hi] {
            *v = rng.gen_range(-1000.0..1000.0);
        }
    }
    count
}

fn as_bytes(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// The schedule oracle: drive `ITERS` versions of a churned HACC state
/// through a full store and a delta store and check all three oracles
/// at every link.
fn oracle_schedule(tag: &str, fraction: f64) {
    let root = temp_root(tag);
    let full = ChunkStore::open(&root.join("full")).expect("open full store");
    let delta = ChunkStore::open(&root.join("delta")).expect("open delta store");
    let policy = DeltaPolicy {
        anchor_every: 4,
        max_depth: 16,
    };

    let mut vals = hacc_base(0xD1FF_CAFE);
    let mut rng = StdRng::seed_from_u64(0x5EED ^ fraction.to_bits());
    let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();

    for version in 1..=ITERS {
        let churned = if version == 1 {
            0
        } else {
            churn(&mut vals, fraction, &mut rng)
        };
        let bytes = as_bytes(&vals);
        let f = full
            .ingest("run", version, &[("state", &bytes)], CHUNK, &[])
            .expect("full ingest");
        let d = delta
            .ingest_delta("run", version, &[("state", &bytes)], CHUNK, &[], &policy)
            .expect("delta ingest");

        // Oracle 3, per capture: the four-term ledger is exact on both
        // paths (the skipped term is identically zero for full).
        assert_eq!(
            f.bytes_logical,
            f.bytes_physical + f.bytes_deduped + f.bytes_skipped,
            "{tag} v{version}: full-capture ledger"
        );
        assert_eq!(f.bytes_skipped, 0, "{tag} v{version}: full never skips");
        assert_eq!(
            d.bytes_logical,
            d.bytes_physical + d.bytes_deduped + d.bytes_skipped,
            "{tag} v{version}: delta-capture ledger"
        );

        // Chain shape under anchor_every = 4: depth cycles 0,1,2,3.
        let depth = (version - 1) % policy.anchor_every;
        assert_eq!(d.depth, depth, "{tag} v{version}: chain depth");
        if depth == 0 {
            assert_eq!(d.parent, None, "{tag} v{version}: anchor has no parent");
            assert_eq!(d.bytes_skipped, 0, "{tag} v{version}: anchors skip nothing");
        } else {
            assert_eq!(
                d.parent,
                Some(version - 1),
                "{tag} v{version}: delta parent"
            );
            // Every unchanged chunk is borrowed from the parent, every
            // churned chunk is re-captured; nothing in between.
            assert_eq!(
                d.chunks_skipped as usize,
                NCHUNKS - churned,
                "{tag} v{version}: skips = unchanged chunks"
            );
            assert_eq!(
                d.bytes_skipped as usize,
                (NCHUNKS - churned) * CHUNK,
                "{tag} v{version}: skipped bytes"
            );
            // The acceptance bound: physical growth tracks churn, not
            // checkpoint size (fresh random chunks dedup to nothing).
            assert!(
                d.bytes_physical as f64 <= (churned * CHUNK) as f64 * 1.2,
                "{tag} v{version}: physical {} exceeds 1.2x churn bytes {}",
                d.bytes_physical,
                churned * CHUNK
            );
        }
        expected.push((version, bytes));
    }

    // Oracle 1: every chain link — not just the tip — materializes
    // byte-identical to the full-capture baseline and the true bytes.
    for (version, bytes) in &expected {
        let from_full = full.materialize("run", *version).expect("full materialize");
        let from_delta = delta
            .materialize("run", *version)
            .expect("delta materialize");
        assert_eq!(
            &from_full, bytes,
            "full store diverged from truth at v{version}"
        );
        assert_eq!(
            from_delta, from_full,
            "{tag}: delta chain diverged from full baseline at v{version}"
        );
    }

    // The chain report agrees with the per-ingest ledger.
    for (version, _) in &expected {
        let links = delta.chain("run", *version).expect("chain");
        let tip = links.last().expect("non-empty chain");
        assert_eq!(tip.version, *version);
        assert_eq!(links[0].depth, 0, "{tag}: chains start at a full anchor");
        for (i, link) in links.iter().enumerate() {
            assert_eq!(link.depth, i as u64, "{tag}: contiguous depths");
            assert_eq!(link.chunk_refs, NCHUNKS as u64);
            assert_eq!(
                link.bytes_skipped,
                (link.chunk_refs - link.own_refs) * CHUNK as u64,
                "{tag}: borrowed refs are exactly the skipped bytes"
            );
        }
    }

    // Oracle 3, store-wide: nothing was removed, so garbage is zero
    // and the four-term ledger balances exactly.
    for (store, label) in [(&full, "full"), (&delta, "delta")] {
        let stats = store.stats();
        assert_eq!(stats.bytes_garbage, 0, "{tag}/{label}: no garbage");
        assert_eq!(
            stats.bytes_logical,
            stats.bytes_physical + stats.bytes_deduped + stats.bytes_skipped,
            "{tag}/{label}: store-wide ledger"
        );
        assert!(store.scrub().expect("scrub").is_clean(), "{tag}/{label}");
    }
    let dstats = delta.stats();
    assert_eq!(
        dstats.delta_objects,
        ITERS - ITERS.div_ceil(policy.anchor_every),
        "{tag}: all non-anchor versions are deltas"
    );
    assert_eq!(
        dstats.chain_depth_max, 3,
        "{tag}: deepest link under policy"
    );

    // Reopening from disk reconstructs the identical ledger and chains.
    let delta_root = root.join("delta");
    drop(delta);
    let reopened = ChunkStore::open(&delta_root).expect("reopen");
    assert_eq!(reopened.stats(), dstats, "{tag}: ledger survives reopen");
    for (version, bytes) in &expected {
        assert_eq!(
            &reopened.materialize("run", *version).expect("materialize"),
            bytes,
            "{tag}: reopen materialize at v{version}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn oracle_zero_churn() {
    oracle_schedule("zero", 0.0);
}

#[test]
fn oracle_sparse_churn() {
    oracle_schedule("sparse", 0.05);
}

#[test]
fn oracle_dense_churn() {
    oracle_schedule("dense", 0.5);
}

#[test]
fn oracle_full_churn() {
    oracle_schedule("full", 1.0);
}

/// Zero churn is the extreme the paper's affordability argument rests
/// on: after the anchor, a delta version writes *no* payload bytes.
#[test]
fn zero_churn_deltas_write_nothing() {
    let root = temp_root("zero-physical");
    let store = ChunkStore::open(&root.join("store")).expect("open");
    let policy = DeltaPolicy {
        anchor_every: 8,
        max_depth: 16,
    };
    let bytes = as_bytes(&hacc_base(7));
    for version in 1..=5 {
        let s = store
            .ingest_delta("run", version, &[("state", &bytes)], CHUNK, &[], &policy)
            .expect("ingest");
        if version > 1 {
            assert_eq!(s.chunks_stored, 0, "v{version} stored a chunk");
            assert_eq!(s.bytes_physical, 0, "v{version} wrote payload bytes");
            assert_eq!(s.bytes_skipped, bytes.len() as u64);
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Oracle 2: a differential-mode VELOC client restores byte-for-byte
/// what a full-mode client restores — even restarting purely from the
/// store (flat PFS copies deleted), at every version, through every
/// chain link.
#[test]
fn restart_latest_from_delta_chain_matches_full_capture() {
    let root = temp_root("restart");
    let policy = DeltaPolicy {
        anchor_every: 3,
        max_depth: 16,
    };
    let full_store = Arc::new(ChunkStore::open(&root.join("full-store")).expect("open"));
    let delta_store = Arc::new(ChunkStore::open(&root.join("delta-store")).expect("open"));
    // One flush thread: versions reach the store in checkpoint order,
    // so the chain shape below is deterministic. (Materialize equality
    // holds under any interleaving — only the depth assertions care.)
    let full_client = Client::new(
        VelocConfig {
            store_chunk_bytes: CHUNK,
            flush_threads: 1,
            ..VelocConfig::rooted_at(&root.join("full-veloc"))
        }
        .with_store(Arc::clone(&full_store)),
    )
    .expect("full client");
    let delta_client = Client::new(
        VelocConfig {
            store_chunk_bytes: CHUNK,
            flush_threads: 1,
            ..VelocConfig::rooted_at(&root.join("delta-veloc"))
        }
        .with_store(Arc::clone(&delta_store))
        .with_differential_capture(policy),
    )
    .expect("delta client");

    let mut pos = hacc_base(0xACC);
    let mut vel = hacc_base(0xACC ^ 1);
    let mut rng = StdRng::seed_from_u64(42);
    for version in 1..=7u64 {
        if version > 1 {
            churn(&mut pos, 0.1, &mut rng);
            churn(&mut vel, 0.1, &mut rng);
        }
        let regions: [(&str, &[f32]); 2] = [("pos", &pos), ("vel", &vel)];
        for client in [&full_client, &delta_client] {
            client
                .checkpoint("sim.rank0", version, &regions)
                .expect("checkpoint");
        }
    }
    full_client.wait_all().expect("full flush");
    delta_client.wait_all().expect("delta flush");

    // Every version's store object is byte-identical across modes
    // (differential capture changes what is *written*, never what is
    // *restored*).
    for version in 1..=7u64 {
        assert_eq!(
            full_store
                .materialize("sim.rank0", version)
                .expect("full materialize"),
            delta_store
                .materialize("sim.rank0", version)
                .expect("delta materialize"),
            "store objects diverge at v{version}"
        );
    }
    let tail = delta_store.chain("sim.rank0", 7).expect("chain");
    assert_eq!(tail.last().expect("tip").depth, 0, "v7 anchors a new chain");
    assert!(
        delta_store.stats().delta_objects > 0,
        "differential mode wrote no deltas"
    );

    // Drop the flat PFS copies so restart must walk the delta chain.
    for version in 1..=7u64 {
        for client in [&full_client, &delta_client] {
            std::fs::remove_file(client.persistent_path("sim.rank0", version))
                .expect("remove flat copy");
        }
    }
    let (fv, fregions) = full_client
        .restart_latest("sim.rank0")
        .expect("full restart")
        .expect("some version");
    let (dv, dregions) = delta_client
        .restart_latest("sim.rank0")
        .expect("delta restart")
        .expect("some version");
    assert_eq!(fv, 7);
    assert_eq!(dv, fv, "restart picked different versions");
    assert_eq!(fregions, dregions, "restored regions diverge");
    assert_eq!(dregions["pos"], pos, "pos diverged from the live state");
    assert_eq!(dregions["vel"], vel, "vel diverged from the live state");
    std::fs::remove_dir_all(&root).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized schedules: any churn sequence, chunk geometry, and
    /// anchor cadence preserves materialize-equality with a full
    /// baseline and the exact four-term ledger at every version.
    #[test]
    fn random_schedules_stay_restart_equivalent(
        // Above 1.0 the churn generator clamps to "everything moved".
        fractions in proptest::collection::vec(0.0f64..1.2, 1..8),
        nchunks in 2usize..24,
        anchor_every in 1u64..6,
        seed in 0u64..1_000,
    ) {
        let root = temp_root(&format!("prop-{seed}-{nchunks}-{anchor_every}"));
        let full = ChunkStore::open(&root.join("full")).expect("open");
        let delta = ChunkStore::open(&root.join("delta")).expect("open");
        let policy = DeltaPolicy { anchor_every, max_depth: 16 };

        let mut rng = StdRng::seed_from_u64(seed);
        let mut vals = hacc_base(seed);
        vals.truncate(nchunks * VALS);
        for (i, &fraction) in fractions.iter().enumerate() {
            let version = i as u64 + 1;
            if version > 1 {
                churn(&mut vals, fraction, &mut rng);
            }
            let bytes = as_bytes(&vals);
            full.ingest("r", version, &[("s", &bytes)], CHUNK, &[]).expect("ingest");
            let d = delta
                .ingest_delta("r", version, &[("s", &bytes)], CHUNK, &[], &policy)
                .expect("ingest_delta");
            prop_assert_eq!(
                d.bytes_logical,
                d.bytes_physical + d.bytes_deduped + d.bytes_skipped
            );
            prop_assert!(d.depth < anchor_every.max(1));
            prop_assert_eq!(
                delta.materialize("r", version).expect("materialize"),
                bytes
            );
        }
        for version in 1..=fractions.len() as u64 {
            prop_assert_eq!(
                delta.materialize("r", version).expect("delta"),
                full.materialize("r", version).expect("full")
            );
        }
        let stats = delta.stats();
        prop_assert_eq!(stats.bytes_garbage, 0);
        prop_assert_eq!(
            stats.bytes_logical,
            stats.bytes_physical + stats.bytes_deduped + stats.bytes_skipped
        );
        if anchor_every == 1 {
            prop_assert_eq!(stats.delta_objects, 0);
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
