//! The live telemetry plane, end to end.
//!
//! What the suite pins down:
//!
//! * **Ring retention** — the in-memory snapshot ring keeps exactly
//!   the newest `capacity` samples and counts evictions (proptest);
//! * **Prometheus exposition** — a frozen-clock daemon driven by a
//!   fixed serial job load renders the committed
//!   `tests/goldens/telemetry_prom.txt` byte-for-byte;
//! * **Subscriber equivalence** — under concurrent job load with
//!   N ∈ {1, 4} clients, every `subscribe-telemetry` stream, the
//!   server's retained ring, and the persisted `telemetry.jsonl` all
//!   describe the identical snapshot sequence;
//! * **Restart persistence** — a restarted daemon replays its
//!   `telemetry.jsonl` into the ring and continues the sequence;
//! * **Observation is free** — job result documents are byte-identical
//!   whether the background sampler runs at a busy cadence or not at
//!   all (telemetry must never perturb science);
//! * **`top` frames** — the snapshot-history TUI renders the committed
//!   `tests/goldens/top_frames.txt` byte-for-byte, through the library
//!   and through `reprocmp top --file … --keys …` alike;
//! * **Drain under watch** — a daemon told to shut down still answers
//!   every blocked streaming client (watch, subscribe, idle) with a
//!   terminal frame instead of deadlocking the accept loop
//!   (regression: the transport used to join handlers before
//!   draining).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use reprocmp::obs::{prometheus_text, ObsClock, TelemetryRing, TelemetrySnapshot};
use reprocmp::server::{
    pair, serve_connection, ObjectRef, Server, ServerClient, ServerConfig, TcpTransport,
};

const CHUNK: usize = 256;
const VALUES: usize = 1024; // 4 KiB payload

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-telem-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden `{name}` drifted (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

/// Deterministic f32 payload in a per-salt value band.
fn payload(salt: u32) -> Vec<u8> {
    (0..VALUES)
        .flat_map(|i| (f32::from(salt as u16) * 1e3 + (i as f32 * 1e-3).sin()).to_le_bytes())
        .collect()
}

fn perturbed(salt: u32) -> Vec<u8> {
    let mut data = payload(salt);
    // Nudge 1% of the values, mid-payload.
    for i in (VALUES / 2)..(VALUES / 2 + VALUES / 100) {
        let at = i * 4;
        let v = f32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes")) + 0.25;
        data[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
    data
}

fn start_daemon(tag: &str, cadence: Duration, workers: usize, clock: ObsClock) -> Arc<Server> {
    Arc::new(
        Server::start(ServerConfig {
            chunk_bytes: CHUNK,
            workers,
            telemetry_clock: clock,
            telemetry_cadence: cadence,
            telemetry_retention: 64,
            ..ServerConfig::rooted_at(fresh_root(tag))
        })
        .expect("daemon start"),
    )
}

fn session(server: &Arc<Server>, name: &str) -> ServerClient {
    let (client_end, mut server_end) = pair();
    let server = Arc::clone(server);
    std::thread::spawn(move || {
        let _ = serve_connection(&server, &mut server_end);
    });
    ServerClient::over(Box::new(client_end), name).expect("hello")
}

fn obj(name: &str, version: u64) -> ObjectRef {
    ObjectRef {
        name: name.to_owned(),
        version,
    }
}

/// The fixed serial job load behind the byte-exact goldens: two
/// ingests, one compare, one materialize, each awaited in turn.
fn run_serial_load(server: &Arc<Server>) {
    let mut s = session(server, "loader");
    for (version, data) in [(1u64, payload(1)), (2, perturbed(1))] {
        let job = s
            .ingest("base", version, CHUNK as u64, &data)
            .expect("submit ingest");
        assert!(s.wait(job).expect("wait").error.is_none());
    }
    let job = s.compare(obj("base", 1), obj("base", 2)).expect("submit");
    assert!(s.wait(job).expect("wait").error.is_none());
    let job = s.materialize("base", 1).expect("submit");
    assert!(s.wait(job).expect("wait").error.is_none());
}

// ---------------------------------------------------------------------
// Ring retention
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring keeps exactly the newest `capacity` snapshots, in
    /// order, and counts every eviction.
    #[test]
    fn ring_retains_newest_snapshots_and_counts_evictions(
        capacity in 1usize..12,
        pushes in 0usize..40,
    ) {
        let mut ring = TelemetryRing::new(capacity);
        for i in 0..pushes {
            ring.push(TelemetrySnapshot {
                seq: i as u64 + 1,
                ..TelemetrySnapshot::default()
            });
        }
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        prop_assert_eq!(ring.evicted(), pushes.saturating_sub(capacity) as u64);
        let seqs: Vec<u64> = ring.snapshots().iter().map(|s| s.seq).collect();
        let expected: Vec<u64> = (pushes.saturating_sub(capacity) + 1..=pushes)
            .map(|i| i as u64)
            .collect();
        prop_assert_eq!(seqs, expected);
    }
}

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

/// A frozen-clock daemon after the fixed serial load renders the
/// committed Prometheus exposition byte-for-byte. (Sampled after
/// drain, when every worker-side counter is final.)
#[test]
fn prometheus_exposition_matches_the_committed_golden() {
    let server = start_daemon("prom", Duration::ZERO, 1, ObsClock::frozen());
    run_serial_load(&server);
    server.shutdown();
    let snapshot = server.sample_telemetry_now();
    let text = prometheus_text(&snapshot);
    check_golden("telemetry_prom.txt", &text);

    // Well-formedness, independent of the pinned bytes: every line is
    // either a `# TYPE` comment or a two-token sample.
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE "), "bad comment: {line}");
        } else {
            assert_eq!(
                line.split_whitespace().count(),
                2,
                "bad sample line: {line}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Subscriber ≡ ring ≡ telemetry.jsonl
// ---------------------------------------------------------------------

/// Every subscriber's stream, the retained ring, and the persisted
/// JSONL agree on the exact snapshot sequence — under concurrent job
/// load from 1 and 4 clients.
#[test]
fn subscribe_streams_match_ring_and_persisted_jsonl() {
    for clients in [1usize, 4] {
        let server = start_daemon(
            &format!("sub{clients}"),
            Duration::ZERO,
            2,
            ObsClock::frozen(),
        );
        const SAMPLES: u64 = 6;

        // Subscribers race the sampler from the start; the ring-replay
        // path guarantees none of them can miss a snapshot.
        let subscribers: Vec<_> = (0..2)
            .map(|i| {
                let mut s = session(&server, &format!("sub-{i}"));
                std::thread::spawn(move || s.subscribe_telemetry(SAMPLES).expect("subscribe"))
            })
            .collect();

        // Concurrent job load while samples fire.
        let load: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut s = session(&server, &format!("load-{c}"));
                    let salt = 10 + c as u32;
                    let name = format!("obj{c}");
                    for (version, data) in [(1u64, payload(salt)), (2, perturbed(salt))] {
                        let job = s
                            .ingest(&name, version, CHUNK as u64, &data)
                            .expect("submit");
                        assert!(s.wait(job).expect("wait").error.is_none());
                    }
                    let job = s.compare(obj(&name, 1), obj(&name, 2)).expect("submit");
                    assert!(s.wait(job).expect("wait").error.is_none());
                })
            })
            .collect();

        for _ in 0..SAMPLES {
            let _ = server.sample_telemetry_now();
        }
        for h in load {
            h.join().expect("load thread");
        }

        let streams: Vec<Vec<TelemetrySnapshot>> = subscribers
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("subscriber thread")
                    .iter()
                    .map(|v| TelemetrySnapshot::from_value(v).expect("snapshot decodes"))
                    .collect()
            })
            .collect();

        let ring = server.telemetry_history();
        assert_eq!(ring.len() as u64, SAMPLES);
        for stream in &streams {
            assert_eq!(stream, &ring, "subscriber stream diverged from the ring");
        }

        // The persisted JSONL holds the same sequence.
        let jsonl = std::fs::read_to_string(server.config().store_root.join("telemetry.jsonl"))
            .expect("telemetry.jsonl written");
        let persisted: Vec<TelemetrySnapshot> = jsonl
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let v = reprocmp::server::json::parse(l).expect("jsonl line parses");
                TelemetrySnapshot::from_value(&v).expect("jsonl snapshot decodes")
            })
            .collect();
        assert_eq!(persisted, ring, "telemetry.jsonl diverged from the ring");

        server.shutdown();
    }
}

/// A restarted daemon replays `telemetry.jsonl` into its ring and
/// continues the sequence numbers where the previous life stopped.
#[test]
fn restart_replays_persisted_history_and_continues_the_sequence() {
    let root = fresh_root("restart");
    let config = || ServerConfig {
        chunk_bytes: CHUNK,
        workers: 1,
        telemetry_clock: ObsClock::frozen(),
        telemetry_cadence: Duration::ZERO,
        telemetry_retention: 64,
        ..ServerConfig::rooted_at(root.clone())
    };
    let first = Server::start(config()).expect("first life");
    for _ in 0..3 {
        let _ = first.sample_telemetry_now();
    }
    let seqs: Vec<u64> = first.telemetry_history().iter().map(|s| s.seq).collect();
    assert_eq!(seqs, vec![1, 2, 3]);
    first.shutdown();
    drop(first);

    let second = Server::start(config()).expect("second life");
    let replayed: Vec<u64> = second.telemetry_history().iter().map(|s| s.seq).collect();
    assert_eq!(replayed, vec![1, 2, 3], "history survives the restart");
    let next = second.sample_telemetry_now();
    assert_eq!(next.seq, 4, "sequence continues after restart");
    second.shutdown();
}

// ---------------------------------------------------------------------
// Telemetry never perturbs science
// ---------------------------------------------------------------------

/// Job result documents are byte-identical whether the daemon samples
/// telemetry aggressively or not at all.
#[test]
fn job_results_are_byte_identical_with_and_without_telemetry() {
    let run = |tag: &str, cadence: Duration| -> Vec<String> {
        let server = start_daemon(tag, cadence, 2, ObsClock::wall());
        let mut s = session(&server, "science");
        let mut results = Vec::new();
        for (version, data) in [(1u64, payload(7)), (2, perturbed(7))] {
            let job = s
                .ingest("sci", version, CHUNK as u64, &data)
                .expect("submit");
            let status = s.wait(job).expect("wait");
            results.push(serde_json::to_string(&Raw(status.result.expect("result"))).unwrap());
        }
        let job = s.compare(obj("sci", 1), obj("sci", 2)).expect("submit");
        let status = s.wait(job).expect("wait");
        results.push(serde_json::to_string(&Raw(status.result.expect("result"))).unwrap());
        server.shutdown();
        results
    };
    let silent = run("sci-off", Duration::ZERO);
    let sampled = run("sci-on", Duration::from_millis(1));
    assert_eq!(
        silent, sampled,
        "telemetry sampling perturbed a job result document"
    );
}

/// The vendored serde has no blanket `Serialize` for `Value`.
struct Raw(serde::Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// `top` frame goldens
// ---------------------------------------------------------------------

/// The deterministic snapshot history the `top` goldens replay: the
/// frozen daemon after the serial load, sampled three times.
fn top_history() -> Vec<TelemetrySnapshot> {
    let server = start_daemon("top", Duration::ZERO, 1, ObsClock::frozen());
    run_serial_load(&server);
    server.shutdown();
    for _ in 0..3 {
        let _ = server.sample_telemetry_now();
    }
    server.telemetry_history()
}

/// `TopView` over the deterministic history renders the committed
/// frames byte-for-byte, and `reprocmp top --file … --keys …` over the
/// same history persisted as JSONL prints the identical transcript.
#[test]
fn top_frames_match_the_committed_golden_through_library_and_cli() {
    const KEYS: &str = "h t l q";
    let history = top_history();

    let mut view = reprocmp::analyze::TopView::new(history.clone());
    let mut transcript = String::new();
    for (i, frame) in view.play(KEYS).iter().enumerate() {
        transcript.push_str(&format!("--- frame {i} ---\n"));
        transcript.push_str(frame);
    }
    check_golden("top_frames.txt", &transcript);

    // The CLI offline path over the persisted JSONL form.
    let dir = fresh_root("top-cli");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let jsonl_path = dir.join("telemetry.jsonl");
    let jsonl: String = history.iter().map(|s| s.to_json_line() + "\n").collect();
    std::fs::write(&jsonl_path, jsonl).expect("write jsonl");
    let argv: Vec<String> = [
        "top",
        "--file",
        jsonl_path.to_str().expect("utf8 path"),
        "--keys",
        KEYS,
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let cli_out = reprocmp_cli::run(&argv).expect("cli top");
    assert_eq!(cli_out, transcript, "CLI transcript diverged from library");
}

// ---------------------------------------------------------------------
// Drain under watch (regression)
// ---------------------------------------------------------------------

/// A daemon told to shut down over TCP still answers every blocked
/// streaming client — watch gets its terminal `done`, an open-ended
/// telemetry subscriber gets `telemetry_end`, and an idle connection
/// is unblocked — instead of the accept loop deadlocking on join.
#[test]
fn draining_daemon_answers_blocked_streamers_with_terminal_frames() {
    let server = start_daemon("drain", Duration::ZERO, 1, ObsClock::frozen());
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.addr();
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || transport.run(&server))
    };

    // An idle client: connected, silent. The old join-before-drain
    // order hung forever on this handler.
    let idle = ServerClient::connect(addr, "idle").expect("idle connect");

    // A watcher blocked on a job's journal stream.
    let mut submitter = ServerClient::connect(addr, "submitter").expect("connect");
    let job = submitter
        .ingest("drain-obj", 1, CHUNK as u64, &payload(3))
        .expect("submit");
    let watcher = std::thread::spawn(move || {
        let mut s = ServerClient::connect(addr, "watcher").expect("connect");
        s.watch(job).expect("watch answered")
    });

    // An open-ended telemetry subscriber (runs until shutdown).
    let subscriber = std::thread::spawn(move || {
        let mut s = ServerClient::connect(addr, "subscriber").expect("connect");
        s.subscribe_telemetry(0).expect("subscribe answered")
    });
    let _ = server.sample_telemetry_now();

    // Let the streamers actually park server-side, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    let mut stopper = ServerClient::connect(addr, "stopper").expect("connect");
    stopper.shutdown_server().expect("shutdown ack");

    let (events, summary) = watcher.join().expect("watcher thread");
    assert_eq!(summary.state, reprocmp::server::JobState::Done);
    assert_eq!(
        events.len() as u64,
        summary.events_written,
        "watch streamed exactly the written journal"
    );
    let streamed = subscriber.join().expect("subscriber thread");
    assert!(
        !streamed.is_empty(),
        "subscriber saw the pre-shutdown sample"
    );
    accept
        .join()
        .expect("accept thread")
        .expect("transport run returns cleanly");
    drop(idle);
}
