//! `HistoryReport::first_divergence` on sparse histories.
//!
//! Real campaigns rarely produce dense `(rank, iteration)` grids:
//! checkpoint intervals skip iterations, some ranks checkpoint less
//! often than others, and a failed run may leave a single iteration
//! behind. These tests pin the divergence-ordering semantics on gappy
//! iteration numbers, rank-sparse grids, and single-entry histories,
//! and close with a proptest comparing `first_divergence` (and the
//! aggregate accessors) against a brute-force reference on randomly
//! shaped histories.

use std::collections::BTreeSet;

use proptest::prelude::*;
use reprocmp::core::{
    CheckpointHistory, CheckpointSource, CompareEngine, CoreError, EngineConfig,
    HistoryEntryReport, HistoryReport,
};

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 64,
        error_bound: 1e-5,
        ..EngineConfig::default()
    })
}

/// Deterministic payload for one `(rank, iteration)` checkpoint.
fn payload(rank: usize, iteration: u64, diverged: bool) -> Vec<f32> {
    let mut values: Vec<f32> = (0..96)
        .map(|k| (k as f32 + rank as f32 * 1000.0) * 0.01 + iteration as f32)
        .collect();
    if diverged {
        for v in values.iter_mut().take(3) {
            *v += 0.5;
        }
    }
    values
}

/// Builds the two histories over exactly `keys`; keys in `divergent`
/// differ between the runs (well above the bound).
fn history_pair(
    e: &CompareEngine,
    keys: &BTreeSet<(usize, u64)>,
    divergent: &BTreeSet<(usize, u64)>,
) -> (CheckpointHistory, CheckpointHistory) {
    let mut a = CheckpointHistory::new();
    let mut b = CheckpointHistory::new();
    for &(rank, iteration) in keys {
        let base = payload(rank, iteration, false);
        a.insert(
            rank,
            iteration,
            CheckpointSource::in_memory(&base, e).unwrap(),
        );
        let other = payload(rank, iteration, divergent.contains(&(rank, iteration)));
        b.insert(
            rank,
            iteration,
            CheckpointSource::in_memory(&other, e).unwrap(),
        );
    }
    (a, b)
}

/// Brute-force reference: the earliest `(iteration, rank)` among the
/// keys seeded divergent.
fn brute_force_first(divergent: &BTreeSet<(usize, u64)>) -> Option<(u64, usize)> {
    divergent.iter().map(|&(rank, it)| (it, rank)).min()
}

// ---------------------------------------------------------------------
// Shapes
// ---------------------------------------------------------------------

/// Gappy iteration numbers: nothing assumes contiguity — the first
/// divergence is the earliest *present* iteration that diverged, even
/// across a three-orders-of-magnitude gap.
#[test]
fn gappy_iterations_order_by_value_not_position() {
    let e = engine();
    let keys: BTreeSet<_> = [(0usize, 3u64), (0, 17), (0, 1000), (0, 1001)].into();
    let divergent: BTreeSet<_> = [(0usize, 1000u64), (0, 1001)].into();
    let (a, b) = history_pair(&e, &keys, &divergent);
    let report = e.compare_history(&a, &b).unwrap();
    assert_eq!(report.first_divergence(), Some((1000, 0)));
    let curve = report.diffs_by_iteration();
    assert_eq!(curve[&3], 0);
    assert_eq!(curve[&17], 0);
    assert!(curve[&1000] > 0);
}

/// Rank-sparse grids: rank 1 checkpoints only occasionally (on both
/// sides, so the key sets agree). A divergence on the sparse rank at
/// an early iteration beats a dense-rank divergence at a later one,
/// and within one iteration the lowest rank wins.
#[test]
fn sparse_ranks_tiebreak_iteration_then_rank() {
    let e = engine();
    let keys: BTreeSet<_> = [
        (0usize, 10u64),
        (0, 20),
        (0, 30),
        (1, 20), // rank 1 only at iteration 20
    ]
    .into();
    // Rank 1 diverges at 20; rank 0 diverges later, at 30.
    let divergent: BTreeSet<_> = [(1usize, 20u64), (0, 30)].into();
    let (a, b) = history_pair(&e, &keys, &divergent);
    let report = e.compare_history(&a, &b).unwrap();
    assert_eq!(report.first_divergence(), Some((20, 1)));

    // Same iteration, both ranks divergent: rank 0 wins the tie.
    let divergent: BTreeSet<_> = [(0usize, 20u64), (1, 20)].into();
    let (a, b) = history_pair(&e, &keys, &divergent);
    let report = e.compare_history(&a, &b).unwrap();
    assert_eq!(report.first_divergence(), Some((20, 0)));
}

/// A rank present on one side but missing on the other is a hard
/// mismatch, not a silent skip: `compare_history` refuses the pair.
#[test]
fn missing_ranks_on_one_side_error_rather_than_skip() {
    let e = engine();
    let keys: BTreeSet<_> = [(0usize, 10u64), (1, 10)].into();
    let (a, _) = history_pair(&e, &keys, &BTreeSet::new());
    let solo: BTreeSet<_> = [(0usize, 10u64)].into();
    let (_, b) = history_pair(&e, &solo, &BTreeSet::new());
    assert!(matches!(
        e.compare_history(&a, &b),
        Err(CoreError::Mismatch(_))
    ));
}

/// Single-iteration histories: divergence either is that iteration or
/// there is none.
#[test]
fn single_iteration_histories() {
    let e = engine();
    let keys: BTreeSet<_> = [(2usize, 77u64)].into();
    let (a, b) = history_pair(&e, &keys, &BTreeSet::new());
    let clean = e.compare_history(&a, &b).unwrap();
    assert!(clean.identical());
    assert_eq!(clean.first_divergence(), None);

    let divergent: BTreeSet<_> = [(2usize, 77u64)].into();
    let (a, b) = history_pair(&e, &keys, &divergent);
    let report = e.compare_history(&a, &b).unwrap();
    assert_eq!(report.first_divergence(), Some((77, 2)));
    assert_eq!(report.entries.len(), 1);
}

// ---------------------------------------------------------------------
// Proptest vs brute force
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On randomly shaped sparse histories, `first_divergence`,
    /// `identical`, `total_diffs`, and `diffs_by_iteration` all agree
    /// with a brute-force reference over the seeded divergent set.
    #[test]
    fn first_divergence_matches_brute_force(
        raw_keys in proptest::collection::btree_set((0usize..4, 0u64..40), 1..10),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 0..6),
    ) {
        let e = engine();
        let keys: Vec<(usize, u64)> = raw_keys.iter().copied().collect();
        let divergent: BTreeSet<(usize, u64)> =
            picks.iter().map(|ix| keys[ix.index(keys.len())]).collect();
        let (a, b) = history_pair(&e, &raw_keys, &divergent);
        let report = e.compare_history(&a, &b).unwrap();

        prop_assert_eq!(report.first_divergence(), brute_force_first(&divergent));
        prop_assert_eq!(report.identical(), divergent.is_empty());
        // Each divergent pair differs in exactly 3 values.
        prop_assert_eq!(report.total_diffs(), divergent.len() as u64 * 3);
        for (&iteration, &diffs) in &report.diffs_by_iteration() {
            let expected = divergent
                .iter()
                .filter(|&&(_, it)| it == iteration)
                .count() as u64
                * 3;
            prop_assert_eq!(diffs, expected);
        }
    }

    /// Constructed directly (no engine): `first_divergence` over an
    /// arbitrary entry order still returns the global
    /// iteration-major minimum.
    #[test]
    fn direct_report_minimum_is_order_independent(
        raw_keys in proptest::collection::btree_set((0usize..4, 0u64..40), 1..10),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 1..6),
        rotate in any::<proptest::sample::Index>(),
    ) {
        let e = engine();
        let keys: Vec<(usize, u64)> = raw_keys.iter().copied().collect();
        let divergent: BTreeSet<(usize, u64)> =
            picks.iter().map(|ix| keys[ix.index(keys.len())]).collect();

        let mut entries: Vec<HistoryEntryReport> = keys
            .iter()
            .map(|&(rank, iteration)| {
                let va = payload(rank, iteration, false);
                let vb = payload(rank, iteration, divergent.contains(&(rank, iteration)));
                let sa = CheckpointSource::in_memory(&va, &e).unwrap();
                let sb = CheckpointSource::in_memory(&vb, &e).unwrap();
                HistoryEntryReport {
                    rank,
                    iteration,
                    report: e.compare(&sa, &sb).unwrap(),
                }
            })
            .collect();
        let mid = rotate.index(entries.len());
        entries.rotate_left(mid);
        let report = HistoryReport { entries };
        prop_assert_eq!(report.first_divergence(), brute_force_first(&divergent));
    }
}
