//! Scrub-and-repair + degraded-mode comparison, end to end.
//!
//! Two stored runs differ in three chunks. The pack holding run 2's
//! unique chunks is then damaged on disk:
//!
//! * **One corrupt chunk** in a parity group: `fsck --repair`
//!   reconstructs it from the XOR parity block in place, the
//!   checkpoint materializes byte-exactly again, and a store-backed
//!   comparison is indistinguishable from the pre-damage one. The
//!   repair ledger (`FsckReport`, `repair.*` counters, the `repair`
//!   flight-recorder event) accounts exactly one chunk, one pack.
//!
//! * **Two corrupt chunks** in the same group: unrecoverable. The
//!   pack is quarantined, and a comparison under
//!   [`FailurePolicy::Quarantine`] still completes — reporting the
//!   real difference that survives in an intact chunk while listing
//!   *exactly* the corrupt chunks as `unverified` ranges, with the
//!   `quarantine.*` counters and the `pack_quarantine` event carrying
//!   the same numbers.

use reprocmp_core::{CheckpointSource, ChunkRange, CompareEngine, EngineConfig, FailurePolicy};
use reprocmp_obs::{EventKind, Journal, ObsClock};
use reprocmp_store::pack::{pack_file_name, scan_pack};
use reprocmp_store::ChunkStore;
use std::path::{Path, PathBuf};

const CHUNK_BYTES: usize = 64;
const VALUES_PER_CHUNK: usize = CHUNK_BYTES / 4;

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-repairq-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK_BYTES,
        error_bound: 1e-6,
        failure_policy: FailurePolicy::Quarantine,
        ..EngineConfig::default()
    })
}

fn payload_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Ingests `values` with its encoded Merkle tree as metadata, so
/// store-backed sources never materialize the full payload (stage 2
/// reads only the flagged chunks — the degraded path under test).
fn ingest(store: &ChunkStore, engine: &CompareEngine, name: &str, values: &[f32]) -> Option<u32> {
    let (tree, _) = engine.build_metadata_profiled(values);
    let meta = reprocmp_merkle::encode_tree(&tree);
    let stats = store
        .ingest(
            name,
            1,
            &[("data", &payload_bytes(values))],
            CHUNK_BYTES,
            &meta,
        )
        .unwrap();
    stats.pack
}

/// Two runs differing in payload chunks 3, 6, and 10 (one value each).
/// Ingested after run 1, run 2's pack holds exactly those three
/// chunks — everything else dedups into run 1's pack.
fn two_runs() -> (Vec<f32>, Vec<f32>) {
    let run1: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.001).sin()).collect();
    let mut run2 = run1.clone();
    for chunk in [3usize, 6, 10] {
        run2[chunk * VALUES_PER_CHUNK] += 0.5;
    }
    (run1, run2)
}

/// Flips one byte of the stored data of the chunks whose payload
/// index is listed in `chunks`, inside pack `pack_id`.
fn corrupt_chunks(root: &Path, store: &ChunkStore, pack_id: u32, chunks: &[u64]) {
    let layout = store.layout("r2", 1).unwrap();
    let digests = layout
        .payload_chunk_digests
        .expect("uniform chunking yields a digest sequence");
    let path = root.join("packs").join(pack_file_name(pack_id));
    let mut bytes = std::fs::read(&path).unwrap();
    for &chunk in chunks {
        let digest = digests[chunk as usize];
        let record = scan_pack(&bytes)
            .unwrap()
            .into_iter()
            .find(|r| r.digest == digest)
            .expect("run 2's unique chunk lives in its own pack");
        bytes[record.data_offset as usize] ^= 0xff;
    }
    std::fs::write(&path, &bytes).unwrap();
}

fn events_named(journal: &Journal, name: &str) -> Vec<EventKind> {
    journal
        .events()
        .into_iter()
        .filter(|e| e.lane == "store" && e.kind.type_name() == name)
        .map(|e| e.kind)
        .collect()
}

#[test]
fn single_corrupt_chunk_is_repaired_from_parity() {
    let root = fresh_root("repair");
    let store = ChunkStore::open(&root).unwrap();
    let e = engine();
    let (run1, run2) = two_runs();
    ingest(&store, &e, "r1", &run1);
    let pack = ingest(&store, &e, "r2", &run2).expect("run 2 stores new chunks");

    let sa = CheckpointSource::from_store(&store, "r1", 1, &e).unwrap();
    let sb = CheckpointSource::from_store(&store, "r2", 1, &e).unwrap();
    let clean = e.compare(&sa, &sb).unwrap();
    assert_eq!(clean.stats.diff_count, 3);
    assert!(clean.fully_verified());

    let journal = Journal::new(ObsClock::frozen());
    store.journal_slot().set(journal.clone());
    corrupt_chunks(&root, &store, pack, &[3]);
    assert_eq!(store.scrub().unwrap().failures.len(), 1);

    // Report-only pass: finds the damage, fixes nothing.
    let dry = store.fsck(false).unwrap();
    assert_eq!(dry.chunks_corrupt, 1);
    assert_eq!(dry.chunks_repaired, 0);
    assert!(!dry.healthy());

    // Repair pass: exactly one chunk reconstructed, pack fully healed.
    let fixed = store.fsck(true).unwrap();
    assert_eq!(fixed.chunks_corrupt, 1);
    assert_eq!(fixed.chunks_repaired, 1);
    assert_eq!(fixed.packs_repaired, 1);
    assert_eq!(fixed.chunks_unrecoverable, 0);
    assert!(fixed.packs_quarantined.is_empty());
    assert!(fixed.healthy());

    // Byte-exact again, on disk and through the comparison path.
    assert!(store.scrub().unwrap().is_clean());
    assert_eq!(store.materialize("r2", 1).unwrap(), payload_bytes(&run2));
    let sa = CheckpointSource::from_store(&store, "r1", 1, &e).unwrap();
    let sb = CheckpointSource::from_store(&store, "r2", 1, &e).unwrap();
    let after = e.compare(&sa, &sb).unwrap();
    assert!(after.fully_verified());
    assert_eq!(after.stats.diff_count, clean.stats.diff_count);
    assert_eq!(after.differences, clean.differences);

    // The repair ledger: counters and flight-recorder events agree.
    assert_eq!(store.metrics().repair_chunks.get(), 1);
    assert_eq!(store.metrics().repair_packs.get(), 1);
    assert_eq!(store.metrics().quarantine_packs.get(), 0);
    assert_eq!(
        events_named(&journal, "repair"),
        vec![EventKind::Repair {
            pack: u64::from(pack),
            chunks: 1
        }]
    );
    assert!(events_named(&journal, "pack_quarantine").is_empty());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn unrecoverable_pack_quarantines_and_comparison_degrades_exactly() {
    let root = fresh_root("quarantine");
    let store = ChunkStore::open(&root).unwrap();
    let e = engine();
    let (run1, run2) = two_runs();
    ingest(&store, &e, "r1", &run1);
    let pack = ingest(&store, &e, "r2", &run2).expect("run 2 stores new chunks");

    let sa = CheckpointSource::from_store(&store, "r1", 1, &e).unwrap();
    let sb = CheckpointSource::from_store(&store, "r2", 1, &e).unwrap();
    let clean = e.compare(&sa, &sb).unwrap();
    assert_eq!(clean.stats.diff_count, 3);

    // Two corrupt chunks in the same 8-wide parity group: XOR can
    // reconstruct at most one, so the pack is beyond repair.
    let journal = Journal::new(ObsClock::frozen());
    store.journal_slot().set(journal.clone());
    corrupt_chunks(&root, &store, pack, &[3, 6]);
    let report = store.fsck(true).unwrap();
    assert_eq!(report.chunks_corrupt, 2);
    assert_eq!(report.chunks_repaired, 0);
    assert_eq!(report.chunks_unrecoverable, 2);
    assert_eq!(report.packs_quarantined, vec![pack]);
    assert!(!report.healthy());
    assert_eq!(store.stats().packs_quarantined, 1);

    // Degraded-mode comparison: completes, reports the difference in
    // the intact chunk (10), and lists exactly the two corrupt chunks
    // as unverified — nothing more, nothing less.
    let sa = CheckpointSource::from_store(&store, "r1", 1, &e).unwrap();
    let sb = CheckpointSource::from_store(&store, "r2", 1, &e).unwrap();
    let degraded = e.compare(&sa, &sb).unwrap();
    assert_eq!(
        degraded.unverified,
        vec![
            ChunkRange { first: 3, count: 1 },
            ChunkRange { first: 6, count: 1 }
        ]
    );
    assert_eq!(degraded.unverified_chunks(), 2);
    assert!(!degraded.fully_verified());
    assert_eq!(degraded.stats.diff_count, 1);
    assert_eq!(degraded.differences.len(), 1);
    assert_eq!(
        degraded.differences[0].index,
        10 * VALUES_PER_CHUNK as u64,
        "the difference in the still-verifiable chunk must survive"
    );
    // Everything the degraded report *does* claim matches the clean
    // report: its one difference is clean's third, chunk totals agree.
    assert_eq!(degraded.differences[0], clean.differences[2]);
    assert_eq!(degraded.stats.chunks_total, clean.stats.chunks_total);

    // The quarantine ledger: counters and events carry the same
    // numbers as the fsck report.
    assert_eq!(store.metrics().quarantine_packs.get(), 1);
    assert_eq!(store.metrics().quarantine_chunks.get(), 2);
    assert_eq!(store.metrics().repair_chunks.get(), 0);
    assert_eq!(
        events_named(&journal, "pack_quarantine"),
        vec![EventKind::PackQuarantine {
            pack: u64::from(pack),
            chunks: 2
        }]
    );

    // Re-ingesting a run that contains healthy copies of the lost
    // chunks repoints the index away from the quarantined pack, and
    // gc reclaims it once nothing references it.
    match store.ingest(
        "r2-again",
        1,
        &[("data", &payload_bytes(&run2))],
        CHUNK_BYTES,
        &[],
    ) {
        Ok(stats) => assert!(stats.chunks_stored >= 3, "lost chunks must be re-stored"),
        Err(e) => panic!("re-ingest after quarantine failed: {e}"),
    }
    assert_eq!(store.materialize("r2", 1).unwrap(), payload_bytes(&run2));
    store.gc().unwrap();
    assert_eq!(
        store.stats().packs_quarantined,
        0,
        "gc prunes the quarantined pack"
    );
    assert!(store.scrub().unwrap().is_clean());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn strict_mode_fails_degraded_comparison_through_the_cli() {
    // The CLI satellite, end to end: `compare --store … --strict`
    // exits non-zero when chunks went unverified, and plain mode
    // still succeeds with a warning.
    let root = fresh_root("strict");
    let store = ChunkStore::open(&root).unwrap();
    let e = engine();
    let (run1, run2) = two_runs();
    ingest(&store, &e, "r1", &run1);
    let pack = ingest(&store, &e, "r2", &run2).expect("run 2 stores new chunks");
    corrupt_chunks(&root, &store, pack, &[3, 6]);
    store.fsck(true).unwrap();
    drop(store);

    let argv = |strict: bool| -> Vec<String> {
        let mut v = vec![
            "compare".to_owned(),
            "--store".to_owned(),
            root.display().to_string(),
            "--run1".to_owned(),
            "r1@1".to_owned(),
            "--run2".to_owned(),
            "r2@1".to_owned(),
            "--chunk-bytes".to_owned(),
            CHUNK_BYTES.to_string(),
            "--error-bound".to_owned(),
            "1e-6".to_owned(),
            "--failure-policy".to_owned(),
            "quarantine".to_owned(),
        ];
        if strict {
            v.push("--strict".to_owned());
        }
        v
    };

    let lenient = reprocmp_cli::run(&argv(false)).expect("non-strict degraded compare succeeds");
    assert!(
        lenient.contains("WARNING") && lenient.contains("unverified chunks"),
        "plain mode must warn about unverified chunks:\n{lenient}"
    );

    match reprocmp_cli::run(&argv(true)) {
        Err(reprocmp_cli::CliError::Failed(out)) => assert!(
            out.contains("STRICT"),
            "strict failure must say why:\n{out}"
        ),
        other => panic!("--strict must fail on a degraded compare, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).ok();
}
