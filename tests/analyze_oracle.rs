//! Bisection oracle: `analyze::bisect_first_divergence` must give the
//! *same answer* as the linear `compare_history` scan — on seeded
//! HACC-style histories at every churn level, on real mini-HACC runs,
//! and on randomized schedules — while staying inside its probe
//! budget and reading no more payload bytes than the linear scan.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::analyze::bisect_first_divergence;
use reprocmp::core::{CheckpointHistory, CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation};
use reprocmp::io::Timeline;
use reprocmp::obs::Observer;

const CHUNK: usize = 64; // 16 values per chunk
const BOUND: f64 = 1e-5;

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: BOUND,
        ..EngineConfig::default()
    })
}

/// `⌈log₂ m⌉` for the comparison budget.
fn ceil_log2(m: usize) -> u64 {
    if m <= 1 {
        0
    } else {
        u64::from(m.next_power_of_two().trailing_zeros())
    }
}

/// A seeded HACC-style history pair: `values` pseudo-random positions
/// per checkpoint, `churn` = fraction of values perturbed from
/// `diverge_at` onward (the perturbed set persists and the deltas keep
/// growing — the restart-equivalence persistence model).
fn seeded_pair(
    e: &CompareEngine,
    seed: u64,
    ranks: usize,
    iterations: &[u64],
    values: usize,
    churn: f64,
    diverge_at: Option<u64>,
) -> (CheckpointHistory, CheckpointHistory) {
    let mut a = CheckpointHistory::new();
    let mut b = CheckpointHistory::new();
    let n_churn = ((values as f64 * churn).ceil() as usize).min(values);
    for rank in 0..ranks {
        // The churned index set is fixed per rank — once a value
        // diverges it stays diverged.
        let mut rng = StdRng::seed_from_u64(seed ^ (rank as u64) << 32);
        let mut indices: Vec<usize> = (0..values).collect();
        for i in (1..indices.len()).rev() {
            indices.swap(i, rng.gen_range(0..i + 1));
        }
        let churned = &indices[..n_churn];
        for &it in iterations {
            let mut vrng = StdRng::seed_from_u64(seed ^ it << 8 ^ rank as u64);
            let base: Vec<f32> = (0..values).map(|_| vrng.gen_range(-1.0..1.0)).collect();
            let mut other = base.clone();
            if diverge_at.is_some_and(|d| it >= d) {
                let step = it - diverge_at.unwrap() + 1;
                for &ix in churned {
                    other[ix] += 0.1 * step as f32;
                }
            }
            a.insert(rank, it, CheckpointSource::in_memory(&base, e).unwrap());
            b.insert(rank, it, CheckpointSource::in_memory(&other, e).unwrap());
        }
    }
    (a, b)
}

/// Oracle + budget assertions for one pair; returns (bisect payload,
/// linear payload) for the caller's strictness checks.
fn assert_oracle(
    e: &CompareEngine,
    a: &CheckpointHistory,
    b: &CheckpointHistory,
    ranks: usize,
    m: usize,
    label: &str,
) -> (u64, u64) {
    let linear = e.compare_history(a, b).unwrap();
    let bis = bisect_first_divergence(e, a, b, &Timeline::wall(), &Observer::disabled()).unwrap();
    assert_eq!(
        bis.first_divergence,
        linear.first_divergence(),
        "{label}: bisection disagrees with the linear scan"
    );
    let budget = ranks as u64 * (2 * ceil_log2(m) + 1);
    assert!(
        bis.comparisons() <= budget,
        "{label}: {} comparisons > budget {budget}",
        bis.comparisons()
    );
    let linear_payload = linear.total_bytes_reread();
    assert!(
        bis.payload_bytes_read <= linear_payload,
        "{label}: bisection read {} payload bytes, linear {}",
        bis.payload_bytes_read,
        linear_payload
    );
    (bis.payload_bytes_read, linear_payload)
}

#[test]
fn seeded_histories_at_every_churn_level() {
    let e = engine();
    let iterations: Vec<u64> = (0..32).map(|i| i * 10).collect();
    for churn in [0.0, 0.05, 0.5, 1.0] {
        // churn 0 means no value ever moves — the clean timeline.
        let diverge_at = if churn == 0.0 { None } else { Some(150) };
        let (a, b) = seeded_pair(&e, 42, 1, &iterations, 320, churn, diverge_at);
        let label = format!("churn {churn}");
        let (bis_payload, linear_payload) = assert_oracle(&e, &a, &b, 1, 32, &label);
        if churn == 0.0 {
            assert_eq!(bis_payload, 0, "clean timelines must read zero payload");
            assert_eq!(linear_payload, 0);
        } else {
            // 17 divergent iterations but only the boundary confirmed:
            // strictly fewer payload bytes than the linear scan.
            assert!(
                bis_payload < linear_payload,
                "{label}: expected strictly fewer payload bytes \
                 ({bis_payload} vs {linear_payload})"
            );
        }
    }
}

#[test]
fn multi_rank_histories_stay_within_the_per_rank_budget() {
    let e = engine();
    let iterations: Vec<u64> = (0..16).collect();
    for ranks in [2, 3] {
        let (a, b) = seeded_pair(&e, 7, ranks, &iterations, 160, 0.25, Some(9));
        assert_oracle(&e, &a, &b, ranks, 16, &format!("{ranks} ranks"));
    }
}

#[test]
fn real_hacc_runs_bisect_to_the_linear_answer() {
    let e = engine();
    // Two mini-HACC runs from identical ICs, different interaction
    // orders: the scheduling noise the paper targets. Same particle
    // count both sides, so every checkpoint pair is comparable.
    let capture = |seed: u64| -> CheckpointHistory {
        let mut cfg = HaccConfig::small();
        cfg.particles = 512;
        cfg.order = OrderPolicy::Shuffled { seed };
        let mut sim = Simulation::new(cfg);
        let mut h = CheckpointHistory::new();
        for step in 1..=30u64 {
            sim.step();
            if step % 10 == 0 {
                let p = sim.particles();
                let values: Vec<f32> =
                    p.x.iter()
                        .chain(p.y.iter())
                        .chain(p.z.iter())
                        .copied()
                        .collect();
                h.insert(0, step, CheckpointSource::in_memory(&values, &e).unwrap());
            }
        }
        h
    };
    let a = capture(10);
    let b = capture(20);
    let (bis_payload, linear_payload) = assert_oracle(&e, &a, &b, 1, 3, "mini-HACC");
    // Shuffled orders diverge immediately at this bound; the oracle
    // above already proved both scans agree on where.
    assert!(linear_payload > 0, "expected the runs to diverge");
    assert!(bis_payload <= linear_payload);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random schedules: gappy iteration numbers, 1–3 ranks, any churn,
    /// divergence anywhere (or nowhere). Bisection must always match
    /// the linear scan and stay within the per-rank budget.
    #[test]
    fn random_schedules_agree_with_the_linear_scan(
        seed in 0u64..1_000,
        iteration_set in proptest::collection::btree_set(0u64..500, 1..10),
        ranks in 1usize..4,
        churn in 0.02f64..1.0,
        diverge in (any::<bool>(), any::<proptest::sample::Index>()),
    ) {
        let e = engine();
        let iterations: Vec<u64> = iteration_set.into_iter().collect();
        let m = iterations.len();
        let (has_divergence, at) = diverge;
        let diverge_at = has_divergence.then(|| iterations[at.index(m)]);
        let (a, b) = seeded_pair(&e, seed, ranks, &iterations, 96, churn, diverge_at);

        let linear = e.compare_history(&a, &b).unwrap();
        let bis = bisect_first_divergence(&e, &a, &b, &Timeline::wall(), &Observer::disabled())
            .unwrap();
        prop_assert_eq!(bis.first_divergence, linear.first_divergence());
        let budget = ranks as u64 * (2 * ceil_log2(m) + 1);
        prop_assert!(
            bis.comparisons() <= budget,
            "{} comparisons > budget {} (m={}, ranks={})",
            bis.comparisons(), budget, m, ranks
        );
        prop_assert!(bis.payload_bytes_read <= linear.total_bytes_reread());
        // The persistence model holds by construction, so the verdict
        // agrees iteration by iteration with the linear scan's.
        if diverge_at.is_none() {
            prop_assert_eq!(bis.payload_bytes_read, 0);
            // A single-iteration history skips the search; its lone
            // confirmation IS the linear scan and reads no payload.
            if m > 1 {
                prop_assert_eq!(bis.confirmations, 0);
            }
        }
    }
}
