//! End-to-end tests of the flight recorder: journaled comparisons on
//! every I/O backend, JSONL and Chrome-trace export validity, the
//! exact drop ledger, and the guarantee that journaling never changes
//! a report.
//!
//! Everything runs on a simulated timeline, so event timestamps and
//! reports are deterministic; the JSON produced by the exporters is
//! read back through a hand-written parser because the vendored
//! `serde_json` stand-in is serialize-only.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::core::{CheckpointSource, CompareEngine, CompareReport, EngineConfig};
use reprocmp::device::Device;
use reprocmp::io::{BackendKind, CostModel, PipelineConfig, SimClock, Timeline};
use reprocmp::obs::{chrome_trace, EventKind, Journal, ObsClock, Observer};

// ---------------------------------------------------------------------
// Scenario plumbing
// ---------------------------------------------------------------------

/// A deterministic divergent pair with differences well above the
/// bound in many chunks (so stage 2 actually streams).
fn generate(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut run1 = Vec::with_capacity(n);
    for _ in 0..n {
        run1.push(rng.gen_range(-2.0f32..2.0));
    }
    let mut run2 = run1.clone();
    for v in run2.iter_mut() {
        if rng.gen_bool(0.02) {
            *v += 1e-3;
        }
    }
    (run1, run2)
}

fn engine_for(backend: BackendKind) -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 1024,
        error_bound: 1e-5,
        device: Device::sim_cpu_core(),
        io: PipelineConfig {
            backend,
            io_threads: 3,
            queue_depth: 8,
            ..PipelineConfig::default()
        },
        ..EngineConfig::default()
    })
}

/// Runs one simulated-timeline comparison, journaled or not, and
/// returns the report plus the observer that watched it.
fn compare_with(
    backend: BackendKind,
    seed: u64,
    n: usize,
    journaled: bool,
) -> (CompareReport, Observer) {
    let (run1, run2) = generate(seed, n);
    let engine = engine_for(backend);
    let clock = SimClock::new();
    let model = CostModel::lustre_pfs();
    let a = CheckpointSource::in_memory_with_model(&run1, &engine, model, Some(clock.clone()))
        .expect("source a");
    let b = CheckpointSource::in_memory_with_model(&run2, &engine, model, Some(clock.clone()))
        .expect("source b");
    let timeline = Timeline::sim(clock);
    let obs = if journaled {
        Observer::with_journal(timeline.obs_clock())
    } else {
        timeline.observer()
    };
    let report = engine
        .compare_observed(&a, &b, &timeline, &obs)
        .expect("compare");
    (report, obs)
}

const BACKENDS: [BackendKind; 3] = [BackendKind::Uring, BackendKind::Mmap, BackendKind::Blocking];

// ---------------------------------------------------------------------
// A minimal JSON reader (the vendored serde_json only serializes)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Json {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn string(&mut self) -> String {
            assert_eq!(self.b[self.i], b'"', "expected string at byte {}", self.i);
            self.i += 1;
            let mut out = String::new();
            loop {
                let c = self.b[self.i];
                self.i += 1;
                match c {
                    b'"' => return out,
                    b'\\' => {
                        let e = self.b[self.i];
                        self.i += 1;
                        out.push(match e {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                    }
                    other => out.push(other as char),
                }
            }
        }
        fn value(&mut self) -> Json {
            self.ws();
            match self.b[self.i] {
                b'{' => {
                    self.i += 1;
                    let mut fields = Vec::new();
                    loop {
                        self.ws();
                        if self.b[self.i] == b'}' {
                            self.i += 1;
                            return Json::Obj(fields);
                        }
                        if self.b[self.i] == b',' {
                            self.i += 1;
                            self.ws();
                        }
                        let key = self.string();
                        self.ws();
                        assert_eq!(self.b[self.i], b':');
                        self.i += 1;
                        fields.push((key, self.value()));
                    }
                }
                b'[' => {
                    self.i += 1;
                    let mut items = Vec::new();
                    loop {
                        self.ws();
                        if self.b[self.i] == b']' {
                            self.i += 1;
                            return Json::Arr(items);
                        }
                        if self.b[self.i] == b',' {
                            self.i += 1;
                        }
                        items.push(self.value());
                    }
                }
                b'"' => Json::Str(self.string()),
                b't' => {
                    self.i += 4;
                    Json::Bool(true)
                }
                b'f' => {
                    self.i += 5;
                    Json::Bool(false)
                }
                b'n' => {
                    self.i += 4;
                    Json::Null
                }
                _ => {
                    let start = self.i;
                    while self.i < self.b.len()
                        && matches!(
                            self.b[self.i],
                            b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                        )
                    {
                        self.i += 1;
                    }
                    Json::Num(String::from_utf8(self.b[start..self.i].to_vec()).unwrap())
                }
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, text.len(), "trailing garbage after JSON value");
    v
}

// ---------------------------------------------------------------------
// Journaling never changes a report
// ---------------------------------------------------------------------

/// On every backend, the serialized report of a journaled comparison
/// is byte-identical to the unjournaled one: the flight recorder is
/// strictly additive.
#[test]
fn journaled_reports_are_byte_identical_on_every_backend() {
    for backend in BACKENDS {
        let (plain, _) = compare_with(backend, 7, 16 << 10, false);
        let (journaled, obs) = compare_with(backend, 7, 16 << 10, true);
        assert!(
            obs.journal().ledger().events_emitted > 0,
            "{backend:?}: journaled run recorded nothing"
        );
        assert_eq!(
            serde_json::to_string_pretty(&plain).unwrap(),
            serde_json::to_string_pretty(&journaled).unwrap(),
            "{backend:?}: journaling changed the report"
        );
    }
}

// ---------------------------------------------------------------------
// JSONL + nesting properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On every backend and seed: the JSONL sink is line-by-line valid
    /// JSON with the envelope fields, sequence numbers strictly
    /// increase, span begin/end markers are well-nested, the drop
    /// ledger is exact, and there is a `chunk_read` event for every
    /// completed stage-2 read.
    #[test]
    fn journal_is_valid_jsonl_with_nested_spans_and_exact_ledger(
        backend_ix in 0usize..3,
        seed in 1u64..64,
    ) {
        let (report, obs) = compare_with(BACKENDS[backend_ix], seed, 8 << 10, true);
        let journal = obs.journal();

        let ledger = journal.ledger();
        prop_assert_eq!(
            ledger.events_emitted,
            ledger.events_written + ledger.events_dropped
        );
        let events = journal.events();
        prop_assert_eq!(events.len() as u64, ledger.events_written);

        // JSONL: one parseable object per line, envelope intact,
        // seq strictly increasing.
        let jsonl = journal.to_jsonl();
        let mut last_seq = None;
        for line in jsonl.lines() {
            let obj = parse_json(line);
            let seq = obj.get("seq").and_then(Json::as_u64).expect("seq");
            obj.get("ts_ns").and_then(Json::as_u64).expect("ts_ns");
            obj.get("lane").and_then(Json::as_str).expect("lane");
            obj.get("type").and_then(Json::as_str).expect("type");
            if let Some(prev) = last_seq {
                prop_assert!(seq > prev, "seq went backwards: {prev} -> {seq}");
            }
            last_seq = Some(seq);
        }
        prop_assert_eq!(jsonl.lines().count(), events.len());

        // Span markers mirror the tracer, which runs on the driving
        // thread: begin/end must pair up like parentheses.
        let mut stack: Vec<&str> = Vec::new();
        for e in &events {
            match &e.kind {
                EventKind::SpanBegin { name } => stack.push(name),
                EventKind::SpanEnd { name } => {
                    let open = stack.pop().expect("span_end without begin");
                    prop_assert_eq!(open, name.as_str());
                }
                _ => {}
            }
        }
        prop_assert!(stack.is_empty(), "unclosed spans: {:?}", stack);

        // Every completed stage-2 read journals exactly one chunk_read.
        let chunk_reads = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ChunkRead { .. }))
            .count() as u64;
        prop_assert_eq!(chunk_reads, report.io.completed);
        prop_assert!(chunk_reads > 0, "no stage-2 traffic in scenario");
    }
}

// ---------------------------------------------------------------------
// Chrome-trace export round-trip
// ---------------------------------------------------------------------

/// The exported Chrome trace parses, names one timeline lane per
/// emitting pipeline worker and per uring submission ring, carries a
/// `chunk_read` interval for every completed stage-2 read, and embeds
/// the exact drop ledger.
#[test]
fn chrome_trace_has_worker_and_ring_lanes_and_every_chunk_read() {
    let (report, obs) = compare_with(BackendKind::Uring, 11, 32 << 10, true);
    let journal = obs.journal();
    let text = chrome_trace(&obs.tracer.records(), &journal.events(), &journal.ledger());
    let trace = parse_json(&text);

    let Some(Json::Arr(trace_events)) = trace.get("traceEvents") else {
        panic!("no traceEvents array")
    };
    let lanes: Vec<&str> = trace_events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    for side in ["run_a", "run_b"] {
        assert!(
            lanes.iter().any(|l| *l == format!("{side}.uring.sq")),
            "{side}: no submission-ring lane in {lanes:?}"
        );
        assert!(
            lanes
                .iter()
                .any(|l| l.starts_with(&format!("{side}.uring.w"))),
            "{side}: no worker lane in {lanes:?}"
        );
    }
    assert!(lanes.contains(&"main"), "span lane missing");

    let chunk_reads = trace_events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("chunk_read"))
        .count() as u64;
    assert_eq!(
        chunk_reads, report.io.completed,
        "trace lost or duplicated chunk reads"
    );
    assert!(chunk_reads > 0);

    // Worker lanes hold the chunk_read intervals; every interval event
    // carries ts + dur.
    for e in trace_events {
        if e.get("name").and_then(Json::as_str) == Some("chunk_read") {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
        }
    }

    let ledger = journal.ledger();
    let other = trace.get("otherData").expect("otherData");
    assert_eq!(
        other.get("events_emitted").and_then(Json::as_u64),
        Some(ledger.events_emitted)
    );
    assert_eq!(
        other.get("events_written").and_then(Json::as_u64),
        Some(ledger.events_written)
    );
    assert_eq!(
        other.get("events_dropped").and_then(Json::as_u64),
        Some(ledger.events_dropped)
    );
    assert_eq!(
        ledger.events_emitted,
        ledger.events_written + ledger.events_dropped
    );
}

/// The folded-stack export of a journaled comparison starts every line
/// at the `compare` root and is consumable by `flamegraph.pl`
/// (`stack 1;stack2 count` lines).
#[test]
fn folded_stacks_cover_the_compare_tree() {
    let (_, obs) = compare_with(BackendKind::Blocking, 3, 8 << 10, true);
    let folded = reprocmp::obs::folded_stacks(&obs.tracer.records());
    assert!(!folded.is_empty());
    for line in folded.lines() {
        assert!(line.starts_with("compare"), "stack not rooted: {line}");
        let (_, count) = line.rsplit_once(' ').expect("space-separated count");
        count.parse::<u64>().expect("integer sample count");
    }
}

// ---------------------------------------------------------------------
// Online-policy divergence events
// ---------------------------------------------------------------------

/// When an `OnlinePolicy::AbortAfter` threshold trips, the comparator
/// emits exactly one typed `divergence` event whose fields name the
/// crossing `(rank, iteration)`, the accumulated total, and the
/// configured threshold — and the event survives the JSONL round trip
/// with its `divergence` type tag.
#[test]
fn online_abort_emits_a_typed_divergence_event() {
    use reprocmp::core::{CheckpointHistory, OnlineComparator, OnlinePolicy};

    let engine = engine_for(BackendKind::Blocking);
    let (reference, _) = generate(21, 8 << 10);
    let mut history = CheckpointHistory::new();
    for iteration in [10u64, 20, 30] {
        history.insert(
            0,
            iteration,
            CheckpointSource::in_memory(&reference, &engine).expect("reference checkpoint"),
        );
    }
    let journal = Journal::new(ObsClock::frozen());
    let mut online = OnlineComparator::new(
        engine,
        history,
        OnlinePolicy::AbortAfter {
            max_total_diffs: 10,
        },
    )
    .with_journal(journal.clone());

    // Iteration 10 is clean: no event. Iteration 20 blows past the
    // threshold: exactly one event. Iteration 30 is refused while
    // halted: still exactly one event.
    online.observe(0, 10, &reference).expect("clean observe");
    let diverged: Vec<f32> = reference.iter().map(|v| v + 0.5).collect();
    online.observe(0, 20, &diverged).expect("diverged observe");
    online.observe(0, 30, &diverged).expect("halted observe");
    assert!(online.halted());

    let events: Vec<_> = journal
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::Divergence { .. }))
        .collect();
    assert_eq!(events.len(), 1, "exactly one divergence event");
    let EventKind::Divergence {
        rank,
        iteration,
        total_diffs,
        threshold,
    } = &events[0].kind
    else {
        unreachable!()
    };
    assert_eq!((*rank, *iteration, *threshold), (0, 20, 10));
    assert_eq!(*total_diffs, online.total_diffs());
    assert!(*total_diffs > *threshold);

    // JSONL spelling: lane `online`, type `divergence`, all fields.
    let line = journal
        .to_jsonl()
        .lines()
        .map(parse_json)
        .find(|obj| obj.get("type").and_then(Json::as_str) == Some("divergence"))
        .expect("divergence line in JSONL");
    assert_eq!(line.get("lane").and_then(Json::as_str), Some("online"));
    assert_eq!(line.get("rank").and_then(Json::as_u64), Some(0));
    assert_eq!(line.get("iteration").and_then(Json::as_u64), Some(20));
    assert_eq!(line.get("threshold").and_then(Json::as_u64), Some(10));
    assert_eq!(
        line.get("total_diffs").and_then(Json::as_u64),
        Some(online.total_diffs())
    );
}

// ---------------------------------------------------------------------
// Overhead budget
// ---------------------------------------------------------------------

/// The disabled journal's emit path is one branch: ten million emits
/// must come in far under a (very lenient) second, and must record
/// nothing.
#[test]
fn disabled_journal_emit_is_effectively_free() {
    let journal = Journal::disabled();
    let start = std::time::Instant::now();
    for i in 0..10_000_000u64 {
        journal.emit(
            "lane",
            EventKind::IoSubmit {
                ops: i,
                bytes: i,
                queue_depth: 8,
            },
        );
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "disabled emit cost {elapsed:?} for 10M events"
    );
    assert_eq!(journal.ledger().events_emitted, 0);
    assert!(journal.events().is_empty());
}

/// An enabled journal under load stays bounded and keeps the ledger
/// exact even when the ring wraps and drops oldest events.
#[test]
fn saturated_journal_drops_oldest_and_keeps_ledger_exact() {
    let journal = Journal::new(ObsClock::frozen());
    let total = 200_000u64; // > DEFAULT_JOURNAL_CAPACITY
    for i in 0..total {
        journal.emit(
            "lane",
            EventKind::CounterAdd {
                name: "n".to_owned(),
                delta: i,
            },
        );
    }
    let ledger = journal.ledger();
    assert_eq!(ledger.events_emitted, total);
    assert_eq!(
        ledger.events_emitted,
        ledger.events_written + ledger.events_dropped
    );
    assert!(ledger.events_dropped > 0, "ring never wrapped");
    let events = journal.events();
    assert_eq!(events.len() as u64, ledger.events_written);
    // Drop-oldest: the very last event must have survived.
    assert_eq!(events.last().expect("retained events").seq, total - 1);
}
