//! Crash-point torture harness: power-fail the store at *every*
//! filesystem mutation boundary and prove recovery.
//!
//! The driver runs each operation twice. A counting pass opens the
//! store through a [`CrashFs`] wrapping [`CrashPlan::observe`], which
//! numbers every armed mutation (tmp write, rename, pack seal,
//! manifest publish, index swap, journal append, unlink) without
//! crashing. Then, for every crash point `k` in `1..=n` and every
//! failure mode (fail-before, torn partial write across three seeds),
//! a fresh store replays the same history, crashes at `k`, reopens on
//! the real filesystem — which replays the intent journal — retries
//! the interrupted operation, and must land in a state where:
//!
//! * every surviving checkpoint materializes **byte-exactly**,
//! * a full scrub passes (no torn garbage left addressable),
//! * the dedup ledger balances against *driver-computed* expectations
//!   (`bytes_logical == bytes_physical + bytes_deduped`, with
//!   `bytes_physical` equal to the unique chunk bytes of the expected
//!   contents — not whatever the store happens to think), and
//! * a second `gc` finds nothing, i.e. no orphan pack survived.
//!
//! The same sweep drives the VELOC-style client's flush path
//! (tmp write + rename on the persistent tier) and proves
//! `recover()` completes any flush the crash interrupted.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use reprocmp_io::{CrashMode, CrashPlan, RetryPolicy};
use reprocmp_store::{ChunkStore, CrashFs, StoreConfig, StoreError};
use reprocmp_veloc::{CheckpointState, Client, VelocConfig};

const CHUNK: usize = 64;
const TORN_SEEDS: [u64; 3] = [0x00c0_ffee, 0x1bad_b002, 0x5eed_cafe];

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-torture-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// `n` chunks of deterministic bytes, parameterized so different
/// checkpoints share exactly the chunks we intend them to share.
fn chunk_bytes(salt: u8, chunk: usize) -> Vec<u8> {
    (0..CHUNK)
        .map(|i| salt.wrapping_mul(31) ^ (chunk as u8) ^ (i as u8).wrapping_mul(7))
        .collect()
}

fn payload(chunks: &[(u8, usize)]) -> Vec<u8> {
    chunks
        .iter()
        .flat_map(|&(salt, c)| chunk_bytes(salt, c))
        .collect()
}

/// The unique-chunk byte count across all expected payloads — the
/// driver's independent prediction of `stats.bytes_physical` once the
/// store holds exactly `expected` with zero garbage.
fn unique_chunk_bytes(expected: &[(&str, u64, Vec<u8>)]) -> u64 {
    let mut unique: BTreeSet<&[u8]> = BTreeSet::new();
    for (_, _, bytes) in expected {
        for chunk in bytes.chunks(CHUNK) {
            unique.insert(chunk);
        }
    }
    unique.iter().map(|c| c.len() as u64).sum()
}

fn assert_recovered(store: &ChunkStore, expected: &[(&str, u64, Vec<u8>)], ctx: &str) {
    for (name, version, bytes) in expected {
        let got = store
            .materialize(name, *version)
            .unwrap_or_else(|e| panic!("{ctx}: {name}@{version} lost: {e}"));
        assert_eq!(&got, bytes, "{ctx}: {name}@{version} must be byte-exact");
    }
    let scrub = store
        .scrub()
        .unwrap_or_else(|e| panic!("{ctx}: scrub: {e}"));
    assert!(
        scrub.is_clean(),
        "{ctx}: scrub found rot after recovery: {:?}",
        scrub.failures
    );
    assert_eq!(scrub.packs_quarantined, 0, "{ctx}: nothing quarantined");

    let stats = store.stats();
    let logical: u64 = expected.iter().map(|(_, _, b)| b.len() as u64).sum();
    assert_eq!(stats.objects, expected.len() as u64, "{ctx}: object count");
    assert_eq!(stats.bytes_logical, logical, "{ctx}: logical bytes");
    assert_eq!(stats.bytes_garbage, 0, "{ctx}: garbage after gc+compact");
    assert_eq!(
        stats.bytes_physical,
        unique_chunk_bytes(expected),
        "{ctx}: physical bytes must equal the driver-computed unique chunk bytes"
    );
    assert_eq!(
        stats.bytes_logical,
        stats.bytes_physical + stats.bytes_deduped,
        "{ctx}: ledger must balance"
    );

    let gc2 = store.gc().unwrap_or_else(|e| panic!("{ctx}: gc: {e}"));
    assert_eq!(gc2.packs_deleted, 0, "{ctx}: gc must have converged");
}

/// Sweeps every crash point of `op` (run against the state `setup`
/// builds) across fail-before and torn-write modes.
fn sweep(
    tag: &str,
    setup: &dyn Fn(&ChunkStore),
    op: &dyn Fn(&ChunkStore) -> Result<(), StoreError>,
    expected: &[(&str, u64, Vec<u8>)],
) {
    // Counting pass: number the op's mutations without crashing.
    let root = fresh_root(&format!("{tag}-count"));
    {
        let store = ChunkStore::open(&root).unwrap();
        setup(&store);
    }
    let plan = CrashPlan::observe();
    {
        let fs = Arc::new(CrashFs::new(Arc::clone(&plan)));
        let store = ChunkStore::open_with(&root, StoreConfig::with_fs(fs)).unwrap();
        plan.arm();
        op(&store).unwrap();
    }
    let points = plan.mutations();
    assert!(points > 0, "{tag}: op crossed no mutation boundaries");
    std::fs::remove_dir_all(&root).ok();

    let mut modes = vec![CrashMode::Before];
    modes.extend(TORN_SEEDS.map(|seed| CrashMode::Torn { seed }));

    for k in 1..=points {
        for (m, &mode) in modes.iter().enumerate() {
            let ctx = format!("{tag} crash point {k}/{points} mode {m}");
            let root = fresh_root(&format!("{tag}-k{k}-m{m}"));
            {
                let store = ChunkStore::open(&root).unwrap();
                setup(&store);
            }

            // Power failure at mutation k.
            let plan = CrashPlan::at(k, mode);
            {
                let fs = Arc::new(CrashFs::new(Arc::clone(&plan)));
                let store = ChunkStore::open_with(&root, StoreConfig::with_fs(fs)).unwrap();
                plan.arm();
                let crashed = op(&store);
                assert!(crashed.is_err(), "{ctx}: crash did not surface");
            }
            assert!(plan.crashed(), "{ctx}: plan never fired");

            // Power restored: open replays the intent journal; the
            // caller retries the interrupted operation (idempotent:
            // `Exists` means the crash landed after the commit point,
            // `NotFound` means a remove already completed).
            let store = ChunkStore::open(&root)
                .unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
            match op(&store) {
                Ok(()) | Err(StoreError::Exists { .. } | StoreError::NotFound { .. }) => {}
                Err(e) => panic!("{ctx}: retry failed: {e}"),
            }
            store.gc().unwrap_or_else(|e| panic!("{ctx}: gc: {e}"));
            store
                .compact()
                .unwrap_or_else(|e| panic!("{ctx}: compact: {e}"));
            assert_recovered(&store, expected, &ctx);
            std::fs::remove_dir_all(&root).ok();
        }
    }
}

fn ingest(store: &ChunkStore, name: &str, bytes: &[u8]) {
    store
        .ingest(name, 1, &[("data", bytes)], CHUNK, &[])
        .unwrap_or_else(|e| panic!("setup ingest {name}: {e}"));
}

#[test]
fn torture_ingest_every_crash_point() {
    // B shares half its chunks with A, so the crashed ingest exercises
    // both dedup hits and fresh pack writes.
    let a = payload(&[(1, 0), (1, 1), (1, 2), (1, 3), (1, 4), (1, 5)]);
    let b = payload(&[(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]);
    let expected = [("alpha", 1u64, a.clone()), ("beta", 1u64, b.clone())];
    sweep(
        "ingest",
        &move |s| ingest(s, "alpha", &a),
        &move |s| s.ingest("beta", 1, &[("data", &b)], CHUNK, &[]).map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_remove_every_crash_point() {
    let a = payload(&[(3, 0), (3, 1), (3, 2), (3, 3)]);
    let b = payload(&[(4, 0), (4, 1), (3, 0), (3, 1)]);
    let expected = [("beta", 1u64, b.clone())];
    sweep(
        "remove",
        &move |s| {
            ingest(s, "alpha", &a);
            ingest(s, "beta", &b);
        },
        &|s| s.remove("alpha", 1),
        &expected,
    );
}

#[test]
fn torture_gc_every_crash_point() {
    // Alpha's chunks are disjoint from beta's, so removing alpha
    // leaves a fully dead pack for gc to reclaim.
    let a = payload(&[(5, 0), (5, 1), (5, 2), (5, 3)]);
    let b = payload(&[(6, 0), (6, 1), (6, 2), (6, 3)]);
    let expected = [("beta", 1u64, b.clone())];
    sweep(
        "gc",
        &move |s| {
            ingest(s, "alpha", &a);
            ingest(s, "beta", &b);
            s.remove("alpha", 1).unwrap();
        },
        &|s| s.gc().map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_compact_every_crash_point() {
    // Alpha's pack ends up mixed: half its chunks stay live through
    // beta's references, half die with alpha — exactly the shape
    // compaction exists to rewrite.
    let a = payload(&[(7, 0), (7, 1), (7, 2), (7, 3), (7, 4), (7, 5)]);
    let b = payload(&[(7, 0), (7, 1), (7, 2), (8, 0), (8, 1), (8, 2)]);
    let expected = [("beta", 1u64, b.clone())];
    sweep(
        "compact",
        &move |s| {
            ingest(s, "alpha", &a);
            ingest(s, "beta", &b);
            s.remove("alpha", 1).unwrap();
            s.gc().unwrap();
        },
        &|s| s.compact().map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_veloc_flush_every_crash_point() {
    let values: Vec<f32> = (0..256).map(|i| (i as f32) * 0.37 - 11.0).collect();

    let config_with = |base: &Path, fs: Arc<dyn reprocmp_store::StoreFs>| VelocConfig {
        flush_threads: 1,
        flush_retry: RetryPolicy::with_attempts(1),
        fs,
        ..VelocConfig::rooted_at(base)
    };

    // Counting pass.
    let base = fresh_root("veloc-count");
    let plan = CrashPlan::observe();
    {
        let client = Client::new(config_with(
            &base,
            Arc::new(CrashFs::new(Arc::clone(&plan))),
        ))
        .unwrap();
        plan.arm();
        client.checkpoint("ckpt", 1, &[("x", &values)]).unwrap();
        client.wait_all().unwrap();
    }
    let points = plan.mutations();
    assert!(points > 0, "veloc flush crossed no mutation boundaries");
    std::fs::remove_dir_all(&base).ok();

    let mut modes = vec![CrashMode::Before];
    modes.extend(TORN_SEEDS.map(|seed| CrashMode::Torn { seed }));

    for k in 1..=points {
        for (m, &mode) in modes.iter().enumerate() {
            let ctx = format!("veloc flush crash point {k}/{points} mode {m}");
            let base = fresh_root(&format!("veloc-k{k}-m{m}"));
            let plan = CrashPlan::at(k, mode);
            let scratch_bytes;
            {
                let client = Client::new(config_with(
                    &base,
                    Arc::new(CrashFs::new(Arc::clone(&plan))),
                ))
                .unwrap();
                plan.arm();
                client.checkpoint("ckpt", 1, &[("x", &values)]).unwrap();
                assert!(
                    client.wait("ckpt", 1).is_err(),
                    "{ctx}: flush must fail at the crash point"
                );
                assert_eq!(client.state("ckpt", 1), Some(CheckpointState::Failed));
                scratch_bytes = std::fs::read(client.scratch_path("ckpt", 1)).unwrap();
            }
            assert!(plan.crashed(), "{ctx}: plan never fired");

            // Restart on the real filesystem: recover() sweeps torn
            // temporaries off the persistent tier and re-adopts the
            // scratch copy, whose flush must now complete.
            let client = Client::new(VelocConfig::rooted_at(&base)).unwrap();
            let readopted = client.recover().unwrap();
            assert!(
                readopted.contains(&("ckpt".to_owned(), 1)),
                "{ctx}: recover must re-adopt the stranded checkpoint"
            );
            client.wait_all().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(client.state("ckpt", 1), Some(CheckpointState::Flushed));
            let persisted = std::fs::read(client.persistent_path("ckpt", 1)).unwrap();
            assert_eq!(
                persisted, scratch_bytes,
                "{ctx}: recovered flush must be byte-exact"
            );
            std::fs::remove_dir_all(&base).ok();
        }
    }
}
