//! Crash-point torture harness: power-fail the store at *every*
//! filesystem mutation boundary and prove recovery.
//!
//! The driver runs each operation twice. A counting pass opens the
//! store through a [`CrashFs`] wrapping [`CrashPlan::observe`], which
//! numbers every armed mutation (tmp write, rename, pack seal,
//! manifest publish, index swap, journal append, unlink) without
//! crashing. Then, for every crash point `k` in `1..=n` and every
//! failure mode (fail-before, torn partial write across three seeds),
//! a fresh store replays the same history, crashes at `k`, reopens on
//! the real filesystem — which replays the intent journal — retries
//! the interrupted operation, and must land in a state where:
//!
//! * every surviving checkpoint materializes **byte-exactly** — for a
//!   delta chain that means walking every link, so a crash can never
//!   orphan a parent a live delta still borrows from,
//! * a full scrub passes (no torn garbage left addressable),
//! * the dedup ledger balances against *driver-computed* expectations
//!   (`bytes_logical == bytes_physical + bytes_deduped + bytes_skipped`,
//!   with `bytes_physical` equal to the unique chunk bytes of the
//!   expected contents — not whatever the store happens to think), and
//! * a second `gc` finds nothing, i.e. no orphan pack survived.
//!
//! The same sweep drives differential capture (`ingest_delta`, chain
//! `flatten`, tail removal, chain-aware gc/compact) and the
//! VELOC-style client's flush path (tmp write + rename on the
//! persistent tier), proving `recover()` completes any flush the
//! crash interrupted.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use reprocmp_io::{CrashMode, CrashPlan, RetryPolicy};
use reprocmp_store::{ChunkStore, CrashFs, DeltaPolicy, StoreConfig, StoreError};
use reprocmp_veloc::{CheckpointState, Client, VelocConfig};

const CHUNK: usize = 64;
const TORN_SEEDS: [u64; 3] = [0x00c0_ffee, 0x1bad_b002, 0x5eed_cafe];

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-torture-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// `n` chunks of deterministic bytes, parameterized so different
/// checkpoints share exactly the chunks we intend them to share.
fn chunk_bytes(salt: u8, chunk: usize) -> Vec<u8> {
    (0..CHUNK)
        .map(|i| salt.wrapping_mul(31) ^ (chunk as u8) ^ (i as u8).wrapping_mul(7))
        .collect()
}

fn payload(chunks: &[(u8, usize)]) -> Vec<u8> {
    chunks
        .iter()
        .flat_map(|&(salt, c)| chunk_bytes(salt, c))
        .collect()
}

/// The unique-chunk byte count across all expected payloads — the
/// driver's independent prediction of `stats.bytes_physical` once the
/// store holds exactly `expected` with zero garbage.
fn unique_chunk_bytes(expected: &[(&str, u64, Vec<u8>)]) -> u64 {
    let mut unique: BTreeSet<&[u8]> = BTreeSet::new();
    for (_, _, bytes) in expected {
        for chunk in bytes.chunks(CHUNK) {
            unique.insert(chunk);
        }
    }
    unique.iter().map(|c| c.len() as u64).sum()
}

fn assert_recovered(store: &ChunkStore, expected: &[(&str, u64, Vec<u8>)], ctx: &str) {
    for (name, version, bytes) in expected {
        let got = store
            .materialize(name, *version)
            .unwrap_or_else(|e| panic!("{ctx}: {name}@{version} lost: {e}"));
        assert_eq!(&got, bytes, "{ctx}: {name}@{version} must be byte-exact");
    }
    let scrub = store
        .scrub()
        .unwrap_or_else(|e| panic!("{ctx}: scrub: {e}"));
    assert!(
        scrub.is_clean(),
        "{ctx}: scrub found rot after recovery: {:?}",
        scrub.failures
    );
    assert_eq!(scrub.packs_quarantined, 0, "{ctx}: nothing quarantined");

    let stats = store.stats();
    let logical: u64 = expected.iter().map(|(_, _, b)| b.len() as u64).sum();
    assert_eq!(stats.objects, expected.len() as u64, "{ctx}: object count");
    assert_eq!(stats.bytes_logical, logical, "{ctx}: logical bytes");
    assert_eq!(stats.bytes_garbage, 0, "{ctx}: garbage after gc+compact");
    assert_eq!(
        stats.bytes_physical,
        unique_chunk_bytes(expected),
        "{ctx}: physical bytes must equal the driver-computed unique chunk bytes"
    );
    assert_eq!(
        stats.bytes_logical,
        stats.bytes_physical + stats.bytes_deduped + stats.bytes_skipped,
        "{ctx}: ledger must balance"
    );

    let gc2 = store.gc().unwrap_or_else(|e| panic!("{ctx}: gc: {e}"));
    assert_eq!(gc2.packs_deleted, 0, "{ctx}: gc must have converged");
}

/// Sweeps every crash point of `op` (run against the state `setup`
/// builds) across fail-before and torn-write modes.
fn sweep(
    tag: &str,
    setup: &dyn Fn(&ChunkStore),
    op: &dyn Fn(&ChunkStore) -> Result<(), StoreError>,
    expected: &[(&str, u64, Vec<u8>)],
) {
    // Counting pass: number the op's mutations without crashing.
    let root = fresh_root(&format!("{tag}-count"));
    {
        let store = ChunkStore::open(&root).unwrap();
        setup(&store);
    }
    let plan = CrashPlan::observe();
    {
        let fs = Arc::new(CrashFs::new(Arc::clone(&plan)));
        let store = ChunkStore::open_with(&root, StoreConfig::with_fs(fs)).unwrap();
        plan.arm();
        op(&store).unwrap();
    }
    let points = plan.mutations();
    assert!(points > 0, "{tag}: op crossed no mutation boundaries");
    std::fs::remove_dir_all(&root).ok();

    let mut modes = vec![CrashMode::Before];
    modes.extend(TORN_SEEDS.map(|seed| CrashMode::Torn { seed }));

    for k in 1..=points {
        for (m, &mode) in modes.iter().enumerate() {
            let ctx = format!("{tag} crash point {k}/{points} mode {m}");
            let root = fresh_root(&format!("{tag}-k{k}-m{m}"));
            {
                let store = ChunkStore::open(&root).unwrap();
                setup(&store);
            }

            // Power failure at mutation k.
            let plan = CrashPlan::at(k, mode);
            {
                let fs = Arc::new(CrashFs::new(Arc::clone(&plan)));
                let store = ChunkStore::open_with(&root, StoreConfig::with_fs(fs)).unwrap();
                plan.arm();
                let crashed = op(&store);
                assert!(crashed.is_err(), "{ctx}: crash did not surface");
            }
            assert!(plan.crashed(), "{ctx}: plan never fired");

            // Power restored: open replays the intent journal; the
            // caller retries the interrupted operation (idempotent:
            // `Exists` means the crash landed after the commit point,
            // `NotFound` means a remove already completed).
            let store = ChunkStore::open(&root)
                .unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
            match op(&store) {
                Ok(()) | Err(StoreError::Exists { .. } | StoreError::NotFound { .. }) => {}
                Err(e) => panic!("{ctx}: retry failed: {e}"),
            }
            store.gc().unwrap_or_else(|e| panic!("{ctx}: gc: {e}"));
            store
                .compact()
                .unwrap_or_else(|e| panic!("{ctx}: compact: {e}"));
            assert_recovered(&store, expected, &ctx);
            std::fs::remove_dir_all(&root).ok();
        }
    }
}

fn ingest(store: &ChunkStore, name: &str, bytes: &[u8]) {
    store
        .ingest(name, 1, &[("data", bytes)], CHUNK, &[])
        .unwrap_or_else(|e| panic!("setup ingest {name}: {e}"));
}

#[test]
fn torture_ingest_every_crash_point() {
    // B shares half its chunks with A, so the crashed ingest exercises
    // both dedup hits and fresh pack writes.
    let a = payload(&[(1, 0), (1, 1), (1, 2), (1, 3), (1, 4), (1, 5)]);
    let b = payload(&[(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]);
    let expected = [("alpha", 1u64, a.clone()), ("beta", 1u64, b.clone())];
    sweep(
        "ingest",
        &move |s| ingest(s, "alpha", &a),
        &move |s| s.ingest("beta", 1, &[("data", &b)], CHUNK, &[]).map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_remove_every_crash_point() {
    let a = payload(&[(3, 0), (3, 1), (3, 2), (3, 3)]);
    let b = payload(&[(4, 0), (4, 1), (3, 0), (3, 1)]);
    let expected = [("beta", 1u64, b.clone())];
    sweep(
        "remove",
        &move |s| {
            ingest(s, "alpha", &a);
            ingest(s, "beta", &b);
        },
        &|s| s.remove("alpha", 1),
        &expected,
    );
}

#[test]
fn torture_gc_every_crash_point() {
    // Alpha's chunks are disjoint from beta's, so removing alpha
    // leaves a fully dead pack for gc to reclaim.
    let a = payload(&[(5, 0), (5, 1), (5, 2), (5, 3)]);
    let b = payload(&[(6, 0), (6, 1), (6, 2), (6, 3)]);
    let expected = [("beta", 1u64, b.clone())];
    sweep(
        "gc",
        &move |s| {
            ingest(s, "alpha", &a);
            ingest(s, "beta", &b);
            s.remove("alpha", 1).unwrap();
        },
        &|s| s.gc().map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_compact_every_crash_point() {
    // Alpha's pack ends up mixed: half its chunks stay live through
    // beta's references, half die with alpha — exactly the shape
    // compaction exists to rewrite.
    let a = payload(&[(7, 0), (7, 1), (7, 2), (7, 3), (7, 4), (7, 5)]);
    let b = payload(&[(7, 0), (7, 1), (7, 2), (8, 0), (8, 1), (8, 2)]);
    let expected = [("beta", 1u64, b.clone())];
    sweep(
        "compact",
        &move |s| {
            ingest(s, "alpha", &a);
            ingest(s, "beta", &b);
            s.remove("alpha", 1).unwrap();
            s.gc().unwrap();
        },
        &|s| s.compact().map(|_| ()),
        &expected,
    );
}

/// A policy loose enough that every test delta actually stays a delta.
const POLICY: DeltaPolicy = DeltaPolicy {
    anchor_every: 8,
    max_depth: 16,
};

fn delta_ingest(store: &ChunkStore, name: &str, version: u64, bytes: &[u8]) {
    store
        .ingest_delta(name, version, &[("data", bytes)], CHUNK, &[], &POLICY)
        .unwrap_or_else(|e| panic!("setup delta ingest {name}@{version}: {e}"));
}

#[test]
fn torture_delta_ingest_every_crash_point() {
    // v2 keeps four of v1's chunks in place (capture-time skips) and
    // rewrites two, so the crashed delta ingest exercises the skip
    // path, a fresh pack write, and the copy-on-write manifest publish.
    let v1 = payload(&[(9, 0), (9, 1), (9, 2), (9, 3), (9, 4), (9, 5)]);
    let v2 = payload(&[(9, 0), (9, 1), (9, 2), (9, 3), (10, 0), (10, 1)]);
    let expected = [("alpha", 1u64, v1.clone()), ("alpha", 2u64, v2.clone())];
    sweep(
        "delta-ingest",
        &move |s| ingest(s, "alpha", &v1),
        &move |s| {
            s.ingest_delta("alpha", 2, &[("data", &v2)], CHUNK, &[], &POLICY)
                .map(|stats| {
                    assert_eq!(stats.parent, Some(1), "delta must chain to v1");
                    assert_eq!(stats.chunks_skipped, 4, "unchanged chunks skipped");
                })
        },
        &expected,
    );
}

#[test]
fn torture_delta_tail_remove_every_crash_point() {
    // Removing the chain tail mid-crash must leave the surviving
    // prefix (anchor + mid delta) materializing byte-exactly: a
    // half-done remove may never strand v2 without the chunks it
    // borrows from v1.
    let v1 = payload(&[(11, 0), (11, 1), (11, 2), (11, 3)]);
    let v2 = payload(&[(11, 0), (11, 1), (12, 0), (12, 1)]);
    let v3 = payload(&[(11, 0), (11, 1), (12, 0), (13, 0)]);
    let expected = [("alpha", 1u64, v1.clone()), ("alpha", 2u64, v2.clone())];
    sweep(
        "delta-remove",
        &move |s| {
            ingest(s, "alpha", &v1);
            delta_ingest(s, "alpha", 2, &v2);
            delta_ingest(s, "alpha", 3, &v3);
        },
        &|s| s.remove("alpha", 3),
        &expected,
    );
}

#[test]
fn torture_flatten_every_crash_point() {
    // Flattening rewrites the delta manifest to a full anchor in
    // place; a crash at any boundary must leave either the old delta
    // or the new full manifest — both materialize identically.
    let v1 = payload(&[(14, 0), (14, 1), (14, 2), (14, 3)]);
    let v2 = payload(&[(14, 0), (14, 1), (15, 0), (15, 1)]);
    let expected = [("alpha", 1u64, v1.clone()), ("alpha", 2u64, v2.clone())];
    sweep(
        "flatten",
        &move |s| {
            ingest(s, "alpha", &v1);
            delta_ingest(s, "alpha", 2, &v2);
        },
        &|s| s.flatten("alpha", 2).map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_chain_aware_gc_every_crash_point() {
    // Beta's disjoint pack dies; the anchor's pack stays live through
    // alpha@1's own refs even though alpha@2 merely *borrows* those
    // chunks. A crashed gc must reclaim the dead pack without ever
    // orphaning the parent the live delta references.
    let v1 = payload(&[(16, 0), (16, 1), (16, 2), (16, 3)]);
    let v2 = payload(&[(16, 0), (16, 1), (16, 2), (17, 0)]);
    let b = payload(&[(18, 0), (18, 1), (18, 2), (18, 3)]);
    let expected = [("alpha", 1u64, v1.clone()), ("alpha", 2u64, v2.clone())];
    sweep(
        "chain-gc",
        &move |s| {
            ingest(s, "alpha", &v1);
            delta_ingest(s, "alpha", 2, &v2);
            ingest(s, "beta", &b);
            s.remove("beta", 1).unwrap();
        },
        &|s| s.gc().map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_chain_aware_compact_every_crash_point() {
    // Beta's pack ends up mixed: two of its chunks stay live because
    // the chain's anchor dedups against them (and the delta borrows
    // them in turn), two die with beta. Compaction must migrate the
    // live half without breaking the chain at any crash point.
    let b = payload(&[(19, 0), (19, 1), (21, 0), (21, 1)]);
    let v1 = payload(&[(19, 0), (19, 1), (19, 2), (19, 3)]);
    let v2 = payload(&[(19, 0), (19, 1), (19, 2), (20, 0)]);
    let expected = [("alpha", 1u64, v1.clone()), ("alpha", 2u64, v2.clone())];
    sweep(
        "chain-compact",
        &move |s| {
            ingest(s, "beta", &b);
            ingest(s, "alpha", &v1);
            delta_ingest(s, "alpha", 2, &v2);
            s.remove("beta", 1).unwrap();
            s.gc().unwrap();
        },
        &|s| s.compact().map(|_| ()),
        &expected,
    );
}

#[test]
fn torture_veloc_flush_every_crash_point() {
    let values: Vec<f32> = (0..256).map(|i| (i as f32) * 0.37 - 11.0).collect();

    let config_with = |base: &Path, fs: Arc<dyn reprocmp_store::StoreFs>| VelocConfig {
        flush_threads: 1,
        flush_retry: RetryPolicy::with_attempts(1),
        fs,
        ..VelocConfig::rooted_at(base)
    };

    // Counting pass.
    let base = fresh_root("veloc-count");
    let plan = CrashPlan::observe();
    {
        let client = Client::new(config_with(
            &base,
            Arc::new(CrashFs::new(Arc::clone(&plan))),
        ))
        .unwrap();
        plan.arm();
        client.checkpoint("ckpt", 1, &[("x", &values)]).unwrap();
        client.wait_all().unwrap();
    }
    let points = plan.mutations();
    assert!(points > 0, "veloc flush crossed no mutation boundaries");
    std::fs::remove_dir_all(&base).ok();

    let mut modes = vec![CrashMode::Before];
    modes.extend(TORN_SEEDS.map(|seed| CrashMode::Torn { seed }));

    for k in 1..=points {
        for (m, &mode) in modes.iter().enumerate() {
            let ctx = format!("veloc flush crash point {k}/{points} mode {m}");
            let base = fresh_root(&format!("veloc-k{k}-m{m}"));
            let plan = CrashPlan::at(k, mode);
            let scratch_bytes;
            {
                let client = Client::new(config_with(
                    &base,
                    Arc::new(CrashFs::new(Arc::clone(&plan))),
                ))
                .unwrap();
                plan.arm();
                client.checkpoint("ckpt", 1, &[("x", &values)]).unwrap();
                assert!(
                    client.wait("ckpt", 1).is_err(),
                    "{ctx}: flush must fail at the crash point"
                );
                assert_eq!(client.state("ckpt", 1), Some(CheckpointState::Failed));
                scratch_bytes = std::fs::read(client.scratch_path("ckpt", 1)).unwrap();
            }
            assert!(plan.crashed(), "{ctx}: plan never fired");

            // Restart on the real filesystem: recover() sweeps torn
            // temporaries off the persistent tier and re-adopts the
            // scratch copy, whose flush must now complete.
            let client = Client::new(VelocConfig::rooted_at(&base)).unwrap();
            let readopted = client.recover().unwrap();
            assert!(
                readopted.contains(&("ckpt".to_owned(), 1)),
                "{ctx}: recover must re-adopt the stranded checkpoint"
            );
            client.wait_all().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(client.state("ckpt", 1), Some(CheckpointState::Flushed));
            let persisted = std::fs::read(client.persistent_path("ckpt", 1)).unwrap();
            assert_eq!(
                persisted, scratch_bytes,
                "{ctx}: recovered flush must be byte-exact"
            );
            std::fs::remove_dir_all(&base).ok();
        }
    }
}
