//! The concurrency-equivalence oracle for `reprocmp-server`.
//!
//! **The guarantee under test:** a daemon serving N concurrent clients
//! with randomized mixed traffic (ingest, compare, compare-many,
//! materialize) produces **byte-identical** job results to the same
//! jobs executed serially, offline, through [`execute_spec`] against a
//! twin store — for N ∈ {2, 8, 16}. Worker interleaving, queue order,
//! and transport timing must be unobservable in every report byte.
//!
//! Alongside equivalence, exact ledgers are asserted under full
//! concurrency:
//!
//! * per-job journal ledgers balance (`emitted == written + dropped`)
//!   and the watch stream carries exactly `events_written` events;
//! * the daemon store's dedup ledger balances and equals the twin
//!   store's, object for object and byte for byte;
//! * admission control never deadlocks, never drops an accepted job,
//!   and rejects only at the configured bound (proptests below).
//!
//! Determinism is engineered, not accidental: every job runs on a
//! fresh simulated timeline with a fresh journal and cache, and client
//! payloads are salted per client so cross-client dedup cannot couple
//! one client's stats to another's schedule.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::server::{
    execute_spec, pair, serve_connection, AdmitError, JobQueue, JobSpec, JobState, ObjectRef,
    Server, ServerClient, ServerConfig,
};
use reprocmp_store::ChunkStore;

const CHUNK_BYTES: u64 = 256;

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("reprocmp-server-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// A client's deterministic payload: f32 values salted by client index
/// so no two clients ever share a chunk (dedup stats stay per-client).
fn payload(client: usize, object: usize, version: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(
        0x0BAD_5EED ^ ((client as u64) << 40) ^ ((object as u64) << 16) ^ version,
    );
    let mut bytes = Vec::with_capacity(len * 4);
    for _ in 0..len {
        let v: f32 = rng.gen_range(-2.0f32..2.0) + (client as f32) * 10.0;
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn obj(client: usize, object: usize) -> String {
    format!("c{client}.obj{object}")
}

/// The randomized mixed traffic one client sends: first its ingests
/// (awaited, so later jobs' inputs exist), then a shuffled mix of
/// compare / compare-many / materialize jobs.
fn client_traffic(client: usize, seed: u64) -> (Vec<JobSpec>, Vec<JobSpec>) {
    let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64) << 8));
    let objects = rng.gen_range(2..4usize);
    let mut ingests = Vec::new();
    for o in 0..objects {
        let len = rng.gen_range(64..512usize);
        ingests.push(JobSpec::Ingest {
            name: obj(client, o),
            version: 1,
            chunk_bytes: CHUNK_BYTES as usize,
            data: payload(client, o, 1, len),
        });
        // A perturbed second version of each object: same length, a
        // few values nudged, so compares see real sparse differences.
        let mut v2 = payload(client, o, 1, len);
        for _ in 0..rng.gen_range(1..5) {
            let at = rng.gen_range(0..len) * 4;
            let mut val = f32::from_le_bytes(v2[at..at + 4].try_into().unwrap());
            val += rng.gen_range(0.5f32..1.5);
            v2[at..at + 4].copy_from_slice(&val.to_le_bytes());
        }
        ingests.push(JobSpec::Ingest {
            name: obj(client, o),
            version: 2,
            chunk_bytes: CHUNK_BYTES as usize,
            data: v2,
        });
    }

    let mut work = Vec::new();
    for _ in 0..rng.gen_range(3..7) {
        let o = rng.gen_range(0..objects);
        match rng.gen_range(0..4) {
            0 => work.push(JobSpec::Compare {
                left: ObjectRef {
                    name: obj(client, o),
                    version: 1,
                },
                right: ObjectRef {
                    name: obj(client, o),
                    version: 2,
                },
            }),
            1 => work.push(JobSpec::CompareMany {
                baseline: ObjectRef {
                    name: obj(client, o),
                    version: 1,
                },
                runs: (0..objects)
                    .map(|r| ObjectRef {
                        name: obj(client, r),
                        version: 2,
                    })
                    .collect(),
            }),
            2 => work.push(JobSpec::Materialize {
                name: obj(client, o),
                version: rng.gen_range(1..3),
            }),
            _ => work.push(JobSpec::Compare {
                left: ObjectRef {
                    name: obj(client, o),
                    version: 2,
                },
                right: ObjectRef {
                    name: obj(client, rng.gen_range(0..objects)),
                    version: 1,
                },
            }),
        }
    }
    (ingests, work)
}

/// Submits a spec through the wire client, retrying under backpressure
/// (admission control is allowed to say "not now", never to lose an
/// accepted job).
fn submit_with_retry(client: &mut ServerClient, spec: &JobSpec) -> u64 {
    loop {
        let result = match spec.clone() {
            JobSpec::Ingest {
                name,
                version,
                chunk_bytes,
                data,
            } => client.ingest(&name, version, chunk_bytes as u64, &data),
            JobSpec::Compare { left, right } => client.compare(left, right),
            JobSpec::CompareMany { baseline, runs } => client.compare_many(baseline, runs),
            JobSpec::Materialize { name, version } => client.materialize(&name, version),
        };
        match result {
            Ok(job) => return job,
            Err(reprocmp::server::ClientError::Rejected { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => panic!("submit failed: {e}"),
        }
    }
}

/// What one online job produced, keyed for offline replay.
struct OnlineResult {
    spec: JobSpec,
    state: JobState,
    /// `serde_json` encoding of the result document (byte-compared).
    result_json: Option<String>,
    error: Option<String>,
    /// Watch stream: (seq, ts_ns, lane, kind) per event.
    events: Vec<(u64, u64, String, String)>,
    ledger: (u64, u64, u64),
}

/// Strips the sim-I/O worker index from a journal lane
/// (`run_a.uring.w3` → `run_a.uring.w*`): which pool thread serviced a
/// chunk read is a scheduling artifact, not part of the job's result.
fn normalize_lane(lane: &str) -> String {
    match lane.rfind(".w") {
        Some(at)
            if lane[at + 2..].chars().all(|c| c.is_ascii_digit()) && !lane[at + 2..].is_empty() =>
        {
            format!("{}.w*", &lane[..at])
        }
        _ => lane.to_owned(),
    }
}

fn encode_value(v: &serde::Value) -> String {
    struct Shim(serde::Value);
    impl serde::Serialize for Shim {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&Shim(v.clone())).expect("value encodes")
}

/// The oracle proper: N concurrent wire clients against one daemon,
/// then a serial offline replay, then byte-for-byte comparison.
fn concurrency_equivalence_oracle(n_clients: usize, seed: u64) {
    let root = fresh_root(&format!("oracle-{n_clients}"));
    let server = Arc::new(
        Server::start(ServerConfig {
            workers: 4,
            queue_capacity: 8 * n_clients.max(2),
            ..ServerConfig::rooted_at(&root)
        })
        .expect("daemon claims a fresh store"),
    );

    // Phase 1: concurrent online execution over in-process transport.
    let mut joins = Vec::new();
    for c in 0..n_clients {
        let server = Arc::clone(&server);
        joins.push(std::thread::spawn(move || {
            let (client_half, server_half) = pair();
            // Handler thread: exits at EOF when the session drops.
            {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut conn = server_half;
                    serve_connection(&server, &mut conn).expect("handler runs to EOF");
                });
            }
            let mut session = ServerClient::over(Box::new(client_half), &format!("client-{c}"))
                .expect("hello handshake");

            let (ingests, work) = client_traffic(c, seed);
            let mut submitted: Vec<(u64, JobSpec)> = Vec::new();

            // Ingests first, each awaited before the next: successive
            // versions of one object share chunks, so *this client's*
            // ingest order must be fixed for its dedup stats to be
            // deterministic. Cross-client interleaving stays fully
            // concurrent — payload salting keeps it unobservable.
            for spec in &ingests {
                let job = submit_with_retry(&mut session, spec);
                let status = session.wait(job).expect("wait");
                assert_eq!(status.state, JobState::Done, "ingest {job} must succeed");
                submitted.push((job, spec.clone()));
            }
            for spec in &work {
                let job = submit_with_retry(&mut session, spec);
                submitted.push((job, spec.clone()));
            }

            let mut results = Vec::new();
            for (job, spec) in submitted {
                let status = session.wait(job).expect("wait");
                let (events, summary) = session.watch(job).expect("watch");
                assert_eq!(
                    summary.events_emitted,
                    summary.events_written + summary.events_dropped,
                    "journal ledger must balance for job {job}"
                );
                assert_eq!(
                    events.len() as u64,
                    summary.events_written,
                    "watch must stream exactly the written events"
                );
                results.push((
                    job,
                    OnlineResult {
                        spec,
                        state: status.state,
                        result_json: status.result.as_ref().map(encode_value),
                        error: status.error,
                        events: events
                            .into_iter()
                            .map(|e| (e.seq, e.ts_ns, e.lane, e.kind))
                            .collect(),
                        ledger: (
                            summary.events_emitted,
                            summary.events_written,
                            summary.events_dropped,
                        ),
                    },
                ));
            }
            results
        }));
    }

    // Job-id order is a serialization consistent with every client's
    // own submission order (each client awaited its ingests before
    // submitting jobs that read them).
    let mut online: BTreeMap<u64, OnlineResult> = BTreeMap::new();
    for join in joins {
        for (job, result) in join.join().expect("client thread") {
            assert!(
                online.insert(job, result).is_none(),
                "job ids must be unique"
            );
        }
    }

    let online_stats = server.store().stats();
    assert_eq!(
        online_stats.bytes_logical,
        online_stats.bytes_physical + online_stats.bytes_deduped + online_stats.bytes_skipped,
        "daemon store dedup ledger must balance under interleaving"
    );
    let engine = Arc::clone(server.engine());
    drop(server); // graceful: drains, joins workers, releases the lock

    // Phase 2: offline serial replay against a twin store.
    let twin_root = fresh_root(&format!("oracle-{n_clients}-twin"));
    let twin = ChunkStore::open(&twin_root).expect("twin store");
    for (job, on) in &online {
        let off = execute_spec(&twin, &engine, &on.spec);
        match (&on.result_json, &off.result) {
            (Some(on_json), Ok(off_value)) => {
                assert_eq!(on.state, JobState::Done);
                assert_eq!(
                    on_json,
                    &encode_value(off_value),
                    "job {job} ({:?}): online and offline reports must be byte-identical",
                    on.spec
                );
            }
            (None, Err(off_err)) => {
                assert_eq!(on.state, JobState::Failed);
                assert_eq!(
                    on.error.as_deref(),
                    Some(off_err.as_str()),
                    "job {job}: failures must agree"
                );
            }
            (on_result, off_result) => panic!(
                "job {job}: online {:?} vs offline {:?} disagree on success",
                on_result.is_some(),
                off_result.is_ok()
            ),
        }
        // Event payloads carry simulated timestamps, so they are
        // deterministic — but the sim I/O pipeline runs real worker
        // threads, so *intra-tick ordering* and worker-lane
        // attribution (`uring.w0` vs `uring.w1`) are scheduling
        // artifacts. The invariant: the normalized event multiset is
        // identical — same kinds, same sim times, same counts.
        let on_events: Vec<(u64, String, String)> = {
            let mut v: Vec<_> = on
                .events
                .iter()
                .map(|(_, ts, lane, kind)| (*ts, normalize_lane(lane), kind.clone()))
                .collect();
            v.sort();
            v
        };
        let off_events: Vec<(u64, String, String)> = {
            let mut v: Vec<_> = off
                .events
                .iter()
                .map(|e| {
                    (
                        e.ts_ns(),
                        normalize_lane(&e.lane),
                        e.kind.type_name().to_owned(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            on_events, off_events,
            "job {job}: normalized flight-recorder event multisets must be identical"
        );
        assert_eq!(
            on.ledger,
            (
                off.ledger.events_emitted,
                off.ledger.events_written,
                off.ledger.events_dropped
            ),
            "job {job}: journal ledgers must be identical"
        );
    }

    // The stores themselves must agree: same objects, same ledger.
    let twin_stats = twin.stats();
    assert_eq!(online_stats.objects, twin_stats.objects);
    assert_eq!(online_stats.bytes_logical, twin_stats.bytes_logical);
    assert_eq!(online_stats.bytes_physical, twin_stats.bytes_physical);
    assert_eq!(online_stats.bytes_deduped, twin_stats.bytes_deduped);

    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&twin_root).ok();
}

#[test]
fn oracle_two_concurrent_clients_match_serial_offline() {
    concurrency_equivalence_oracle(2, 0xA11C_E5);
}

#[test]
fn oracle_eight_concurrent_clients_match_serial_offline() {
    concurrency_equivalence_oracle(8, 0xB0B5_1ED);
}

#[test]
fn oracle_sixteen_concurrent_clients_match_serial_offline() {
    concurrency_equivalence_oracle(16, 0xC0FF_EE);
}

/// Running the *same* traffic twice (fresh daemon, fresh store) must
/// reproduce every report byte — the restart-equivalence face of the
/// oracle.
#[test]
fn oracle_repeat_run_is_byte_identical() {
    let collect = |tag: &str| {
        let root = fresh_root(tag);
        let server = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::rooted_at(&root)
        })
        .expect("daemon");
        let (ingests, work) = client_traffic(0, 7);
        let mut out = Vec::new();
        for spec in ingests.iter().chain(&work) {
            let job = server.submit("c0", spec.clone()).expect("admitted");
            let status = server.wait(job).expect("known job");
            out.push((
                status.state,
                status.result.as_ref().map(encode_value),
                status.error,
            ));
        }
        drop(server);
        std::fs::remove_dir_all(&root).ok();
        out
    };
    assert_eq!(
        collect("repeat-a")
            .iter()
            .map(|(s, r, e)| (format!("{s:?}"), r.clone(), e.clone()))
            .collect::<Vec<_>>(),
        collect("repeat-b")
            .iter()
            .map(|(s, r, e)| (format!("{s:?}"), r.clone(), e.clone()))
            .collect::<Vec<_>>(),
        "two daemon lifetimes over the same traffic must agree byte-for-byte"
    );
}

/// Seeded multi-thread queue smoke: random enqueue/pop/finish
/// interleavings across worker threads; every admitted job is served
/// exactly once, and shutdown drains rather than drops.
#[test]
fn queue_smoke_seeded_interleaving_never_loses_a_job() {
    for seed in [1u64, 42, 0xDEAD] {
        let queue = Arc::new(JobQueue::new(32, 4));
        let served: Arc<std::sync::Mutex<Vec<u64>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        served.lock().unwrap().push(job.id);
                        queue.finish();
                    }
                })
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut admitted = Vec::new();
        let mut id = 0u64;
        for _ in 0..200 {
            let client = format!("c{}", rng.gen_range(0..5));
            match queue.enqueue(&client, id, rng.gen_range(1..6)) {
                Ok(()) => {
                    admitted.push(id);
                    id += 1;
                }
                Err(AdmitError::Backpressure {
                    in_flight,
                    capacity,
                }) => {
                    assert!(in_flight >= capacity, "reject only at the bound");
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Err(AdmitError::ShuttingDown) => unreachable!("not shut down yet"),
            }
        }
        queue.shutdown();
        for w in workers {
            w.join().expect("worker");
        }
        let mut got = served.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, admitted, "seed {seed}: served ≠ admitted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DRR fairness bound, in logical ticks: with equal-cost jobs
    /// (cost = quantum, one job per ring visit) all enqueued up front,
    /// client `c`'s `i`-th job is served within the `i`-th round — its
    /// tick lies in `[i*K, (i+1)*K)` for K clients. Per-client wait
    /// skew is therefore bounded by K−1 ticks at every depth, for any
    /// client count and backlog.
    #[test]
    fn fairness_bounds_per_client_wait_skew(
        k in 2usize..6,
        jobs_each in 1usize..20,
        quantum in 1u64..5,
    ) {
        let queue = JobQueue::new(k * jobs_each + 1, quantum);
        for c in 0..k {
            for j in 0..jobs_each {
                queue
                    .enqueue(&format!("c{c}"), (c * jobs_each + j) as u64, quantum)
                    .expect("capacity covers the backlog");
            }
        }
        let mut depth_of: BTreeMap<String, u64> = BTreeMap::new();
        while let Some(job) = queue.try_pop() {
            let depth = depth_of.entry(job.client.clone()).or_insert(0);
            let round_start = *depth * k as u64;
            prop_assert!(
                (round_start..round_start + k as u64).contains(&job.served_tick),
                "client {} depth {} served at tick {} outside its round",
                job.client, depth, job.served_tick
            );
            *depth += 1;
            queue.finish();
        }
        for depth in depth_of.values() {
            prop_assert_eq!(*depth as usize, jobs_each);
        }
    }

    /// Admission control, adversarially interleaved: accepts iff under
    /// the bound, never deadlocks (pure try_pop draining), never drops
    /// or duplicates an accepted job — across random costs, clients,
    /// capacities, and operation orders.
    #[test]
    fn admission_control_never_deadlocks_or_drops(
        capacity in 1usize..12,
        quantum in 1u64..6,
        ops in proptest::collection::vec((0u8..3, 0usize..4, 1u64..8), 1..200),
    ) {
        let queue = JobQueue::new(capacity, quantum);
        let mut next_id = 0u64;
        let mut accepted = Vec::new();
        let mut popped = Vec::new();
        let mut executing = 0usize;
        for (op, client, cost) in ops {
            match op {
                0 => match queue.enqueue(&format!("c{client}"), next_id, cost) {
                    Ok(()) => {
                        accepted.push(next_id);
                        next_id += 1;
                    }
                    Err(AdmitError::Backpressure { in_flight, capacity: cap }) => {
                        prop_assert_eq!(in_flight, queue.in_flight());
                        prop_assert!(in_flight >= cap, "reject only at the bound");
                    }
                    Err(AdmitError::ShuttingDown) => prop_assert!(false, "never shut down"),
                },
                1 => {
                    if let Some(job) = queue.try_pop() {
                        popped.push(job.id);
                        executing += 1;
                    }
                }
                _ => {
                    if executing > 0 {
                        queue.finish();
                        executing -= 1;
                    }
                }
            }
        }
        // Drain: everything accepted must surface exactly once.
        while let Some(job) = queue.try_pop() {
            popped.push(job.id);
            queue.finish();
        }
        popped.sort_unstable();
        // Accepted ⇔ served, exactly once.
        prop_assert_eq!(popped, accepted);
    }
}
