//! Integration tests for the multi-run batch scheduler: the
//! counter-based acceptance criterion (a cached N-run baseline
//! comparison does strictly less work than N independent pairwise
//! comparisons) and the concurrency-determinism stress contract
//! documented on `reprocmp_device::Device` (any `host_parallel(k)`
//! shard count produces byte-identical results).

use reprocmp::core::{BatchConfig, CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::device::Device;
use reprocmp::hash::{ChunkHasher, Quantizer};
use reprocmp::io::{CostModel, SimClock, Timeline};
use reprocmp::merkle::{encode_tree, MerkleTree};

const N_VALUES: usize = 1 << 16;
const CHUNK: usize = 512;
const BOUND: f64 = 1e-4;

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: BOUND,
        // Start the BFS above the leaves so subtree caching is live
        // (the default 64 Ki-lane hint clamps the start level to the
        // leaves for trees this size).
        lane_hint: Some(8),
        ..EngineConfig::default()
    })
}

/// Baseline plus `n` runs that share the same deviation over the first
/// half of the payload (>= 50% of chunks identical across runs) and
/// one unique value each.
fn shared_deviation_payloads(n: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let base: Vec<f32> = (0..N_VALUES).map(|i| (i as f32 * 1e-3).cos()).collect();
    let mut shared = base.clone();
    for v in shared.iter_mut().take(N_VALUES / 2) {
        *v += 0.5;
    }
    let runs = (0..n)
        .map(|r| {
            let mut v = shared.clone();
            v[N_VALUES - 100 * (r + 1)] += 1.0;
            v
        })
        .collect();
    (base, runs)
}

/// The acceptance criterion: for N >= 3 runs sharing >= 50% of their
/// chunks, the cached batch performs strictly fewer stage-1 node
/// visits, strictly fewer stage-2 bytes re-read, and strictly fewer
/// metadata decodes than N independent pairwise comparisons.
#[test]
fn cached_batch_beats_independent_pairwise_on_every_counter() {
    let n = 4;
    let (base, run_values) = shared_deviation_payloads(n);
    let e = engine();
    let baseline = CheckpointSource::in_memory(&base, &e).unwrap();
    let runs: Vec<CheckpointSource> = run_values
        .iter()
        .map(|v| CheckpointSource::in_memory(v, &e).unwrap())
        .collect();

    // N independent pairwise comparisons: the status quo.
    let mut pairwise_nodes = 0u64;
    let mut pairwise_bytes = 0u64;
    let mut pairwise_decodes = 0u64;
    let mut pairwise_diffs: Vec<u64> = Vec::new();
    for run in &runs {
        let report = e.compare(&baseline, run).unwrap();
        pairwise_nodes += report.stages.bfs.ops;
        pairwise_bytes += report.stats.bytes_reread;
        pairwise_decodes += 2; // each pairwise job decodes both trees
        pairwise_diffs.push(report.stats.diff_count);
    }

    let batch = e
        .compare_many(&baseline, &runs, &BatchConfig::default())
        .unwrap();

    // Same verdicts first — a cheaper wrong answer would be worthless.
    let batch_diffs: Vec<u64> = batch
        .jobs
        .iter()
        .map(|j| j.report.stats.diff_count)
        .collect();
    assert_eq!(batch_diffs, pairwise_diffs);

    assert!(
        batch.total_nodes_visited() < pairwise_nodes,
        "batch visited {} node pairs, pairwise {}",
        batch.total_nodes_visited(),
        pairwise_nodes
    );
    assert!(
        batch.total_bytes_reread() < pairwise_bytes,
        "batch re-read {} bytes, pairwise {}",
        batch.total_bytes_reread(),
        pairwise_bytes
    );
    assert_eq!(batch.trees_decoded, n as u64 + 1);
    assert!(batch.trees_decoded < pairwise_decodes);

    // The ledger explains the gap exactly: nodes saved by cache hits
    // account for the full node-visit difference.
    assert_eq!(
        batch.total_nodes_visited() + batch.cache.nodes_saved,
        pairwise_nodes,
        "visited + saved must equal the uncached total"
    );
    assert_eq!(
        batch.total_bytes_reread() + batch.cache.bytes_saved,
        pairwise_bytes,
        "re-read + saved must equal the uncached total"
    );
    assert!(batch.cache.node_hits > 0, "{:?}", batch.cache);
    assert!(batch.cache.verdict_hits > 0, "{:?}", batch.cache);
}

/// Merkle construction is shard-count invariant: for any worker count
/// k, `Device::host_parallel(k)` builds a tree whose encoding is
/// byte-identical to the serial device's.
#[test]
fn tree_construction_is_identical_across_worker_counts() {
    let (base, runs) = shared_deviation_payloads(1);
    let hasher = ChunkHasher::new(Quantizer::new(BOUND).unwrap());
    for values in [&base, &runs[0]] {
        let serial = encode_tree(&MerkleTree::build_from_f32(
            values,
            CHUNK,
            &hasher,
            &Device::host_serial(),
        ));
        for k in [1usize, 2, 8, 17] {
            let parallel = encode_tree(&MerkleTree::build_from_f32(
                values,
                CHUNK,
                &hasher,
                &Device::host_parallel(k),
            ));
            assert_eq!(
                serial, parallel,
                "host_parallel({k}) built a different tree"
            );
        }
    }
}

/// The cluster flow the scheduler was built for: every rank produces
/// its own run payload, the payloads gather at rank 0 through the
/// rank-tagged collective, and the root batch-compares them all
/// against the baseline with one shared metadata cache.
#[test]
fn root_rank_batch_compares_gathered_runs() {
    use reprocmp::cluster::Cluster;

    const N: usize = 1 << 14;
    let cluster = Cluster::new(2, 2);
    let results = cluster.run(|ctx| {
        // Every rank derives its payload deterministically: a shared
        // deviation over the first half (the nondeterministic
        // reduction perturbing the same region every run) plus one
        // rank-specific value.
        let mut values: Vec<f32> = (0..N).map(|i| (i as f32 * 1e-3).cos()).collect();
        for v in values.iter_mut().take(N / 2) {
            *v += 0.5;
        }
        values[N - 50 * (ctx.rank() + 1)] += 1.0;
        let mut bytes = Vec::with_capacity(N * 4);
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }

        let gathered = ctx.gather_bytes_to_root(bytes)?;

        // Rank 0 reconstructs every run and batch-compares against the
        // unperturbed baseline.
        let e = engine();
        let base: Vec<f32> = (0..N).map(|i| (i as f32 * 1e-3).cos()).collect();
        let baseline = CheckpointSource::in_memory(&base, &e).unwrap();
        let runs: Vec<CheckpointSource> = gathered
            .iter()
            .map(|buf| {
                let values: Vec<f32> = buf
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                CheckpointSource::in_memory(&values, &e).unwrap()
            })
            .collect();
        let batch = e
            .compare_many(&baseline, &runs, &BatchConfig::default())
            .unwrap();
        Some(batch)
    });

    let batch = results[0].as_ref().expect("root ran the batch");
    assert!(results[1..].iter().all(Option::is_none));
    assert_eq!(batch.jobs.len(), cluster.size());
    assert_eq!(batch.trees_decoded, cluster.size() as u64 + 1);
    // Every rank's run: half the payload deviates plus its one unique
    // value.
    for job in &batch.jobs {
        assert_eq!(job.report.stats.diff_count, N as u64 / 2 + 1);
    }
    // The shared deviation is adjudicated once and reused: runs 2..N
    // hit both cache layers.
    assert!(batch.cache.node_hits > 0, "{:?}", batch.cache);
    assert!(batch.cache.verdict_hits > 0, "{:?}", batch.cache);
    assert!(batch.cache.bytes_saved > 0, "{:?}", batch.cache);
}

/// Batch reports are shard-count invariant: the serialized report —
/// every per-job verdict, counter, duration, and the cache ledger —
/// is identical for k ∈ {1, 2, 8, 17} execution shards. Runs on a
/// simulated clock so even the timing fields must agree bit-for-bit.
#[test]
fn batch_reports_are_identical_across_shard_counts() {
    let (base, run_values) = shared_deviation_payloads(3);

    let render = |shards: usize| -> String {
        let e = engine();
        let clock = SimClock::new();
        let source = |values: &[f32]| {
            CheckpointSource::in_memory_with_model(
                values,
                &e,
                CostModel::lustre_pfs(),
                Some(clock.clone()),
            )
            .unwrap()
        };
        let baseline = source(&base);
        let runs: Vec<CheckpointSource> = run_values.iter().map(|v| source(v)).collect();
        let cfg = BatchConfig {
            shards: Some(shards),
            ..BatchConfig::default()
        };
        let batch = e
            .compare_many_with_timeline(&baseline, &runs, &Timeline::sim(clock.clone()), &cfg)
            .unwrap();
        serde_json::to_string_pretty(&batch).unwrap()
    };

    let serial = render(1);
    assert!(serial.contains("\"jobs\""));
    for k in [2usize, 8, 17] {
        let sharded = render(k);
        assert_eq!(serial, sharded, "shards={k} perturbed the batch report");
    }
}
