//! Science-level integration: the comparator's verdicts lined up
//! against the derived-quantity baseline and the named Table 1 fields
//! on real mini-HACC data.

use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig, RegionMap, Statistical};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation, CHECKPOINT_FIELDS};

fn run(seed: u64, steps: u64) -> Simulation {
    let mut cfg = HaccConfig::small();
    cfg.particles = 1_024;
    cfg.order = OrderPolicy::Shuffled { seed };
    let mut sim = Simulation::new(cfg);
    sim.run(steps);
    sim
}

/// Flattens all seven Table 1 fields and the matching region map.
fn table1_payload(sim: &Simulation) -> (Vec<f32>, RegionMap) {
    let p = sim.particles();
    let mut values = Vec::with_capacity(p.len() * 7);
    for field in CHECKPOINT_FIELDS {
        values.extend_from_slice(p.field(field).unwrap());
    }
    let map = RegionMap::from_lengths(CHECKPOINT_FIELDS.iter().map(|&f| (f, p.len() as u64)));
    (values, map)
}

#[test]
fn differences_attribute_to_the_right_physical_fields() {
    let sim1 = run(1, 25);
    let sim2 = run(2, 25);
    let (v1, map) = table1_payload(&sim1);
    let (v2, _) = table1_payload(&sim2);

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-9, // tight enough to see scheduling noise
        ..EngineConfig::default()
    });
    let a = CheckpointSource::in_memory(&v1, &engine).unwrap();
    let b = CheckpointSource::in_memory(&v2, &engine).unwrap();
    let report = engine.compare(&a, &b).unwrap();
    assert!(
        report.stats.diff_count > 0,
        "25 nondeterministic steps should show sub-1e-9 drift"
    );

    // Every difference lands in a known field, and the per-field
    // histogram covers exactly the reported differences.
    let located = map.annotate(&report.differences);
    assert!(located.iter().all(|l| l.region.is_some()));
    let per_field = map.diffs_per_region(&report.differences);
    let total: u64 = per_field.iter().map(|(_, c)| c).sum();
    assert_eq!(total, report.differences.len() as u64);
    // Velocities integrate force noise directly — some field beyond
    // the coordinates must be affected too when drift is visible.
    let field_names: Vec<&str> = per_field
        .iter()
        .filter(|(_, c)| *c > 0)
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(!field_names.is_empty());
}

#[test]
fn statistical_baseline_accepts_what_localization_flags() {
    // The paper's §1 point: aggregate statistics say "fine" while the
    // element-wise history already shows divergence.
    let sim1 = run(1, 25);
    let sim2 = run(2, 25);
    let (v1, _) = table1_payload(&sim1);
    let (v2, _) = table1_payload(&sim2);

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-9,
        ..EngineConfig::default()
    });
    let a = CheckpointSource::in_memory(&v1, &engine).unwrap();
    let b = CheckpointSource::in_memory(&v2, &engine).unwrap();

    let stat = Statistical::new(1e-4).unwrap().compare(&a, &b).unwrap();
    assert!(
        stat.within_tolerance,
        "summary statistics cannot see scheduling noise"
    );
    let ours = engine.compare(&a, &b).unwrap();
    assert!(ours.stats.diff_count > 0, "localization can");
}

#[test]
fn physics_agrees_while_bits_do_not() {
    use reprocmp::hacc::clustering_strength;
    let sim1 = run(1, 25);
    let sim2 = run(2, 25);

    // Bitwise: different.
    assert_ne!(sim1.particles(), sim2.particles());

    // Science: the same structure formed.
    let s1 = clustering_strength(sim1.particles(), 16, 1.0);
    let s2 = clustering_strength(sim2.particles(), 16, 1.0);
    assert!(
        (s1 - s2).abs() / s1.max(s2) < 1e-2,
        "spectra diverged: {s1} vs {s2}"
    );
}
