//! Golden-report lock-in for the full comparison pipeline.
//!
//! Three fixed-seed checkpoint pairs run through the engine on a
//! simulated Lustre timeline with modeled compute, and the entire
//! [`CompareReport`] — stage breakdown, phase timers, I/O counters,
//! localized differences — is serialized to JSON and compared
//! byte-for-byte against checked-in goldens under `tests/goldens/`.
//!
//! Everything in the report is deterministic under simulation: phase
//! times come from the roofline models and the virtual clock (never
//! the wall), stage-2 slices arrive in submission order, and durations
//! serialize as integer `{secs, nanos}`. Any observable change to the
//! engine — a different BFS visit count, an extra read, a shifted
//! stage attribution — shows up as a golden diff.
//!
//! To regenerate after an *intentional* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! git diff tests/goldens/   # review before committing
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::device::Device;
use reprocmp::io::{CostModel, SimClock, Timeline};
use std::path::PathBuf;

/// One golden scenario: a seed plus the workload shape it drives.
struct Scenario {
    name: &'static str,
    seed: u64,
    n_values: usize,
    perturb_prob: f64,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "seed1_sparse",
        seed: 1,
        n_values: 64 << 10,
        perturb_prob: 0.002,
    },
    Scenario {
        name: "seed2_moderate",
        seed: 2,
        n_values: 64 << 10,
        perturb_prob: 0.01,
    },
    Scenario {
        name: "seed3_identical",
        seed: 3,
        n_values: 32 << 10,
        perturb_prob: 0.0,
    },
];

/// Deterministic divergent pair. Uses only the vendored RNG (no
/// transcendental functions whose libm results could vary by host).
fn generate(sc: &Scenario) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(sc.seed);
    let mut run1 = Vec::with_capacity(sc.n_values);
    for _ in 0..sc.n_values {
        run1.push(rng.gen_range(-2.0f32..2.0));
    }
    let mut run2 = run1.clone();
    if sc.perturb_prob > 0.0 {
        // Fixed magnitude tiers straddling the 1e-5 bound: two above
        // (real differences) and two below (hash-level noise only).
        const TIERS: [f64; 4] = [1e-3, 1e-4, 1e-6, 1e-7];
        for v in run2.iter_mut() {
            if rng.gen_bool(sc.perturb_prob) {
                let u: f64 = rng.gen();
                let mag = TIERS[((u * 4.0) as usize).min(3)];
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                *v += (mag * sign) as f32;
            }
        }
    }
    (run1, run2)
}

fn report_json(sc: &Scenario) -> String {
    let (run1, run2) = generate(sc);
    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 4096,
        error_bound: 1e-5,
        device: Device::sim_cpu_core(),
        max_recorded_diffs: 8,
        ..EngineConfig::default()
    });
    let clock = SimClock::new();
    let model = CostModel::lustre_pfs();
    let a = CheckpointSource::in_memory_with_model(&run1, &engine, model, Some(clock.clone()))
        .expect("source 1");
    let b = CheckpointSource::in_memory_with_model(&run2, &engine, model, Some(clock.clone()))
        .expect("source 2");
    let report = engine
        .compare_with_timeline(&a, &b, &Timeline::sim(clock))
        .expect("compare");
    let mut json = serde_json::to_string_pretty(&report).expect("serialize");
    json.push('\n');
    json
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}

fn check_scenario(sc: &Scenario) {
    let actual = report_json(sc);
    let path = golden_path(sc.name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        // Point at the first diverging line so the failure is
        // actionable without a JSON diff tool.
        let diverged = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match diverged {
            Some((line, (a, e))) => panic!(
                "golden mismatch for `{}` at line {}:\n  actual:   {a}\n  expected: {e}\n\
                 (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                sc.name,
                line + 1
            ),
            None => panic!(
                "golden mismatch for `{}`: lengths differ ({} vs {} bytes)",
                sc.name,
                actual.len(),
                expected.len()
            ),
        }
    }
}

#[test]
fn golden_seed1_sparse() {
    check_scenario(&SCENARIOS[0]);
}

#[test]
fn golden_seed2_moderate() {
    check_scenario(&SCENARIOS[1]);
}

#[test]
fn golden_seed3_identical() {
    check_scenario(&SCENARIOS[2]);
}

/// The golden serialization is itself reproducible: two fresh
/// end-to-end runs of the same scenario produce byte-identical JSON
/// (this is what makes the checked-in files meaningful).
#[test]
fn report_json_is_deterministic_across_runs() {
    let one = report_json(&SCENARIOS[1]);
    let two = report_json(&SCENARIOS[1]);
    assert_eq!(one, two);
    // And the goldens really exercise the observability surface.
    assert!(one.contains("\"stages\""), "stage breakdown missing");
    assert!(one.contains("\"quantize\""));
    assert!(one.contains("\"stage2_stream\""));
    assert!(one.contains("\"io\""), "I/O counters missing");
}
